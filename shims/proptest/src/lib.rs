//! Offline shim for `proptest`: a small random property-testing harness
//! with the macro/strategy surface this workspace uses.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its generated inputs instead), and strategies are sampled with a
//! deterministic per-test RNG (seeded from the test name, overridable
//! with `PROPTEST_SEED`) so failures reproduce across runs.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `lo..hi`.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Seed a test RNG from the test name (or `PROPTEST_SEED`).
pub fn test_rng(name: &str) -> TestRng {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        return TestRng::new(seed);
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h)
}

/// Harness configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure value produced by `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed-case error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Inclusive over the full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; stay half-open.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T` (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> Union<V> {
    /// New union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

/// Collection strategies (`prop::collection::{vec, hash_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;
    use std::ops::Range;

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a distinct-element count in `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate hash sets of values drawn from `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash + Debug,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut set = HashSet::with_capacity(n);
            // Bounded attempts: a narrow element domain may not contain
            // `n` distinct values.
            let mut budget = n * 10 + 100;
            while set.len() < n && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            set
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias so `prop::collection::vec` resolves as in real proptest.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Weighted/unweighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Define property tests. Each `fn name(arg in STRATEGY, ...) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let __strats = ( $($strat,)+ );
            for __case in 0..__config.cases {
                let ($(ref $arg,)+) = __strats;
                $(let $arg = $crate::Strategy::generate($arg, &mut __rng);)+
                let __desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $($arg),+
                );
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        e,
                        __desc
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        A(u64),
        B,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..100).prop_map(Op::A),
            1 => Just(Op::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 0usize..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn tuples_and_maps(pair in (0u64..4, any::<u64>()).prop_map(|(a, b)| (a, b ^ 1))) {
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u64..50, 1..20),
            s in prop::collection::hash_set(0u64..1_000_000, 2..30),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(s.len() < 30);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 50).count(), 0);
        }

        #[test]
        fn oneof_covers_arms(ops in prop::collection::vec(op(), 64..65)) {
            let a = ops
                .iter()
                .filter(|o| matches!(o, Op::A(x) if *x < 100))
                .count();
            prop_assert!(a > 0, "weighted arm never chosen in {ops:?}");
        }
    }

    #[test]
    fn deterministic_without_env_seed() {
        if std::env::var("PROPTEST_SEED").is_ok() {
            return;
        }
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
