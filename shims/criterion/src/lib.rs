//! Offline shim for `criterion`: a minimal but functional harness with
//! the same macro/builder surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::default().warm_up_time(..)...`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`).
//!
//! Measurement model: per sample, run the closure in growing batches
//! until the batch takes ≥ ~1/sample_size of the measurement budget,
//! then report the median and spread of per-iteration times across
//! samples. No plotting, no statistics beyond median/min/max — enough
//! to compare lock hot paths between builds.

use std::time::{Duration, Instant};

/// Benchmark driver (subset of criterion's `Criterion`).
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup { c: self }
    }

    /// Hook for criterion CLI-arg handling; no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final summary hook; no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark: time `f`'s `Bencher::iter` payload.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the payload for the configured wall-time.
        let warm_deadline = Instant::now() + self.c.warm_up;
        let mut b = Bencher {
            mode: Mode::Warmup(warm_deadline),
            per_iter: Vec::new(),
            budget: Duration::ZERO,
        };
        f(&mut b);

        let per_sample = self.c.measurement / self.c.sample_size as u32;
        b.mode = Mode::Measure;
        b.budget = per_sample;
        b.per_iter.clear();
        for _ in 0..self.c.sample_size {
            f(&mut b);
        }

        let mut times = b.per_iter;
        times.sort_unstable();
        if times.is_empty() {
            println!("  {name}: no samples");
            return self;
        }
        let median = times[times.len() / 2];
        let min = times[0];
        let max = times[times.len() - 1];
        println!(
            "  {name}: median {} [min {}, max {}] per iter",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

enum Mode {
    Warmup(Instant),
    Measure,
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    /// Per-iteration nanoseconds, one entry per measured sample.
    per_iter: Vec<u64>,
    budget: Duration,
}

impl Bencher {
    /// Time repeated runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Warmup(deadline) => {
                while Instant::now() < deadline {
                    black_box(f());
                }
            }
            Mode::Measure => {
                // Grow the batch until it fills this sample's time budget,
                // so per-iteration resolution is well above timer noise.
                let mut iters = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= self.budget || iters >= (1 << 30) {
                        let ns = elapsed.as_nanos() as u64 / iters.max(1);
                        self.per_iter.push(ns);
                        return;
                    }
                    iters = iters.saturating_mul(2);
                }
            }
        }
    }
}

/// Opaque value barrier (re-export shape of `criterion::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Define a benchmark group (criterion-compatible forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.bench_function("incr", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
