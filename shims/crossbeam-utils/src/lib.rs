//! Offline shim for `crossbeam-utils`: only [`CachePadded`].
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the tiny API slice it actually uses. `CachePadded`
//! aligns its contents to 128 bytes — two cache lines, covering the
//! spatial prefetcher pairing on x86 — to prevent false sharing between
//! adjacent slots, which is exactly what the upstream crate does on
//! x86_64.

#![no_std]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes to avoid false sharing.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
