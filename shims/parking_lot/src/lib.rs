//! Offline shim for `parking_lot`: a poison-free [`Mutex`] and a
//! word-sized [`RawRwLock`] with the `lock_api` trait surface the
//! workspace uses.
//!
//! `Mutex` wraps `std::sync::Mutex` and strips poisoning (matching
//! parking_lot semantics). `RawRwLock` is a single-word spin/yield
//! reader-writer lock: bit 63 is the writer flag, the low bits count
//! readers. Under contention it spins briefly then yields — simpler
//! than parking_lot's parking-lot queue, but the same external shape
//! (one word in the object, waiters keep no in-object state).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;

/// Poison-free mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// `lock_api` compatibility: the raw reader-writer-lock trait.
pub mod lock_api {
    /// Raw reader-writer lock interface (subset of `lock_api::RawRwLock`).
    pub trait RawRwLock {
        /// Initial (unlocked) value, usable in `const` contexts.
        const INIT: Self;

        /// Acquire shared (read) access, blocking.
        fn lock_shared(&self);
        /// Release shared access.
        ///
        /// # Safety
        /// Must be paired with a successful `lock_shared`.
        unsafe fn unlock_shared(&self);
        /// Acquire exclusive (write) access, blocking.
        fn lock_exclusive(&self);
        /// Release exclusive access.
        ///
        /// # Safety
        /// Must be paired with a successful `lock_exclusive`.
        unsafe fn unlock_exclusive(&self);
        /// Whether a writer currently holds the lock.
        fn is_locked_exclusive(&self) -> bool;
    }
}

const WRITER: u64 = 1 << 63;

/// Word-sized raw reader-writer lock (writer-preferring spin/yield).
pub struct RawRwLock {
    state: AtomicU64,
}

impl RawRwLock {
    #[inline]
    fn spin_wait(spins: &mut u32) {
        if *spins < 64 {
            std::hint::spin_loop();
            *spins += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

impl lock_api::RawRwLock for RawRwLock {
    const INIT: RawRwLock = RawRwLock {
        state: AtomicU64::new(0),
    };

    fn lock_shared(&self) {
        let mut spins = 0;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            Self::spin_wait(&mut spins);
        }
    }

    unsafe fn unlock_shared(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    fn lock_exclusive(&self) {
        let mut spins = 0;
        loop {
            if self
                .state
                .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            Self::spin_wait(&mut spins);
        }
    }

    unsafe fn unlock_exclusive(&self) {
        self.state.store(0, Ordering::Release);
    }

    fn is_locked_exclusive(&self) -> bool {
        self.state.load(Ordering::Relaxed) & WRITER != 0
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawRwLock as _;
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RawRwLock::INIT;
        l.lock_shared();
        l.lock_shared();
        assert!(!l.is_locked_exclusive());
        unsafe {
            l.unlock_shared();
            l.unlock_shared();
        }
        l.lock_exclusive();
        assert!(l.is_locked_exclusive());
        unsafe { l.unlock_exclusive() };
        assert!(!l.is_locked_exclusive());
    }

    #[test]
    fn rwlock_excludes_across_threads() {
        let l = std::sync::Arc::new(RawRwLock::INIT);
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = vec![];
        for _ in 0..4 {
            let l = l.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.lock_exclusive();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    unsafe { l.unlock_exclusive() };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
