//! Offline shim for `rand` 0.9: the API slice this workspace uses.
//!
//! - [`rngs::SmallRng`] is xoshiro256++ (the algorithm rand 0.9 uses on
//!   64-bit targets), seeded via SplitMix64 from [`SeedableRng::seed_from_u64`],
//!   so seeded streams are high quality and stable across runs.
//! - [`Rng::random_range`] uses the multiply-shift ("Lemire") reduction.
//! - [`rng()`] returns a fresh generator seeded from OS hasher entropy
//!   plus a per-call counter.
//! - [`seq::SliceRandom::shuffle`] is a Fisher–Yates shuffle.

use std::ops::Range;

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from all bits (`rng.random()`).
pub trait Standard: Sized {
    /// Draw a value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait UniformInt: Sized + Copy {
    /// Draw from `lo..hi` (requires `lo < hi`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl UniformInt for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift reduction; bias is < span/2^64, far below
                // what any consumer here can observe.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

impl Standard for i32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}

impl UniformInt for i32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        let span = (hi as i64 - lo as i64) as u64;
        let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        (lo as i64 + r as i64) as i32
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling interface (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample of `T` from all its bits (or `[0,1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform sample from the half-open range `lo..hi`.
    #[inline]
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators ([`rngs::SmallRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, non-cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh generator seeded from environment entropy (thread-RNG stand-in).
pub fn rng() -> rngs::SmallRng {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // RandomState draws per-process OS entropy; the counter and thread id
    // decorrelate calls within a process.
    let os = std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish();
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let tid = std::thread::current().id();
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    std::hash::Hash::hash(&tid, &mut h);
    SeedableRng::seed_from_u64(os ^ n.rotate_left(32) ^ h.finish())
}

/// Sequence helpers ([`seq::SliceRandom`]).
pub mod seq {
    use super::{Rng, UniformInt};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(5usize..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut super::rng());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
