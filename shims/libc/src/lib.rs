//! Offline shim for `libc`: just enough for `sched_setaffinity` thread
//! pinning on Linux/glibc. Layout of `cpu_set_t` matches glibc's
//! 1024-bit fixed-size set.

#![allow(non_camel_case_types, non_snake_case)]

/// glibc `cpu_set_t`: 1024 CPU bits as 16 × 64-bit masks.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; 16],
}

/// Set CPU `cpu` in `set` (no-op when out of range, like `CPU_SET`).
///
/// # Safety
/// Mirrors the libc macro's signature; safe in practice, `unsafe` kept
/// for drop-in source compatibility with the real crate.
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < 1024 {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

extern "C" {
    #[link_name = "sched_setaffinity"]
    fn sched_setaffinity_sys(pid: i32, cpusetsize: usize, mask: *const cpu_set_t) -> i32;
}

/// Pin the calling thread (pid 0) or process to the CPUs in `mask`.
///
/// # Safety
/// `mask` must point to a valid `cpu_set_t` of `cpusetsize` bytes.
pub unsafe fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const cpu_set_t) -> i32 {
    sched_setaffinity_sys(pid, cpusetsize, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_layout_matches_glibc() {
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe { CPU_SET(3, &mut set) };
        unsafe { CPU_SET(64, &mut set) };
        assert_eq!(set.bits[0], 1 << 3);
        assert_eq!(set.bits[1], 1);
    }
}
