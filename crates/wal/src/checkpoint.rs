//! Checkpoint-by-scan: stream the live index into per-shard sidecars.
//!
//! The checkpoint is **fuzzy**: it runs concurrently with writers, on
//! top of the streaming [`range`](optiql_index_api::ConcurrentIndex::range)
//! iterators — chunk-atomic snapshots under validated optimistic reads,
//! no lock held while the consumer (our file writer) runs. The classic
//! ordering argument makes this safe without quiescing anyone:
//!
//! * Each shard's `start_lsn` is captured **before** the scan begins,
//!   as `appended_lsn() + 1` at capture time.
//! * Any mutation the scan *misses* necessarily happened concurrently
//!   with or after the capture, so its redo record carries
//!   `lsn >= start_lsn` and replays on top of the checkpoint.
//! * Any mutation the scan *catches twice* (a value written before the
//!   scan reached its key, then again after) is harmless: replay is
//!   last-writer-wins and the later record also has `lsn >= start_lsn`.
//!
//! A checkpoint entry therefore may be stale; it can never be wrong
//! after the log tail replays. The file is written to a `.tmp` sibling,
//! fsynced, then atomically renamed over `shard-<i>.ckpt` — a crash
//! mid-checkpoint leaves the previous checkpoint intact.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::ops::Bound;

use optiql_index_api::{ConcurrentIndex, IndexKey};

use crate::record::{frame_ckpt_begin, frame_ckpt_end, frame_ckpt_entry};
use crate::Wal;

/// Per-shard checkpoint outcome.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    /// Shard index.
    pub shard: usize,
    /// Replay starts here: records with `lsn >= start_lsn` are applied
    /// on top of the checkpoint.
    pub start_lsn: u64,
    /// Entries written.
    pub entries: u64,
    /// File bytes written (frames, including header/footer).
    pub bytes: u64,
}

/// What a checkpoint pass wrote, shard by shard.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardCheckpoint>,
}

impl CheckpointReport {
    /// Total entries across shards.
    pub fn entries(&self) -> u64 {
        self.shards.iter().map(|s| s.entries).sum()
    }
}

impl std::fmt::Display for CheckpointReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bytes: u64 = self.shards.iter().map(|s| s.bytes).sum();
        write!(
            f,
            "checkpointed {} entries across {} shards ({bytes} bytes)",
            self.entries(),
            self.shards.len()
        )
    }
}

struct ShardWriter {
    file: File,
    tmp: std::path::PathBuf,
    dst: std::path::PathBuf,
    buf: Vec<u8>,
    entries: u64,
    bytes: u64,
    start_lsn: u64,
}

const FLUSH_AT: usize = 64 << 10;

impl ShardWriter {
    fn drain(&mut self) -> std::io::Result<()> {
        self.file.write_all(&self.buf)?;
        self.bytes += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }
}

/// See [`Wal::checkpoint`].
pub fn checkpoint<K, I>(wal: &Wal, index: &I) -> std::io::Result<CheckpointReport>
where
    K: IndexKey,
    I: ConcurrentIndex<K> + ?Sized,
{
    // Capture every shard's replay horizon BEFORE the scan starts: a
    // mutation the scan misses must log at or after this LSN.
    let mut writers: Vec<ShardWriter> = (0..wal.shard_count())
        .map(|i| {
            let dst = crate::ckpt_path(wal.dir(), i);
            let tmp = dst.with_extension("ckpt.tmp");
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            let start_lsn = wal.shard(i).appended_lsn() + 1;
            let mut w = ShardWriter {
                file,
                tmp,
                dst,
                buf: Vec::with_capacity(FLUSH_AT + 512),
                entries: 0,
                bytes: 0,
                start_lsn,
            };
            frame_ckpt_begin(&mut w.buf, start_lsn);
            Ok(w)
        })
        .collect::<std::io::Result<_>>()?;

    let mut keybuf = Vec::new();
    for (k, v) in index.range(Bound::Unbounded, Bound::Unbounded) {
        let w = &mut writers[wal.shard_for_hint(k.route_hint())];
        keybuf.clear();
        k.encode_into(&mut keybuf);
        frame_ckpt_entry(&mut w.buf, &keybuf, v);
        w.entries += 1;
        if w.buf.len() >= FLUSH_AT {
            w.drain()?;
        }
    }

    let mut shards = Vec::with_capacity(writers.len());
    for (i, mut w) in writers.into_iter().enumerate() {
        frame_ckpt_end(&mut w.buf, w.entries);
        w.drain()?;
        w.file.sync_data()?;
        std::fs::rename(&w.tmp, &w.dst)?;
        shards.push(ShardCheckpoint {
            shard: i,
            start_lsn: w.start_lsn,
            entries: w.entries,
            bytes: w.bytes,
        });
    }
    // Make the renames themselves durable (best effort — not all
    // platforms let you fsync a directory handle).
    if let Ok(d) = File::open(wal.dir()) {
        let _ = d.sync_all();
    }
    Ok(CheckpointReport { shards })
}
