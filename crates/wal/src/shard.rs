//! One redo log: an append-only file with dense per-shard LSNs and a
//! leader/follower fsync gate for group commit.
//!
//! Log order must equal apply order for records touching the same key,
//! or replay could resurrect an overwritten value. [`LogShard::append_with`]
//! enforces that the cheap way: the caller applies the mutation to the
//! index *inside* the append closure, so the shard's append mutex
//! serializes apply+log as one unit for everything routed to this shard
//! (same key → same route hint → same shard). Different shards never
//! contend, preserving the cross-shard concurrency the router buys.
//! (DESIGN §10 discusses the finer-grained alternative — stamping LSNs
//! under the OptiQL x-lock — and why it isn't needed at this node count.)
//!
//! Durability is decoupled from appending: `appended` is the highest LSN
//! written to the OS, `durable` the highest covered by an fsync. Any
//! thread needing `lsn` durable calls [`LogShard::ensure_durable`]; the
//! fsync gate makes the first comer the leader whose single
//! `fdatasync` covers every append before it, and late arrivals observe
//! the advanced watermark and return without syncing — group commit.

use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::stats::WalStats;

struct Appender {
    file: File,
    /// LSN the next record will carry (LSNs are 1-based and dense).
    next_lsn: u64,
    /// Frame staging buffer, reused across appends.
    buf: Vec<u8>,
}

/// A single shard's redo log.
pub struct LogShard {
    path: PathBuf,
    /// Independent handle used only for `fdatasync`, so the gate never
    /// blocks appenders.
    sync_handle: File,
    inner: Mutex<Appender>,
    /// Highest LSN written to the file (visible to the OS).
    appended: AtomicU64,
    /// Highest LSN covered by an fsync.
    durable: AtomicU64,
    /// Group-commit gate: whoever holds it performs the fsync that
    /// covers everyone queued behind.
    gate: Mutex<()>,
    stats: Arc<WalStats>,
    id: usize,
}

/// Handed to [`LogShard::append_with`] closures: stages redo records
/// with freshly assigned LSNs while the caller mutates the index.
pub struct Txn<'a> {
    next_lsn: &'a mut u64,
    buf: &'a mut Vec<u8>,
    records: u64,
}

impl Txn<'_> {
    /// Stage a `Set key := value` redo record; returns its LSN.
    pub fn set(&mut self, key_enc: &[u8], value: u64) -> u64 {
        let lsn = *self.next_lsn;
        *self.next_lsn += 1;
        self.records += 1;
        crate::record::frame_set(self.buf, lsn, key_enc, value);
        lsn
    }

    /// Stage a `Del key` redo record; returns its LSN.
    pub fn del(&mut self, key_enc: &[u8]) -> u64 {
        let lsn = *self.next_lsn;
        *self.next_lsn += 1;
        self.records += 1;
        crate::record::frame_del(self.buf, lsn, key_enc);
        lsn
    }
}

impl LogShard {
    /// Wrap an opened, already-recovered log file. `next_lsn` is one past
    /// the last LSN found in the valid prefix; the file cursor must sit
    /// at the truncation point (end of the valid prefix).
    pub(crate) fn new(
        id: usize,
        path: PathBuf,
        file: File,
        next_lsn: u64,
        stats: Arc<WalStats>,
    ) -> std::io::Result<Self> {
        let sync_handle = file.try_clone()?;
        Ok(LogShard {
            path,
            sync_handle,
            inner: Mutex::new(Appender {
                file,
                next_lsn,
                buf: Vec::with_capacity(4096),
            }),
            appended: AtomicU64::new(next_lsn - 1),
            durable: AtomicU64::new(next_lsn - 1),
            gate: Mutex::new(()),
            stats,
            id,
        })
    }

    /// This shard's index within the WAL.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Highest LSN written to the OS.
    pub fn appended_lsn(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    /// Highest LSN covered by an fsync.
    pub fn durable_lsn(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// Apply-and-log as one serialized unit: the closure mutates the
    /// index and stages matching redo records on `txn`; the staged
    /// frames are written to the OS before the lock is released.
    /// Returns the closure's result and the last LSN this call appended
    /// (0 when the closure staged nothing — e.g. a no-op update).
    ///
    /// I/O errors are fail-stop (panic): a redo log we cannot write to
    /// is a durability contract we can no longer honor, and limping on
    /// would hand out acks backed by nothing.
    pub fn append_with<T>(&self, f: impl FnOnce(&mut Txn<'_>) -> T) -> (T, u64) {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        inner.buf.clear();
        let mut txn = Txn {
            next_lsn: &mut inner.next_lsn,
            buf: &mut inner.buf,
            records: 0,
        };
        let out = f(&mut txn);
        let records = txn.records;
        if records == 0 {
            return (out, 0);
        }
        inner
            .file
            .write_all(&inner.buf)
            .unwrap_or_else(|e| panic!("wal shard {}: append failed: {e}", self.id));
        let last = inner.next_lsn - 1;
        self.appended.store(last, Ordering::Release);
        self.stats.on_append(records, inner.buf.len() as u64);
        (out, last)
    }

    /// Block until every append up to `lsn` is on stable storage.
    /// Group commit: one fsync covers every caller queued at the gate.
    pub fn ensure_durable(&self, lsn: u64) {
        if lsn == 0 || self.durable.load(Ordering::Acquire) >= lsn {
            return;
        }
        let _gate = self.gate.lock().unwrap();
        if self.durable.load(Ordering::Acquire) >= lsn {
            return; // a leader that ran while we queued covered us
        }
        // Cover everything appended so far, not just `lsn` — followers
        // that queued behind us ride this fsync for free.
        let cover = self.appended.load(Ordering::Acquire);
        self.sync_handle
            .sync_data()
            .unwrap_or_else(|e| panic!("wal shard {}: fsync failed: {e}", self.id));
        self.durable.store(cover, Ordering::Release);
        self.stats.on_fsync();
    }

    /// Fsync iff there are appends not yet covered by one.
    pub fn commit(&self) {
        let appended = self.appended.load(Ordering::Acquire);
        if appended > self.durable.load(Ordering::Acquire) {
            self.ensure_durable(appended);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FrameCursor, Record};
    use std::io::Read;

    fn scratch_shard(dir: &std::path::Path) -> LogShard {
        let path = dir.join("shard-0.log");
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .unwrap();
        LogShard::new(0, path, file, 1, Arc::new(WalStats::default())).unwrap()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("optiql-wal-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn lsns_are_dense_and_frames_decode() {
        let dir = tempdir("dense");
        let shard = scratch_shard(&dir);
        let ((), last) = shard.append_with(|txn| {
            assert_eq!(txn.set(&7u64.to_be_bytes(), 70), 1);
            assert_eq!(txn.set(&8u64.to_be_bytes(), 80), 2);
            txn.del(&7u64.to_be_bytes());
        });
        assert_eq!(last, 3);
        assert_eq!(shard.appended_lsn(), 3);
        assert_eq!(shard.durable_lsn(), 0);
        shard.ensure_durable(3);
        assert_eq!(shard.durable_lsn(), 3);

        let mut bytes = Vec::new();
        std::fs::File::open(shard.path())
            .unwrap()
            .read_to_end(&mut bytes)
            .unwrap();
        let mut cur = FrameCursor::new(&bytes);
        let mut lsns = Vec::new();
        while let Some(r) = cur.next_frame().unwrap() {
            lsns.push(r.lsn().unwrap());
            if let Record::Del { key, .. } = r {
                assert_eq!(key, 7u64.to_be_bytes());
            }
        }
        assert_eq!(lsns, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_append_neither_logs_nor_syncs() {
        let dir = tempdir("empty");
        let shard = scratch_shard(&dir);
        let (v, last) = shard.append_with(|_txn| 42);
        assert_eq!((v, last), (42, 0));
        assert_eq!(shard.appended_lsn(), 0);
        shard.commit(); // nothing to cover — must not fsync
        assert_eq!(std::fs::metadata(shard.path()).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_fsync_covers_concurrent_appenders() {
        let dir = tempdir("group");
        let shard = Arc::new(scratch_shard(&dir));
        let threads = 4;
        let per = 50;
        std::thread::scope(|s| {
            for t in 0..threads {
                let shard = Arc::clone(&shard);
                s.spawn(move || {
                    for i in 0..per {
                        let k = ((t as u64) << 32 | i as u64).to_be_bytes();
                        let ((), lsn) = shard.append_with(|txn| {
                            txn.set(&k, i as u64);
                        });
                        shard.ensure_durable(lsn);
                    }
                });
            }
        });
        let total = (threads * per) as u64;
        assert_eq!(shard.appended_lsn(), total);
        assert_eq!(shard.durable_lsn(), total);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
