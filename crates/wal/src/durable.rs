//! [`DurableIndex`]: any [`ConcurrentIndex`] plus the redo-logging
//! discipline.
//!
//! Every successful mutation routes to a wal shard by the key's
//! `route_hint()` — the same mapping the sharded index uses, so when the
//! shard counts match, a wal shard's append mutex only serializes
//! writers that already serialize on the index shard underneath. The
//! mutation is applied *inside* [`LogShard::append_with`], making
//! apply order equal log order per shard (the recovery invariant).
//!
//! Conditional logging: `update` and `remove` log nothing when they
//! didn't change anything (key absent), so replaying the log can never
//! manufacture state the live index didn't have.
//!
//! Fsync placement follows the wal's [`FsyncPolicy`]:
//!
//! * `Always` — each mutation fsyncs before returning; `multi_insert`
//!   degrades to the scalar loop (one fsync per element — the honest
//!   per-op baseline the benchmarks compare against).
//! * `Group` / `None` — mutations only append. Under `Group` the mount
//!   point flushes: the server issues one [`Wal::commit_dirty`] per
//!   worker round before releasing acks; standalone users call
//!   [`DurableIndex::commit`] at their own batch boundaries.
//!
//! [`LogShard::append_with`]: crate::shard::LogShard::append_with

use std::marker::PhantomData;
use std::ops::Bound;
use std::sync::Arc;

use optiql_index_api::{ConcurrentIndex, IndexKey, IndexStats, RangeIter, ReclaimHandle};

use crate::{FsyncPolicy, Wal};

/// A write-ahead-logged wrapper around an index. See the module docs.
pub struct DurableIndex<I, K: IndexKey = u64> {
    inner: I,
    wal: Arc<Wal>,
    _k: PhantomData<fn(K) -> K>,
}

impl<I, K> DurableIndex<I, K>
where
    K: IndexKey,
    I: ConcurrentIndex<K>,
{
    /// Wrap `inner` (already recovered — see [`Wal::recover_into`])
    /// with the logging discipline of `wal`.
    pub fn new(inner: I, wal: Arc<Wal>) -> Self {
        DurableIndex {
            inner,
            wal,
            _k: PhantomData,
        }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// The wal underneath.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Group-commit flush point: fsync every shard with uncovered
    /// appends. Call after a batch of mutations whose acks are about to
    /// be released.
    pub fn commit(&self) {
        self.wal.commit_dirty();
    }

    /// Checkpoint the wrapped index through the wal (bounding future
    /// replay). Scans `inner` directly — checkpointing never logs.
    pub fn checkpoint(&self) -> std::io::Result<crate::CheckpointReport> {
        self.wal.checkpoint::<K, _>(&self.inner)
    }

    #[inline]
    fn always(&self) -> bool {
        matches!(self.wal.policy(), FsyncPolicy::Always)
    }
}

impl<I, K> ConcurrentIndex<K> for DurableIndex<I, K>
where
    K: IndexKey,
    I: ConcurrentIndex<K>,
{
    fn insert(&self, k: K, v: u64) -> Option<u64> {
        let enc = k.encode();
        let shard = self.wal.shard(self.wal.shard_for_hint(k.route_hint()));
        let (old, last) = shard.append_with(|txn| {
            let old = self.inner.insert(k, v);
            txn.set(enc.as_ref(), v);
            old
        });
        if self.always() {
            shard.ensure_durable(last);
        }
        old
    }

    fn update(&self, k: K, v: u64) -> Option<u64> {
        let enc = k.encode();
        let shard = self.wal.shard(self.wal.shard_for_hint(k.route_hint()));
        let (old, last) = shard.append_with(|txn| {
            let old = self.inner.update(k, v);
            if old.is_some() {
                txn.set(enc.as_ref(), v);
            }
            old
        });
        if self.always() {
            shard.ensure_durable(last); // no-op when nothing was logged
        }
        old
    }

    fn lookup(&self, k: K) -> Option<u64> {
        self.inner.lookup(k)
    }

    fn remove(&self, k: K) -> Option<u64> {
        let enc = k.encode();
        let shard = self.wal.shard(self.wal.shard_for_hint(k.route_hint()));
        let (old, last) = shard.append_with(|txn| {
            let old = self.inner.remove(k);
            if old.is_some() {
                txn.del(enc.as_ref());
            }
            old
        });
        if self.always() {
            shard.ensure_durable(last);
        }
        old
    }

    fn scan_count(&self, start: K, limit: usize) -> usize {
        self.inner.scan_count(start, limit)
    }

    fn range(&self, start: Bound<K>, end: Bound<K>) -> RangeIter<'_, K> {
        self.inner.range(start, end)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn index_stats(&self) -> IndexStats {
        self.inner.index_stats()
    }

    fn multi_lookup(&self, keys: &[K]) -> Vec<Option<u64>> {
        self.inner.multi_lookup(keys)
    }

    /// Batched insert with batched logging. The batch is partitioned by
    /// wal shard with relative order preserved; per-key operation order
    /// is therefore unchanged (equal keys share a route hint, hence a
    /// shard), which is all the in-order duplicate-visibility contract
    /// depends on. One `append_with` per touched shard keeps log order
    /// equal to apply order within each shard.
    fn multi_insert(&self, pairs: &[(K, u64)]) -> Vec<Option<u64>> {
        if self.always() {
            // Per-op durability: the scalar loop, one fsync per element.
            return pairs
                .iter()
                .map(|(k, v)| self.insert(k.clone(), *v))
                .collect();
        }
        let shards = self.wal.shard_count();
        let mut keybuf = Vec::new();
        if shards == 1 {
            let shard = self.wal.shard(0);
            let (res, _) = shard.append_with(|txn| {
                let res = self.inner.multi_insert(pairs);
                for (k, v) in pairs {
                    keybuf.clear();
                    k.encode_into(&mut keybuf);
                    txn.set(&keybuf, *v);
                }
                res
            });
            return res;
        }
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (i, (k, _)) in pairs.iter().enumerate() {
            by_shard[self.wal.shard_for_hint(k.route_hint())].push(i);
        }
        let mut out = vec![None; pairs.len()];
        let mut sub: Vec<(K, u64)> = Vec::with_capacity(pairs.len());
        for (sid, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            sub.clear();
            sub.extend(idxs.iter().map(|&i| pairs[i].clone()));
            let shard = self.wal.shard(sid);
            let (res, _) = shard.append_with(|txn| {
                let res = self.inner.multi_insert(&sub);
                for (k, v) in &sub {
                    keybuf.clear();
                    k.encode_into(&mut keybuf);
                    txn.set(&keybuf, *v);
                }
                res
            });
            for (&i, r) in idxs.iter().zip(res) {
                out[i] = r;
            }
        }
        out
    }

    fn reclaim_handle(&self) -> Option<ReclaimHandle> {
        self.inner.reclaim_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WalConfig;
    use optiql_index_api::model::ModelIndex;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("optiql-wal-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn mount(dir: &PathBuf, policy: FsyncPolicy) -> DurableIndex<ModelIndex> {
        let wal = Arc::new(
            Wal::open(WalConfig {
                policy,
                ..WalConfig::new(dir)
            })
            .unwrap(),
        );
        DurableIndex::new(ModelIndex::new(), wal)
    }

    fn recovered(dir: &PathBuf) -> (ModelIndex, crate::RecoveryReport) {
        let wal = Wal::open(WalConfig::new(dir)).unwrap();
        let fresh = ModelIndex::new();
        let rep = wal.recover_into::<u64, _>(&fresh).unwrap();
        (fresh, rep)
    }

    #[test]
    fn logged_mutations_recover() {
        let dir = tempdir("basic");
        {
            let ix = mount(&dir, FsyncPolicy::Group);
            assert_eq!(ix.insert(1, 10), None);
            assert_eq!(ix.insert(2, 20), None);
            assert_eq!(ix.update(2, 21), Some(20));
            assert_eq!(ix.remove(1), Some(10));
            assert_eq!(ix.insert(3, 30), None);
            ix.commit();
        }
        let (fresh, rep) = recovered(&dir);
        assert_eq!(rep.applied(), 5);
        assert_eq!(fresh.lookup(1), None);
        assert_eq!(fresh.lookup(2), Some(21));
        assert_eq!(fresh.lookup(3), Some(30));
        assert_eq!(fresh.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn noop_update_and_remove_log_nothing() {
        let dir = tempdir("noop");
        {
            let ix = mount(&dir, FsyncPolicy::Group);
            assert_eq!(ix.update(77, 1), None);
            assert_eq!(ix.remove(77), None);
            ix.commit();
            assert_eq!(ix.wal().stats().records, 0);
            assert_eq!(ix.wal().stats().fsyncs, 0);
        }
        let (fresh, rep) = recovered(&dir);
        assert_eq!(rep.applied(), 0);
        assert!(fresh.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_insert_matches_scalar_semantics_and_recovers() {
        let dir = tempdir("multi");
        let pairs: Vec<(u64, u64)> = vec![(5, 50), (6, 60), (5, 51), (7, 70), (5, 52)];
        {
            let ix = mount(&dir, FsyncPolicy::Group);
            let res = ix.multi_insert(&pairs);
            // Duplicate keys see the value written earlier in the batch.
            assert_eq!(res, vec![None, None, Some(50), None, Some(51)]);
            ix.commit();
        }
        let (fresh, _) = recovered(&dir);
        assert_eq!(fresh.lookup(5), Some(52));
        assert_eq!(fresh.lookup(6), Some(60));
        assert_eq!(fresh.lookup(7), Some(70));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn always_policy_fsyncs_per_mutation() {
        let dir = tempdir("always");
        let ix = mount(&dir, FsyncPolicy::Always);
        ix.insert(1, 10);
        ix.insert(2, 20);
        ix.remove(1);
        let s = ix.wal().stats();
        assert_eq!(s.records, 3);
        assert_eq!(s.fsyncs, 3);
        // And every shard is clean: nothing left to commit.
        ix.commit();
        assert_eq!(ix.wal().stats().fsyncs, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_policy_defers_to_commit() {
        let dir = tempdir("group");
        let ix = mount(&dir, FsyncPolicy::Group);
        for k in 0..100u64 {
            ix.insert(k, k * 10);
        }
        assert_eq!(ix.wal().stats().fsyncs, 0);
        ix.commit();
        let s = ix.wal().stats();
        assert_eq!(s.records, 100);
        assert_eq!(s.fsyncs, 1, "one fsync covers the whole batch");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_replay() {
        let dir = tempdir("ckpt");
        {
            let ix = mount(&dir, FsyncPolicy::Group);
            for k in 0..50u64 {
                ix.insert(k, k);
            }
            let ck = ix.checkpoint().unwrap();
            assert_eq!(ck.entries(), 50);
            // Post-checkpoint mutations replay on top.
            ix.insert(100, 1000);
            ix.remove(0);
            ix.commit();
        }
        let (fresh, rep) = recovered(&dir);
        assert_eq!(rep.shards[0].checkpoint_entries, 50);
        assert_eq!(rep.shards[0].skipped, 50, "pre-checkpoint records skipped");
        assert_eq!(rep.shards[0].replayed, 2);
        assert_eq!(fresh.len(), 50); // 50 - removed(0) + inserted(100)
        assert_eq!(fresh.lookup(100), Some(1000));
        assert_eq!(fresh.lookup(0), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
