//! Per-shard write-ahead (redo) logging for the OptiQL index stack.
//!
//! The stack's indexes are memory-optimized: nodes live on the heap,
//! protected by OptiQL optimistic locks, and nothing survives a restart.
//! This crate adds the classic main-memory-database recovery recipe
//! (Larson et al., see PAPERS.md) on top, without touching the trees:
//!
//! * **Redo-only logging.** Every successful mutation appends one
//!   CRC32-framed record ([`record`]) to a per-shard log. Log order
//!   equals apply order per shard ([`shard`]), so replaying a log start
//!   to finish reproduces the shard's final state.
//! * **Group commit.** Appends land in the OS immediately; `fdatasync`
//!   is deferred and amortized. Under [`FsyncPolicy::Group`] the server
//!   issues one `commit_dirty` per worker round — one fsync covers an
//!   entire pipelined burst, and acks are released only after it.
//! * **Checkpoint-by-scan.** A checkpoint is one streaming `range()`
//!   scan of the live index written to per-shard sidecar files
//!   ([`checkpoint`]); it bounds replay without stalling writers.
//! * **Recovery.** [`Wal::open`] truncates torn tails; `recover_into`
//!   loads the newest valid checkpoint per shard and replays the log
//!   tail, in parallel across shards ([`recover`]).
//!
//! [`DurableIndex`] wraps any [`ConcurrentIndex`] with the logging
//! discipline; the server mounts it when `--wal-dir` is given.

use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use optiql_index_api::{ConcurrentIndex, IndexKey};
use optiql_sharded::Router;

pub mod checkpoint;
pub mod crc;
pub mod durable;
pub mod record;
pub mod recover;
pub mod shard;
pub mod stats;

pub use checkpoint::{CheckpointReport, ShardCheckpoint};
pub use durable::DurableIndex;
pub use record::{FrameCursor, Record, TornTail};
pub use recover::{RecoveryReport, ShardRecovery};
pub use shard::LogShard;
pub use stats::{WalStats, WalStatsSnapshot};

/// When acknowledged writes reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync inside every mutating operation before it returns. The
    /// naive durable baseline: correct, and pays one `fdatasync` per op.
    Always,
    /// Group commit: appends are buffered in the OS; the mount point
    /// (server worker round, or an explicit [`DurableIndex::commit`])
    /// issues one fsync covering the whole batch before acks go out.
    #[default]
    Group,
    /// Never fsync. The log still exists and recovery still works up to
    /// whatever the OS wrote back — a measurement baseline, not a
    /// durability contract.
    None,
}

impl FsyncPolicy {
    /// Parse a CLI spelling (`always` / `group` / `none`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "group" => Some(FsyncPolicy::Group),
            "none" => Some(FsyncPolicy::None),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Group => "group",
            FsyncPolicy::None => "none",
        }
    }
}

/// How to open a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding `shard-<i>.log` / `shard-<i>.ckpt` files
    /// (created if absent).
    pub dir: PathBuf,
    /// Number of log shards; must be a power of two. Match the index's
    /// shard count so a wal shard mutex only ever serializes writers
    /// that already contend on the same index shard.
    pub shards: usize,
    /// Router block bits — use the same value as the index router so
    /// wal shard == index shard for every key.
    pub block_bits: u32,
    /// Fsync discipline for [`DurableIndex`] mounts.
    pub policy: FsyncPolicy,
}

impl WalConfig {
    /// Single-shard log in `dir` with the default group-commit policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            shards: 1,
            block_bits: optiql_sharded::DEFAULT_BLOCK_BITS,
            policy: FsyncPolicy::Group,
        }
    }
}

/// What [`Wal::open`] found in one shard's log file.
#[derive(Debug, Clone)]
pub struct ShardMount {
    /// Shard index.
    pub shard: usize,
    /// Valid log bytes after torn-tail truncation.
    pub log_bytes: u64,
    /// Last LSN in the valid prefix (0 if the log is empty).
    pub last_lsn: u64,
    /// The torn tail that was truncated away, if any.
    pub torn: Option<TornTail>,
}

/// A set of per-shard redo logs plus their checkpoint sidecars.
pub struct Wal {
    shards: Vec<Arc<LogShard>>,
    router: Router,
    policy: FsyncPolicy,
    stats: Arc<WalStats>,
    dir: PathBuf,
    mount: Vec<ShardMount>,
}

pub(crate) fn log_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.log"))
}

pub(crate) fn ckpt_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ckpt"))
}

/// Scan an opened log file: return (valid byte length, last LSN seen,
/// torn tail if the file does not end on a frame boundary).
fn scan_log(file: &mut File) -> std::io::Result<(u64, u64, Option<TornTail>)> {
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut cur = FrameCursor::new(&bytes);
    let mut last_lsn = 0u64;
    loop {
        match cur.next_frame() {
            Ok(Some(rec)) => {
                if let Some(lsn) = rec.lsn() {
                    last_lsn = lsn;
                }
            }
            Ok(None) => return Ok((cur.offset(), last_lsn, None)),
            Err(torn) => return Ok((torn.offset, last_lsn, Some(torn))),
        }
    }
}

impl Wal {
    /// Open (creating as needed) the per-shard logs under `cfg.dir`,
    /// truncating any torn tail found in each. Does **not** replay —
    /// call [`Wal::recover_into`] before mounting an index on top.
    pub fn open(cfg: WalConfig) -> std::io::Result<Wal> {
        assert!(
            cfg.shards.is_power_of_two(),
            "wal shard count must be a power of two, got {}",
            cfg.shards
        );
        std::fs::create_dir_all(&cfg.dir)?;
        let stats = Arc::new(WalStats::default());
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut mount = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let path = log_path(&cfg.dir, i);
            let mut file = OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&path)?;
            let (valid_len, last_lsn, torn) = scan_log(&mut file)?;
            if torn.is_some() {
                // Drop the torn tail so future appends extend a valid
                // prefix. (With O_APPEND the next write lands at the new
                // EOF regardless of the read cursor.)
                file.set_len(valid_len)?;
            }
            mount.push(ShardMount {
                shard: i,
                log_bytes: valid_len,
                last_lsn,
                torn,
            });
            shards.push(Arc::new(LogShard::new(
                i,
                path,
                file,
                last_lsn + 1,
                Arc::clone(&stats),
            )?));
        }
        Ok(Wal {
            shards,
            router: Router::new(cfg.shards, cfg.block_bits),
            policy: cfg.policy,
            stats,
            dir: cfg.dir,
            mount,
        })
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The wal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of log shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a route hint maps to (identical to the index router's
    /// mapping when `shards`/`block_bits` match).
    pub fn shard_for_hint(&self, hint: u64) -> usize {
        self.router.route(hint)
    }

    /// Access one shard's log.
    pub fn shard(&self, i: usize) -> &LogShard {
        &self.shards[i]
    }

    /// Fsync every shard with appends not yet covered by one. The
    /// group-commit flush point: one call, at most one fsync per dirty
    /// shard, covering everything appended before it.
    pub fn commit_dirty(&self) {
        for s in &self.shards {
            s.commit();
        }
    }

    /// Per-shard findings from [`Wal::open`] (torn tails, last LSNs).
    pub fn mount_report(&self) -> &[ShardMount] {
        &self.mount
    }

    /// Counter snapshot (records/bytes/fsyncs across all shards).
    pub fn stats(&self) -> WalStatsSnapshot {
        self.stats.snapshot()
    }

    /// Rebuild index state: per shard, load the newest valid checkpoint
    /// (if any) and replay the log tail. `index` must be *empty* and
    /// must **not** be a [`DurableIndex`] over this wal (recovery must
    /// not re-log). Shards recover in parallel. `K` must match the key
    /// type that produced the log.
    pub fn recover_into<K, I>(&self, index: &I) -> std::io::Result<RecoveryReport>
    where
        K: IndexKey,
        I: ConcurrentIndex<K> + ?Sized,
    {
        recover::recover_into(self, index)
    }

    /// Checkpoint-by-scan: stream the live index into per-shard
    /// checkpoint sidecars, bounding future replay to the log tail.
    /// Safe under concurrent writers (see `checkpoint` module docs).
    pub fn checkpoint<K, I>(&self, index: &I) -> std::io::Result<CheckpointReport>
    where
        K: IndexKey,
        I: ConcurrentIndex<K> + ?Sized,
    {
        checkpoint::checkpoint(self, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql_index_api::model::ModelIndex;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("optiql-wal-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in [FsyncPolicy::Always, FsyncPolicy::Group, FsyncPolicy::None] {
            assert_eq!(FsyncPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn open_append_reopen_preserves_lsns() {
        let dir = tempdir("reopen");
        {
            let wal = Wal::open(WalConfig::new(&dir)).unwrap();
            let shard = wal.shard(0);
            let ((), last) = shard.append_with(|txn| {
                txn.set(&1u64.to_be_bytes(), 10);
                txn.set(&2u64.to_be_bytes(), 20);
            });
            shard.ensure_durable(last);
        }
        {
            let wal = Wal::open(WalConfig::new(&dir)).unwrap();
            assert_eq!(wal.mount_report()[0].last_lsn, 2);
            assert!(wal.mount_report()[0].torn.is_none());
            // New appends continue the dense LSN sequence.
            let ((), last) = wal.shard(0).append_with(|txn| {
                txn.del(&1u64.to_be_bytes());
            });
            assert_eq!(last, 3);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tempdir("torn");
        {
            let wal = Wal::open(WalConfig::new(&dir)).unwrap();
            wal.shard(0).append_with(|txn| {
                txn.set(&1u64.to_be_bytes(), 10);
            });
            wal.commit_dirty();
        }
        // Tear the tail: append garbage that is not a valid frame.
        let path = log_path(&dir, 0);
        let valid_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]).unwrap();
        }
        {
            let wal = Wal::open(WalConfig::new(&dir)).unwrap();
            let m = &wal.mount_report()[0];
            assert_eq!(m.last_lsn, 1);
            assert_eq!(m.log_bytes, valid_len);
            assert!(m.torn.is_some(), "torn tail must be reported");
            assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
            // Recovery sees exactly the valid prefix.
            let model = ModelIndex::new();
            let rep = wal.recover_into::<u64, _>(&model).unwrap();
            assert_eq!(rep.applied(), 1);
            assert_eq!(model.lookup(1), Some(10));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_shards_rejected() {
        let dir = tempdir("pow2");
        let _ = Wal::open(WalConfig {
            shards: 3,
            ..WalConfig::new(&dir)
        });
    }
}
