//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the frame
//! checksum of the redo log.
//!
//! Hand-rolled because the workspace builds without crates.io access;
//! table-driven one-byte-at-a-time is plenty for log framing (the log
//! write path is fsync-bound, not checksum-bound). The constants match
//! zlib's `crc32()`, so frames are verifiable with any standard tool.

/// The 256-entry lookup table for the reflected IEEE polynomial,
/// computed at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — zlib-compatible).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic zlib/PNG check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn every_byte_position_matters() {
        let base = b"hello wal frame".to_vec();
        let crc = crc32(&base);
        for i in 0..base.len() {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = base.clone();
                corrupt[i] ^= flip;
                assert_ne!(crc32(&corrupt), crc, "flip at byte {i} undetected");
            }
        }
    }

    #[test]
    fn incremental_equals_whole() {
        // Sanity that the table is self-consistent: crc of concatenation
        // differs from crc of parts unless recombined properly — here we
        // just pin a longer vector against an independently computed
        // value (python zlib.crc32).
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(crc32(&data), 0x2905_8C73);
    }
}
