//! Crash recovery: checkpoint load + log-tail replay, per shard.
//!
//! Per shard, recovery is strictly sequential and idempotent:
//!
//! 1. Read `shard-<i>.ckpt` if present. The checkpoint is accepted only
//!    when *fully* valid — `CkptBegin` header, every entry frame, a
//!    `CkptEnd` footer whose count matches, and a clean EOF. Anything
//!    less (a crash mid-checkpoint leaves a `.tmp`, never a partial
//!    `.ckpt`, but torn bytes can still happen) rejects the whole file:
//!    the shard falls back to full log replay and the report flags it.
//! 2. Apply the checkpoint entries (plain inserts into an empty index).
//! 3. Replay the log in file order, applying `Set`→`insert` and
//!    `Del`→`remove` for records with `lsn >= start_lsn`; older records
//!    are already reflected in the checkpoint and are skipped. Replay
//!    is last-writer-wins, so re-running recovery is harmless.
//!
//! Shards are independent (disjoint key sets by routing), so they
//! recover in parallel — one thread per shard, the same layout the
//! sharded index uses for its own construction.
//!
//! The index being recovered into must be plain (NOT a
//! [`DurableIndex`](crate::DurableIndex) over the same wal): recovery
//! must not append to the log it is reading.

use std::io::Read;

use optiql_index_api::{ConcurrentIndex, IndexKey};

use crate::record::{FrameCursor, Record, TornTail};
use crate::Wal;

/// Per-shard recovery outcome.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// Shard index.
    pub shard: usize,
    /// Entries applied from the checkpoint (0 if none/invalid).
    pub checkpoint_entries: u64,
    /// The checkpoint's `start_lsn` (1 when no checkpoint was usable —
    /// i.e. full log replay).
    pub checkpoint_start_lsn: u64,
    /// True when a checkpoint file existed but failed validation.
    pub checkpoint_invalid: bool,
    /// Log records applied (`lsn >= start_lsn`).
    pub replayed: u64,
    /// Log records skipped as already covered by the checkpoint.
    pub skipped: u64,
    /// Highest LSN seen in the log.
    pub last_lsn: u64,
    /// Torn tail encountered while reading the log (only possible when
    /// reading a directory not opened through [`Wal::open`], which
    /// truncates tails first).
    pub torn: Option<TornTail>,
}

/// What recovery did, shard by shard.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardRecovery>,
}

impl RecoveryReport {
    /// Total records applied (checkpoint entries + replayed log records).
    pub fn applied(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.checkpoint_entries + s.replayed)
            .sum()
    }

    /// True if any shard's log had a torn tail.
    pub fn any_torn(&self) -> bool {
        self.shards.iter().any(|s| s.torn.is_some())
    }

    /// True if any shard rejected an existing checkpoint file.
    pub fn any_checkpoint_invalid(&self) -> bool {
        self.shards.iter().any(|s| s.checkpoint_invalid)
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ckpt: u64 = self.shards.iter().map(|s| s.checkpoint_entries).sum();
        let replayed: u64 = self.shards.iter().map(|s| s.replayed).sum();
        let skipped: u64 = self.shards.iter().map(|s| s.skipped).sum();
        write!(
            f,
            "recovered {} shards: {ckpt} checkpoint entries + {replayed} log records ({skipped} skipped)",
            self.shards.len()
        )?;
        if self.any_checkpoint_invalid() {
            write!(f, ", invalid checkpoint(s) ignored")?;
        }
        if self.any_torn() {
            write!(f, ", torn tail(s) truncated")?;
        }
        Ok(())
    }
}

/// A fully validated checkpoint image.
struct LoadedCkpt {
    start_lsn: u64,
    entries: Vec<(Vec<u8>, u64)>,
}

/// Read and validate `shard-<i>.ckpt`. `Ok(None)` when the file does not
/// exist; `Err(())` when it exists but is not fully valid.
fn load_ckpt(path: &std::path::Path) -> std::io::Result<Result<Option<LoadedCkpt>, ()>> {
    let mut bytes = Vec::new();
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Ok(None)),
        Err(e) => return Err(e),
    };
    let mut cur = FrameCursor::new(&bytes);
    let start_lsn = match cur.next_frame() {
        Ok(Some(Record::CkptBegin { start_lsn })) => start_lsn,
        _ => return Ok(Err(())),
    };
    let mut entries = Vec::new();
    loop {
        match cur.next_frame() {
            Ok(Some(Record::CkptEntry { key, value })) => entries.push((key, value)),
            Ok(Some(Record::CkptEnd { entries: n })) => {
                // Footer count must match, and nothing may follow it.
                if n != entries.len() as u64 || !matches!(cur.next_frame(), Ok(None)) {
                    return Ok(Err(()));
                }
                return Ok(Ok(Some(LoadedCkpt { start_lsn, entries })));
            }
            _ => return Ok(Err(())), // foreign record, torn frame, or EOF before footer
        }
    }
}

fn recover_shard<K, I>(wal: &Wal, shard: usize, index: &I) -> std::io::Result<ShardRecovery>
where
    K: IndexKey,
    I: ConcurrentIndex<K> + ?Sized,
{
    let mut rep = ShardRecovery {
        shard,
        checkpoint_entries: 0,
        checkpoint_start_lsn: 1,
        checkpoint_invalid: false,
        replayed: 0,
        skipped: 0,
        last_lsn: 0,
        torn: None,
    };

    match load_ckpt(&crate::ckpt_path(wal.dir(), shard))? {
        Ok(Some(ckpt)) => {
            rep.checkpoint_start_lsn = ckpt.start_lsn;
            for (key, value) in &ckpt.entries {
                index.insert(K::from_encoded(key), *value);
            }
            rep.checkpoint_entries = ckpt.entries.len() as u64;
        }
        Ok(None) => {}
        Err(()) => rep.checkpoint_invalid = true,
    }

    let mut bytes = Vec::new();
    std::fs::File::open(crate::log_path(wal.dir(), shard))?.read_to_end(&mut bytes)?;
    let mut cur = FrameCursor::new(&bytes);
    loop {
        match cur.next_frame() {
            Ok(Some(rec)) => {
                let lsn = match rec.lsn() {
                    Some(lsn) => lsn,
                    None => continue, // checkpoint record in a log: ignore
                };
                rep.last_lsn = lsn;
                if lsn < rep.checkpoint_start_lsn {
                    rep.skipped += 1;
                    continue;
                }
                rep.replayed += 1;
                match rec {
                    Record::Set { key, value, .. } => {
                        index.insert(K::from_encoded(&key), value);
                    }
                    Record::Del { key, .. } => {
                        index.remove(K::from_encoded(&key));
                    }
                    _ => unreachable!("lsn() filtered non-redo records"),
                }
            }
            Ok(None) => break,
            Err(torn) => {
                rep.torn = Some(torn);
                break;
            }
        }
    }
    Ok(rep)
}

/// See [`Wal::recover_into`].
pub fn recover_into<K, I>(wal: &Wal, index: &I) -> std::io::Result<RecoveryReport>
where
    K: IndexKey,
    I: ConcurrentIndex<K> + ?Sized,
{
    let n = wal.shard_count();
    if n == 1 {
        return Ok(RecoveryReport {
            shards: vec![recover_shard(wal, 0, index)?],
        });
    }
    let results: Vec<std::io::Result<ShardRecovery>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| s.spawn(move || recover_shard(wal, i, index)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut shards = Vec::with_capacity(n);
    for r in results {
        shards.push(r?);
    }
    Ok(RecoveryReport { shards })
}
