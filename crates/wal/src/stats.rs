//! Cheap WAL counters, shared by every shard of a [`Wal`](crate::Wal).
//!
//! Relaxed atomics: these feed benchmarks and the server's shutdown
//! line, not correctness decisions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters (one instance per [`Wal`](crate::Wal), all shards).
#[derive(Debug, Default)]
pub struct WalStats {
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
}

impl WalStats {
    pub(crate) fn on_append(&self, records: u64, bytes: u64) {
        self.records.fetch_add(records, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn on_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`WalStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStatsSnapshot {
    /// Redo records appended (across all shards).
    pub records: u64,
    /// Frame bytes appended (headers included).
    pub bytes: u64,
    /// `fdatasync` calls issued.
    pub fsyncs: u64,
}

impl WalStatsSnapshot {
    /// Counter-wise difference versus an earlier snapshot.
    pub fn since(&self, earlier: &WalStatsSnapshot) -> WalStatsSnapshot {
        WalStatsSnapshot {
            records: self.records.saturating_sub(earlier.records),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            fsyncs: self.fsyncs.saturating_sub(earlier.fsyncs),
        }
    }
}
