//! The log record codec: CRC32-framed, length-prefixed records.
//!
//! Every record travels in a *frame*:
//!
//! ```text
//! frame   := len:u32le | crc:u32le | payload        (crc = crc32(payload))
//! payload := tag:u8 | body
//! ```
//!
//! Keys inside record bodies are stored in their [`IndexKey`] digit-string
//! encoding (the order-preserving, prefix-free form the ART descends and
//! the sharded router hashes — for `u64` the 8 big-endian bytes, for
//! `Bytes` the escape encoding), with an explicit `u16` length prefix so
//! the codec never needs to know the key type to reframe a file.
//!
//! Redo records carry an LSN; checkpoint records don't (a checkpoint file
//! carries one `start_lsn` in its header — see `checkpoint.rs`):
//!
//! ```text
//! Set       := 0x01 | lsn:u64le | klen:u16le | key | value:u64le
//! Del       := 0x02 | lsn:u64le | klen:u16le | key
//! CkptBegin := 0x10 | start_lsn:u64le
//! CkptEntry := 0x11 | klen:u16le | key | value:u64le
//! CkptEnd   := 0x12 | entries:u64le
//! ```
//!
//! Decoding is *torn-tail tolerant by construction*: [`FrameCursor`]
//! yields records until the first frame that cannot be fully validated
//! (short header, absurd length, truncated payload, CRC mismatch, or a
//! malformed body behind a valid CRC) and then reports the byte offset
//! where the valid prefix ends — that offset is where recovery truncates.
//!
//! [`IndexKey`]: optiql_index_api::IndexKey

use crate::crc::crc32;

/// Frame header size: `len:u32 + crc:u32`.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single payload. Keys are at most `u16` encoded bytes
/// plus fixed fields, so anything near this is corruption; the bound
/// keeps a torn length word from looking like a 4 GiB allocation.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Largest encoded key a record can carry.
pub const MAX_KEY: usize = u16::MAX as usize;

const TAG_SET: u8 = 0x01;
const TAG_DEL: u8 = 0x02;
const TAG_CKPT_BEGIN: u8 = 0x10;
const TAG_CKPT_ENTRY: u8 = 0x11;
const TAG_CKPT_END: u8 = 0x12;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Upsert `key := value`, stamped with its log sequence number.
    Set {
        /// Per-shard log sequence number (1-based, dense).
        lsn: u64,
        /// The key's digit-string encoding.
        key: Vec<u8>,
        /// The value written.
        value: u64,
    },
    /// Remove `key`, stamped with its log sequence number.
    Del {
        /// Per-shard log sequence number (1-based, dense).
        lsn: u64,
        /// The key's digit-string encoding.
        key: Vec<u8>,
    },
    /// Checkpoint header: replay log records with `lsn >= start_lsn` on
    /// top of the checkpoint's entries.
    CkptBegin {
        /// First LSN *not* guaranteed to be reflected in the entries.
        start_lsn: u64,
    },
    /// One checkpointed key/value pair.
    CkptEntry {
        /// The key's digit-string encoding.
        key: Vec<u8>,
        /// The checkpointed value.
        value: u64,
    },
    /// Checkpoint footer: `entries` must match the `CkptEntry` count or
    /// the whole checkpoint is rejected.
    CkptEnd {
        /// Number of `CkptEntry` records preceding this footer.
        entries: u64,
    },
}

impl Record {
    /// The LSN this record carries, if it is a redo record.
    pub fn lsn(&self) -> Option<u64> {
        match self {
            Record::Set { lsn, .. } | Record::Del { lsn, .. } => Some(*lsn),
            _ => None,
        }
    }

    /// Append this record as a complete frame.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        match self {
            Record::Set { lsn, key, value } => frame_set(out, *lsn, key, *value),
            Record::Del { lsn, key } => frame_del(out, *lsn, key),
            Record::CkptBegin { start_lsn } => frame_ckpt_begin(out, *start_lsn),
            Record::CkptEntry { key, value } => frame_ckpt_entry(out, key, *value),
            Record::CkptEnd { entries } => frame_ckpt_end(out, *entries),
        }
    }
}

/// Begin a frame: reserve the header, return the payload start offset.
#[inline]
fn open_frame(out: &mut Vec<u8>) -> usize {
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    out.len()
}

/// Seal a frame whose payload begins at `payload_at`: patch length and
/// CRC into the reserved header.
#[inline]
fn seal_frame(out: &mut [u8], payload_at: usize) {
    let len = out.len() - payload_at;
    debug_assert!(len <= MAX_PAYLOAD);
    let crc = crc32(&out[payload_at..]);
    out[payload_at - 8..payload_at - 4].copy_from_slice(&(len as u32).to_le_bytes());
    out[payload_at - 4..payload_at].copy_from_slice(&crc.to_le_bytes());
}

#[inline]
fn push_key(out: &mut Vec<u8>, key: &[u8]) {
    assert!(key.len() <= MAX_KEY, "encoded key exceeds {MAX_KEY} bytes");
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
}

/// Append a `Set` frame without materializing a [`Record`].
pub fn frame_set(out: &mut Vec<u8>, lsn: u64, key: &[u8], value: u64) {
    let p = open_frame(out);
    out.push(TAG_SET);
    out.extend_from_slice(&lsn.to_le_bytes());
    push_key(out, key);
    out.extend_from_slice(&value.to_le_bytes());
    seal_frame(out, p);
}

/// Append a `Del` frame without materializing a [`Record`].
pub fn frame_del(out: &mut Vec<u8>, lsn: u64, key: &[u8]) {
    let p = open_frame(out);
    out.push(TAG_DEL);
    out.extend_from_slice(&lsn.to_le_bytes());
    push_key(out, key);
    seal_frame(out, p);
}

/// Append a `CkptBegin` frame.
pub fn frame_ckpt_begin(out: &mut Vec<u8>, start_lsn: u64) {
    let p = open_frame(out);
    out.push(TAG_CKPT_BEGIN);
    out.extend_from_slice(&start_lsn.to_le_bytes());
    seal_frame(out, p);
}

/// Append a `CkptEntry` frame.
pub fn frame_ckpt_entry(out: &mut Vec<u8>, key: &[u8], value: u64) {
    let p = open_frame(out);
    out.push(TAG_CKPT_ENTRY);
    push_key(out, key);
    out.extend_from_slice(&value.to_le_bytes());
    seal_frame(out, p);
}

/// Append a `CkptEnd` frame.
pub fn frame_ckpt_end(out: &mut Vec<u8>, entries: u64) {
    let p = open_frame(out);
    out.push(TAG_CKPT_END);
    out.extend_from_slice(&entries.to_le_bytes());
    seal_frame(out, p);
}

/// Where (and why) a byte stream stopped decoding: the valid prefix ends
/// at `offset`; everything from there on is torn or corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the end of the last fully valid frame.
    pub offset: u64,
    /// Human-readable cause (short header, crc mismatch, ...).
    pub reason: String,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "torn tail at byte {}: {}", self.offset, self.reason)
    }
}

/// A cursor over a contiguous byte image of a log (or checkpoint) file.
pub struct FrameCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameCursor<'a> {
    /// Start decoding at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameCursor { buf, pos: 0 }
    }

    /// Byte offset of the next undecoded frame — after an `Err`, the
    /// truncation point.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    fn torn(&self, reason: impl Into<String>) -> TornTail {
        TornTail {
            offset: self.pos as u64,
            reason: reason.into(),
        }
    }

    /// Decode the next frame. `Ok(None)` at a clean end of stream;
    /// `Err` at the first byte that cannot belong to a valid frame (the
    /// cursor's [`offset`](Self::offset) then marks the valid prefix).
    pub fn next_frame(&mut self) -> Result<Option<Record>, TornTail> {
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return Ok(None);
        }
        if rest.len() < FRAME_HEADER {
            return Err(self.torn(format!("{}-byte partial frame header", rest.len())));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_PAYLOAD {
            return Err(self.torn(format!("implausible payload length {len}")));
        }
        if rest.len() < FRAME_HEADER + len {
            return Err(self.torn(format!(
                "payload truncated: {} of {len} bytes present",
                rest.len() - FRAME_HEADER
            )));
        }
        let crc_stored = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let crc_actual = crc32(payload);
        if crc_actual != crc_stored {
            return Err(self.torn(format!(
                "crc mismatch: stored {crc_stored:#010x}, computed {crc_actual:#010x}"
            )));
        }
        match decode_payload(payload) {
            Ok(rec) => {
                self.pos += FRAME_HEADER + len;
                Ok(Some(rec))
            }
            Err(e) => Err(self.torn(format!("valid crc but malformed payload: {e}"))),
        }
    }
}

struct Body<'a>(&'a [u8]);

impl<'a> Body<'a> {
    fn u16(&mut self) -> Result<u16, String> {
        if self.0.len() < 2 {
            return Err("short u16".into());
        }
        let v = u16::from_le_bytes(self.0[..2].try_into().unwrap());
        self.0 = &self.0[2..];
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, String> {
        if self.0.len() < 8 {
            return Err("short u64".into());
        }
        let v = u64::from_le_bytes(self.0[..8].try_into().unwrap());
        self.0 = &self.0[8..];
        Ok(v)
    }

    fn key(&mut self) -> Result<Vec<u8>, String> {
        let n = self.u16()? as usize;
        if self.0.len() < n {
            return Err(format!("key length {n} exceeds body"));
        }
        let k = self.0[..n].to_vec();
        self.0 = &self.0[n..];
        Ok(k)
    }

    fn finish(self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing payload bytes", self.0.len()))
        }
    }
}

fn decode_payload(payload: &[u8]) -> Result<Record, String> {
    let (&tag, body) = payload.split_first().ok_or("empty payload")?;
    let mut b = Body(body);
    let rec = match tag {
        TAG_SET => Record::Set {
            lsn: b.u64()?,
            key: b.key()?,
            value: b.u64()?,
        },
        TAG_DEL => Record::Del {
            lsn: b.u64()?,
            key: b.key()?,
        },
        TAG_CKPT_BEGIN => Record::CkptBegin {
            start_lsn: b.u64()?,
        },
        TAG_CKPT_ENTRY => Record::CkptEntry {
            key: b.key()?,
            value: b.u64()?,
        },
        TAG_CKPT_END => Record::CkptEnd { entries: b.u64()? },
        other => return Err(format!("unknown record tag {other:#04x}")),
    };
    b.finish()?;
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Set {
                lsn: 1,
                key: 42u64.to_be_bytes().to_vec(),
                value: 1000,
            },
            Record::Del {
                lsn: 2,
                key: vec![],
            },
            Record::Set {
                lsn: 3,
                key: vec![0xFF; 300],
                value: u64::MAX,
            },
            Record::CkptBegin { start_lsn: 4 },
            Record::CkptEntry {
                key: b"user0001".to_vec(),
                value: 7,
            },
            Record::CkptEnd { entries: 1 },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            r.encode_frame(&mut buf);
        }
        let mut cur = FrameCursor::new(&buf);
        let mut got = Vec::new();
        while let Some(r) = cur.next_frame().expect("valid stream") {
            got.push(r);
        }
        assert_eq!(got, recs);
        assert_eq!(cur.offset(), buf.len() as u64);
    }

    #[test]
    fn truncation_at_any_offset_stops_at_frame_boundary() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            r.encode_frame(&mut buf);
            boundaries.push(buf.len());
        }
        for cut in 0..buf.len() {
            let mut cur = FrameCursor::new(&buf[..cut]);
            let mut n = 0;
            let end = loop {
                match cur.next_frame() {
                    Ok(Some(_)) => n += 1,
                    Ok(None) => break cur.offset(),
                    Err(t) => break t.offset,
                }
            };
            // The decoded prefix is exactly the whole frames before the cut.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(n, whole, "cut at {cut}");
            assert_eq!(end as usize, boundaries[whole], "cut at {cut}");
        }
    }

    #[test]
    fn zero_length_and_giant_frames_are_rejected() {
        let mut buf = vec![0u8; FRAME_HEADER];
        assert!(
            FrameCursor::new(&buf).next_frame().is_err(),
            "len 0 rejected"
        );
        buf[0..4].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(
            FrameCursor::new(&buf).next_frame().is_err(),
            "oversize rejected"
        );
    }

    #[test]
    fn crc_protects_every_payload_byte() {
        let mut buf = Vec::new();
        Record::Set {
            lsn: 9,
            key: b"k".to_vec(),
            value: 3,
        }
        .encode_frame(&mut buf);
        for i in FRAME_HEADER..buf.len() {
            let mut evil = buf.clone();
            evil[i] ^= 0x40;
            let got = FrameCursor::new(&evil).next_frame();
            assert!(got.is_err(), "payload flip at {i} undetected");
        }
    }
}
