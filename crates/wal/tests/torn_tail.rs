//! Torn-tail and corruption properties of the record codec and the
//! recovery path: random record streams, truncated at every byte offset
//! and peppered with byte flips, must decode to exactly the valid
//! prefix — reporting where it ends, never panicking, never inventing
//! records.

use std::collections::BTreeMap;
use std::ops::Bound;

use proptest::prelude::*;

use optiql_index_api::model::ModelIndex;
use optiql_index_api::{ConcurrentIndex, IndexKey};
use optiql_wal::record::{self, FrameCursor, Record, FRAME_HEADER};
use optiql_wal::{FsyncPolicy, Wal, WalConfig};

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..32)
}

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (any::<u64>(), key_strategy(), any::<u64>()).prop_map(|(lsn, key, value)| Record::Set {
            lsn,
            key,
            value
        }),
        (any::<u64>(), key_strategy()).prop_map(|(lsn, key)| Record::Del { lsn, key }),
        any::<u64>().prop_map(|start_lsn| Record::CkptBegin { start_lsn }),
        (key_strategy(), any::<u64>()).prop_map(|(key, value)| Record::CkptEntry { key, value }),
        any::<u64>().prop_map(|entries| Record::CkptEnd { entries }),
    ]
}

/// Encode `recs` back to back; returns (buffer, frame boundaries
/// including 0 and the final length).
fn encode_stream(recs: &[Record]) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::new();
    let mut bounds = vec![0usize];
    for r in recs {
        r.encode_frame(&mut buf);
        bounds.push(buf.len());
    }
    (buf, bounds)
}

/// Decode as much of `buf` as possible; returns the records and the
/// offset where decoding stopped (== buf.len() on a clean end).
fn decode_prefix(buf: &[u8]) -> (Vec<Record>, u64) {
    let mut cur = FrameCursor::new(buf);
    let mut out = Vec::new();
    loop {
        match cur.next_frame() {
            Ok(Some(r)) => out.push(r),
            Ok(None) => return (out, cur.offset()),
            Err(torn) => {
                assert_eq!(torn.offset, cur.offset(), "torn offset matches cursor");
                return (out, torn.offset);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_record_type_round_trips(recs in prop::collection::vec(record_strategy(), 1..24)) {
        let (buf, _) = encode_stream(&recs);
        let (got, end) = decode_prefix(&buf);
        prop_assert_eq!(&got, &recs);
        prop_assert_eq!(end, buf.len() as u64);
    }

    #[test]
    fn truncation_at_every_offset_yields_the_whole_frame_prefix(
        recs in prop::collection::vec(record_strategy(), 1..12),
    ) {
        let (buf, bounds) = encode_stream(&recs);
        for cut in 0..=buf.len() {
            let (got, end) = decode_prefix(&buf[..cut]);
            // Exactly the frames that fit wholly below the cut decode;
            // the reported stop offset is that frame boundary.
            let whole = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(got.len(), whole, "cut at {}", cut);
            prop_assert_eq!(end as usize, bounds[whole], "cut at {}", cut);
            prop_assert_eq!(&got[..], &recs[..whole], "cut at {}", cut);
        }
    }

    #[test]
    fn byte_flips_never_panic_and_never_corrupt_earlier_frames(
        recs in prop::collection::vec(record_strategy(), 1..12),
        flip_pos in any::<u64>(),
        flip_mask in 1..=255u8,
    ) {
        let (mut buf, bounds) = encode_stream(&recs);
        let pos = (flip_pos % buf.len() as u64) as usize;
        buf[pos] ^= flip_mask;
        let (got, end) = decode_prefix(&buf);
        // Frames wholly before the flipped byte are untouched bytes and
        // must decode identically.
        let intact = bounds.iter().filter(|&&b| b <= pos).count() - 1;
        prop_assert!(got.len() >= intact, "flip at {} lost intact frames", pos);
        prop_assert_eq!(&got[..intact], &recs[..intact], "flip at {}", pos);
        prop_assert!(end <= buf.len() as u64);
        // No decoded stream can be longer than what was written: a flip
        // can only merge/destroy frames, never mint extras.
        prop_assert!(got.len() <= recs.len(), "flip at {} minted records", pos);
    }
}

/// Build a single-shard wal with a deterministic op history; returns
/// the wal dir and the shard-0 log bytes.
fn build_log(tag: &str, seed: u64, ops: usize) -> (std::path::PathBuf, Vec<u8>) {
    let dir = std::env::temp_dir().join(format!(
        "optiql-wal-torn-{tag}-{seed}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let wal = std::sync::Arc::new(
            Wal::open(WalConfig {
                policy: FsyncPolicy::None,
                ..WalConfig::new(&dir)
            })
            .unwrap(),
        );
        let ix = optiql_wal::DurableIndex::new(ModelIndex::new(), wal);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..ops {
            let r = next();
            let k = r % 64;
            match (r >> 8) % 4 {
                0 | 1 => {
                    ix.insert(k, next());
                }
                2 => {
                    ix.update(k, next());
                }
                _ => {
                    ix.remove(k);
                }
            }
        }
    }
    let bytes = std::fs::read(dir.join("shard-0.log")).unwrap();
    (dir, bytes)
}

/// Replay a raw log image into a map (the oracle recovery must match).
fn oracle_of(buf: &[u8]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    let mut cur = FrameCursor::new(buf);
    while let Ok(Some(rec)) = cur.next_frame() {
        match rec {
            Record::Set { key, value, .. } => {
                m.insert(u64::from_encoded(&key), value);
            }
            Record::Del { key, .. } => {
                m.remove(&u64::from_encoded(&key));
            }
            _ => {}
        }
    }
    m
}

#[test]
fn recovery_of_a_log_cut_at_any_offset_matches_the_valid_prefix() {
    let (dir, full) = build_log("cut", 0x7E57, 400);
    let log_path = dir.join("shard-0.log");
    // Every offset is too slow end-to-end (each runs a full Wal::open);
    // sweep a coarse stride plus every offset in the torn last frames.
    let mut cuts: Vec<usize> = (0..full.len()).step_by(97).collect();
    cuts.extend(full.len().saturating_sub(64)..=full.len());
    for cut in cuts {
        std::fs::write(&log_path, &full[..cut]).unwrap();
        let wal = Wal::open(WalConfig {
            policy: FsyncPolicy::None,
            ..WalConfig::new(&dir)
        })
        .expect("open never fails on torn input");
        let fresh = ModelIndex::new();
        let rep = wal.recover_into::<u64, _>(&fresh).expect("recover");
        let oracle = oracle_of(&full[..cut]);
        let got: BTreeMap<u64, u64> = fresh.range(Bound::Unbounded, Bound::Unbounded).collect();
        assert_eq!(got, oracle, "cut at {cut}: recovered state diverges");
        // The mount report points at the truncation boundary.
        let m = &wal.mount_report()[0];
        assert!(m.log_bytes <= cut as u64);
        assert_eq!(
            m.torn.is_some(),
            m.log_bytes < cut as u64,
            "cut at {cut}: torn flag must mean bytes were dropped"
        );
        assert_eq!(rep.shards[0].torn, None, "open already truncated");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_falls_back_to_full_log_replay() {
    let (dir, full) = build_log("ckpt", 0xBADC_0DE5, 300);
    // Write a checkpoint, then corrupt one byte of it.
    {
        let wal = Wal::open(WalConfig {
            policy: FsyncPolicy::None,
            ..WalConfig::new(&dir)
        })
        .unwrap();
        let staging = ModelIndex::new();
        wal.recover_into::<u64, _>(&staging).unwrap();
        let ck = wal.checkpoint::<u64, _>(&staging).unwrap();
        assert!(ck.entries() > 0, "checkpoint should have content");
    }
    let ckpt_path = dir.join("shard-0.ckpt");
    let mut ckpt = std::fs::read(&ckpt_path).unwrap();
    let mid = FRAME_HEADER + 1 + (ckpt.len() - FRAME_HEADER - 2) / 2;
    ckpt[mid] ^= 0x20;
    std::fs::write(&ckpt_path, &ckpt).unwrap();

    let wal = Wal::open(WalConfig {
        policy: FsyncPolicy::None,
        ..WalConfig::new(&dir)
    })
    .unwrap();
    let fresh = ModelIndex::new();
    let rep = wal.recover_into::<u64, _>(&fresh).expect("recover");
    assert!(
        rep.any_checkpoint_invalid(),
        "corrupt checkpoint must be flagged"
    );
    assert_eq!(rep.shards[0].checkpoint_entries, 0);
    assert_eq!(rep.shards[0].checkpoint_start_lsn, 1, "full replay");
    let got: BTreeMap<u64, u64> = fresh.range(Bound::Unbounded, Bound::Unbounded).collect();
    assert_eq!(got, oracle_of(&full), "fallback replay diverges");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_header_only_logs_recover_to_nothing() {
    let dir = std::env::temp_dir().join(format!("optiql-wal-torn-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A log of pure garbage shorter than one header.
    std::fs::write(dir.join("shard-0.log"), [0xFFu8; 5]).unwrap();
    let wal = Wal::open(WalConfig {
        policy: FsyncPolicy::None,
        ..WalConfig::new(&dir)
    })
    .unwrap();
    assert!(wal.mount_report()[0].torn.is_some());
    let fresh = ModelIndex::new();
    let rep = wal.recover_into::<u64, _>(&fresh).unwrap();
    assert_eq!(rep.applied(), 0);
    assert!(fresh.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seal_frame_then_flip_any_header_byte_is_detected_or_truncates() {
    // Header flips (len/crc words) must never yield a *different*
    // record: either the frame is rejected or (flipping a len byte to a
    // larger value) the stream ends early.
    let mut buf = Vec::new();
    record::frame_set(&mut buf, 42, &7u64.to_be_bytes(), 4242);
    let original = {
        let (recs, _) = decode_prefix(&buf);
        recs
    };
    for i in 0..FRAME_HEADER {
        for mask in [0x01u8, 0x10, 0x80] {
            let mut evil = buf.clone();
            evil[i] ^= mask;
            let (got, _) = decode_prefix(&evil);
            assert!(
                got.is_empty() || got == original,
                "header flip at {i} produced a forged record"
            );
        }
    }
}
