//! Checkpoint-under-churn differential test: checkpoint-by-scan runs
//! while concurrent writers mutate a real OptiQL B+-tree through the
//! wal; recovery into a fresh tree must reproduce exactly the state the
//! writers' own mirrors agree on.
//!
//! Each writer owns a disjoint key stripe (`key % WRITERS == tid`) and
//! mirrors every acked mutation into a private `BTreeMap`; stripes are
//! disjoint, so the union of the mirrors is the exact expected final
//! state — a `ModelIndex`-style oracle without cross-thread ordering
//! ambiguity. The checkpoint fires once the writers are provably
//! mid-stream (a progress counter passes the halfway mark), so the scan
//! races real splits, merges and removes, plus ongoing log appends.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use optiql_btree::BTreeOptiQL;
use optiql_index_api::ConcurrentIndex;
use optiql_wal::{DurableIndex, FsyncPolicy, Wal, WalConfig};

const WRITERS: u64 = 4;
const OPS_PER_WRITER: u64 = 6_000;
const KEY_SPACE: u64 = 4_096;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn checkpoint_under_churn_recovers_exactly() {
    let dir = std::env::temp_dir().join(format!("optiql-wal-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let wal = Arc::new(
        Wal::open(WalConfig {
            shards: 4,
            // Per-key scatter: small keys must still spread over all
            // four logs, or the test only exercises one shard.
            block_bits: 0,
            policy: FsyncPolicy::Group,
            ..WalConfig::new(&dir)
        })
        .unwrap(),
    );
    let tree: BTreeOptiQL = BTreeOptiQL::new();
    let ix = Arc::new(DurableIndex::new(tree, Arc::clone(&wal)));
    let progress = Arc::new(AtomicU64::new(0));

    let mut mirrors: Vec<BTreeMap<u64, u64>> = std::thread::scope(|s| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|tid| {
                let ix = Arc::clone(&ix);
                let progress = Arc::clone(&progress);
                s.spawn(move || {
                    let mut mirror = BTreeMap::new();
                    let mut rng = 0xC0DE ^ (tid << 32);
                    for _ in 0..OPS_PER_WRITER {
                        let r = splitmix(&mut rng);
                        // Stay on this writer's stripe: disjoint keys
                        // make the mirrors a well-defined oracle.
                        let k = (r % (KEY_SPACE / WRITERS)) * WRITERS + tid;
                        match (r >> 40) % 4 {
                            0 | 1 => {
                                let v = splitmix(&mut rng);
                                ix.insert(k, v);
                                mirror.insert(k, v);
                            }
                            2 => {
                                let v = splitmix(&mut rng);
                                if ix.update(k, v).is_some() {
                                    mirror.insert(k, v);
                                }
                            }
                            _ => {
                                ix.remove(k);
                                mirror.remove(&k);
                            }
                        }
                        progress.fetch_add(1, Ordering::Relaxed);
                    }
                    mirror
                })
            })
            .collect();

        // Fire the checkpoint mid-churn (and again near the end, so a
        // second pass overwrites the first against ongoing appends).
        let total = WRITERS * OPS_PER_WRITER;
        for threshold in [total / 2, total * 9 / 10] {
            while progress.load(Ordering::Relaxed) < threshold {
                std::thread::yield_now();
            }
            let report = ix.checkpoint().expect("checkpoint under churn");
            assert_eq!(report.shards.len(), 4);
        }

        writers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    ix.commit();
    drop(ix);
    drop(wal);

    // Recover into a fresh tree and diff against the merged mirrors.
    let wal2 = Wal::open(WalConfig {
        shards: 4,
        block_bits: 0,
        policy: FsyncPolicy::Group,
        ..WalConfig::new(&dir)
    })
    .unwrap();
    let fresh: BTreeOptiQL = BTreeOptiQL::new();
    let report = wal2.recover_into::<u64, _>(&fresh).expect("recover");
    assert!(
        report.shards.iter().all(|s| s.checkpoint_entries > 0),
        "every shard should have loaded its checkpoint: {report}"
    );
    assert!(
        report.shards.iter().any(|s| s.skipped > 0),
        "checkpoints taken mid-churn must bound some replay"
    );

    let mut expected = BTreeMap::new();
    for m in mirrors.drain(..) {
        expected.extend(m);
    }
    let got: BTreeMap<u64, u64> = fresh.range(Bound::Unbounded, Bound::Unbounded).collect();
    assert_eq!(
        got.len(),
        expected.len(),
        "recovered {} keys, writers acked {}",
        got.len(),
        expected.len()
    );
    assert_eq!(got, expected, "recovered state diverges from the oracle");
    let _ = std::fs::remove_dir_all(&dir);
}
