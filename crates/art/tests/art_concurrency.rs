//! Multi-threaded ART stress tests with exact post-condition checks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use optiql_art::{ArtMcsRw, ArtOptLock, ArtOptiQL, ArtOptiQLNor, ArtTree};

const THREADS: usize = 4;

fn disjoint_inserts<L: optiql::IndexLock>(tree: Arc<ArtTree<L>>) {
    const PER: u64 = 3_000;
    let hs: Vec<_> = (0..THREADS as u64)
        .map(|tid| {
            let t = Arc::clone(&tree);
            std::thread::spawn(move || {
                for i in 0..PER {
                    // Mix of dense and sparse stripes per thread.
                    let k = if i % 2 == 0 {
                        i * THREADS as u64 + tid
                    } else {
                        (i * THREADS as u64 + tid).wrapping_mul(0x9E3779B97F4A7C15)
                    };
                    t.insert(k, k ^ 0xABCD);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let n = tree.check_invariants();
    assert_eq!(n, tree.len());
    for tid in 0..THREADS as u64 {
        for i in 0..PER {
            let k = if i % 2 == 0 {
                i * THREADS as u64 + tid
            } else {
                (i * THREADS as u64 + tid).wrapping_mul(0x9E3779B97F4A7C15)
            };
            assert_eq!(tree.lookup(k), Some(k ^ 0xABCD), "key {k:#x}");
        }
    }
}

fn read_while_inserting<L: optiql::IndexLock>(tree: Arc<ArtTree<L>>) {
    const N: u64 = 6_000;
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let t = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for k in 0..N {
                t.insert(k, k + 1);
            }
            stop.store(true, Ordering::Release);
        })
    };
    let readers: Vec<_> = (0..THREADS - 1)
        .map(|seed| {
            let t = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = seed as u64 + 7;
                let mut seen = 0u64;
                let mut probes = 0u64;
                // Keep probing for a minimum amount even if the writer
                // finishes first (single-CPU hosts serialize the threads).
                while !stop.load(Ordering::Acquire) || probes < 4_000 {
                    probes += 1;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % N;
                    if let Some(v) = t.lookup(k) {
                        assert_eq!(v, k + 1, "torn read at {k}");
                        seen += 1;
                    }
                }
                seen
            })
        })
        .collect();
    writer.join().unwrap();
    let seen: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(seen > 0);
    assert_eq!(tree.check_invariants(), N as usize);
}

fn hot_key_updates<L: optiql::IndexLock>(tree: Arc<ArtTree<L>>) {
    // All threads update the same small key set; values must never be lost
    // and lookups must never observe a foreign key's value.
    const HOT: u64 = 8;
    const PER: u64 = 4_000;
    for k in 0..HOT {
        tree.insert(k, k << 32);
    }
    let hs: Vec<_> = (0..THREADS as u64)
        .map(|tid| {
            let t = Arc::clone(&tree);
            std::thread::spawn(move || {
                for i in 0..PER {
                    let k = (i + tid) % HOT;
                    let stamp = (k << 32) | (tid << 16) | (i & 0xFFFF);
                    assert!(t.update(k, stamp).is_some(), "lost key {k}");
                    let got = t.lookup(k).expect("hot key vanished");
                    assert_eq!(got >> 32, k, "value of wrong key observed");
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(tree.len(), HOT as usize);
}

fn churn<L: optiql::IndexLock>(tree: Arc<ArtTree<L>>) {
    const PER: u64 = 1_500;
    let hs: Vec<_> = (0..THREADS as u64)
        .map(|tid| {
            let t = Arc::clone(&tree);
            std::thread::spawn(move || {
                let key = |i: u64| (i * THREADS as u64 + tid).wrapping_mul(0x2545F4914F6CDD1D);
                for i in 0..PER {
                    assert_eq!(t.insert(key(i), i), None);
                }
                for i in (0..PER).step_by(2) {
                    assert_eq!(t.remove(key(i)), Some(i), "thread {tid} i {i}");
                }
                for i in (0..PER).step_by(4) {
                    assert_eq!(t.insert(key(i), i + 9), None);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    tree.check_invariants();
    for tid in 0..THREADS as u64 {
        let key = |i: u64| (i * THREADS as u64 + tid).wrapping_mul(0x2545F4914F6CDD1D);
        for i in 0..PER {
            let expect = match i % 4 {
                0 => Some(i + 9),
                2 => None,
                _ => Some(i),
            };
            assert_eq!(tree.lookup(key(i)), expect);
        }
    }
}

macro_rules! stress {
    ($name:ident, $body:ident) => {
        mod $name {
            use super::*;
            #[test]
            fn optlock() {
                $body(Arc::new(ArtOptLock::new()));
            }
            #[test]
            fn optiql() {
                $body(Arc::new(ArtOptiQL::new()));
            }
            #[test]
            fn optiql_nor() {
                $body(Arc::new(ArtOptiQLNor::new()));
            }
            #[test]
            fn mcs_rw() {
                $body(Arc::new(ArtMcsRw::new()));
            }
        }
    };
}

stress!(disjoint, disjoint_inserts);
stress!(read_write, read_while_inserting);
stress!(hotset, hot_key_updates);
stress!(churning, churn);

#[test]
fn concurrent_updates_with_forced_expansion() {
    // Aggressive contention-expansion settings under concurrency.
    let tree: Arc<ArtTree<optiql::OptiQL>> = Arc::new(ArtTree::with_expansion(8, 1));
    let sparse: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    for k in &sparse {
        tree.insert(*k, 0);
    }
    let hs: Vec<_> = (0..THREADS)
        .map(|tid| {
            let t = Arc::clone(&tree);
            let keys = sparse.clone();
            std::thread::spawn(move || {
                for round in 0..2_000u64 {
                    let k = keys[(round as usize + tid) % keys.len()];
                    assert!(t.update(k, round).is_some());
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(tree.check_invariants(), sparse.len());
    for k in &sparse {
        assert!(tree.lookup(*k).is_some());
    }
}
