//! ART structural-event counter tests.

use optiql_art::{ArtOptiQL, ArtTree};

#[test]
fn fresh_art_has_zero_stats() {
    let t: ArtOptiQL = ArtOptiQL::new();
    assert_eq!(t.stats(), Default::default());
}

#[test]
fn dense_inserts_grow_nodes() {
    let t: ArtOptiQL = ArtOptiQL::new();
    // 300 keys under one byte-prefix force N4→N16→N48→N256 growth at the
    // last level.
    for k in 0..300u64 {
        t.insert(k, k);
    }
    let s = t.stats();
    assert!(
        s.grows >= 3,
        "expected at least one full growth chain: {s:?}"
    );
    assert!(s.lazy_expansions > 0, "dense keys split lazy leaves: {s:?}");
    assert_eq!(s.index.restarts, 0, "single-threaded: no restarts");
    assert_eq!(s.index.ops, 300, "one recorded op per public insert");
}

#[test]
fn sparse_then_overlapping_keys_split_prefixes() {
    let t: ArtOptiQL = ArtOptiQL::new();
    // First key compresses the whole path; the second shares only the top
    // 4 bytes, forcing a prefix split.
    t.insert(0xAABBCCDD_00000001, 1);
    t.insert(0xAABBCCDD_11110001, 2); // diverges at byte 4
    t.insert(0xAABBFFFF_00000001, 3); // diverges at byte 2 → prefix split
    let s = t.stats();
    assert!(s.prefix_splits >= 1, "{s:?}");
    assert_eq!(t.check_invariants(), 3);
    assert_eq!(t.lookup(0xAABBCCDD_00000001), Some(1));
    assert_eq!(t.lookup(0xAABBCCDD_11110001), Some(2));
    assert_eq!(t.lookup(0xAABBFFFF_00000001), Some(3));
}

#[test]
fn contention_expansion_counter_fires() {
    let t: ArtTree<optiql::OptiQL> = ArtTree::with_expansion(4, 1);
    let key = 0xCC00_0000_0000_0007u64;
    t.insert(key, 0);
    for i in 0..32 {
        t.update(key, i);
    }
    let s = t.stats();
    assert!(
        s.contention_expansions >= 1,
        "hot lazily-expanded leaf must be materialized: {s:?}"
    );
    assert_eq!(t.lookup(key), Some(31));
}

#[test]
fn deletes_collapse_paths() {
    // Key pairs sharing the first 7 bytes create Node4s whose two children
    // are KV leaves; removing one of each pair must collapse the Node4
    // back into a lazily-expanded leaf.
    let t: ArtOptiQL = ArtOptiQL::new();
    let mut keys = Vec::new();
    for g in 0..100u64 {
        keys.push(g << 8);
        keys.push((g << 8) | 1);
    }
    for k in &keys {
        t.insert(*k, 1);
    }
    assert_eq!(t.check_invariants(), keys.len());
    for k in keys.iter().step_by(2) {
        t.remove(*k);
    }
    let s = t.stats();
    assert!(s.collapses > 0, "path collapses expected: {s:?}");
    assert_eq!(t.len(), keys.len() / 2);
    t.check_invariants();
    // The survivors are all still reachable.
    for k in keys.iter().skip(1).step_by(2) {
        assert_eq!(t.lookup(*k), Some(1));
    }
}

#[test]
fn n16_drain_does_not_collapse_but_stays_correct() {
    // Type downsizing (N16→N4 etc.) is deliberately not implemented
    // (documented simplification); draining an N16 to one child must stay
    // semantically correct regardless.
    let t: ArtOptiQL = ArtOptiQL::new();
    let keys: Vec<u64> = (0..2_000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    for k in &keys {
        t.insert(*k, 1);
    }
    for k in &keys {
        assert_eq!(t.remove(*k), Some(1));
    }
    assert_eq!(t.len(), 0);
    t.check_invariants();
}
