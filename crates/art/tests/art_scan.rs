//! ART ordered range scan tests (including concurrent-mutation safety).

use optiql_art::{ArtOptLock, ArtOptiQL};

#[test]
fn scan_empty_tree() {
    let t: ArtOptiQL = ArtOptiQL::new();
    assert!(t.scan(0, 10).is_empty());
    assert!(t.scan(u64::MAX, 10).is_empty());
}

#[test]
fn scan_returns_sorted_entries_from_start() {
    let t: ArtOptiQL = ArtOptiQL::new();
    for k in (0..1_000u64).map(|i| i * 3) {
        t.insert(k, k + 1);
    }
    let all = t.scan(0, usize::MAX);
    assert_eq!(all.len(), 1_000);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
    assert!(all.iter().all(|&(k, v)| v == k + 1));

    // Start between keys.
    let part = t.scan(301, 5);
    assert_eq!(part.len(), 5);
    assert_eq!(part[0].0, 303);
    assert_eq!(part[4].0, 315);

    // Start exactly on a key.
    let part = t.scan(300, 2);
    assert_eq!(part[0].0, 300);

    // Past the end.
    assert!(t.scan(3_000, 5).is_empty());
    // Limit zero.
    assert!(t.scan(0, 0).is_empty());
}

#[test]
fn scan_spans_sparse_structure() {
    let t: ArtOptLock = ArtOptLock::new();
    let mut keys: Vec<u64> = (0..3_000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    for k in &keys {
        t.insert(*k, !*k);
    }
    keys.sort_unstable();
    let mid = keys[1_500];
    let got = t.scan(mid, 100);
    let expect: Vec<(u64, u64)> = keys[1_500..1_600].iter().map(|&k| (k, !k)).collect();
    assert_eq!(got, expect);
}

#[test]
fn scan_agrees_with_model_across_boundaries() {
    use std::collections::BTreeMap;
    let t: ArtOptiQL = ArtOptiQL::new();
    let mut model = BTreeMap::new();
    // Mixed dense + boundary keys.
    let keys: Vec<u64> = (0..500)
        .chain([u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) + 7])
        .collect();
    for k in keys {
        t.insert(k, k ^ 0xAA);
        model.insert(k, k ^ 0xAA);
    }
    for start in [0u64, 1, 100, 499, 500, (1 << 63) - 1, 1 << 63, u64::MAX] {
        for limit in [1usize, 7, 100] {
            let got = t.scan(start, limit);
            let expect: Vec<(u64, u64)> = model
                .range(start..)
                .take(limit)
                .map(|(a, b)| (*a, *b))
                .collect();
            assert_eq!(got, expect, "start={start:#x} limit={limit}");
        }
    }
}

#[test]
fn scan_survives_concurrent_inserts() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let t: Arc<ArtOptiQL> = Arc::new(ArtOptiQL::new());
    for k in 0..2_000u64 {
        t.insert(k * 2, k);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (t, stop) = (Arc::clone(&t), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut k = 4_001u64;
            while !stop.load(Ordering::Relaxed) {
                t.insert(k, k);
                k += 2;
            }
        })
    };
    for _ in 0..200 {
        let got = t.scan(1_000, 50);
        assert!(got.len() <= 50);
        assert!(
            got.windows(2).all(|w| w[0].0 < w[1].0),
            "sorted under churn"
        );
        assert!(got.iter().all(|&(k, _)| k >= 1_000));
        // Stable (even) keys in range must appear gap-free: the writer
        // only ever adds odd keys above the scanned window.
        let evens: Vec<u64> = got.iter().map(|p| p.0).filter(|k| k % 2 == 0).collect();
        for w in evens.windows(2) {
            assert_eq!(
                w[1],
                w[0] + 2,
                "missed stable key between {} and {}",
                w[0],
                w[1]
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    t.check_invariants();
}
