//! Functional tests for every ART lock configuration.

use optiql_art::{ArtMcsRw, ArtOptLock, ArtOptiQL, ArtOptiQLNor, ArtPthread, ArtTree};

macro_rules! for_each_config {
    ($name:ident, $body:expr) => {
        mod $name {
            use super::*;
            #[test]
            fn optlock() {
                $body(&ArtOptLock::new());
            }
            #[test]
            fn optiql() {
                $body(&ArtOptiQL::new());
            }
            #[test]
            fn optiql_nor() {
                $body(&ArtOptiQLNor::new());
            }
            #[test]
            fn mcs_rw() {
                $body(&ArtMcsRw::new());
            }
            #[test]
            fn pthread() {
                $body(&ArtPthread::new());
            }
        }
    };
}

fn basic_crud<L: optiql::IndexLock>(t: &ArtTree<L>) {
    assert!(t.is_empty());
    assert_eq!(t.lookup(5), None);
    assert_eq!(t.insert(5, 50), None);
    assert_eq!(t.insert(6, 60), None);
    assert_eq!(t.lookup(5), Some(50));
    assert_eq!(t.lookup(6), Some(60));
    assert_eq!(t.lookup(7), None);
    assert_eq!(t.update(5, 51), Some(50));
    assert_eq!(t.update(7, 70), None);
    assert_eq!(t.insert(6, 61), Some(60), "insert overwrites");
    assert_eq!(t.remove(6), Some(61));
    assert_eq!(t.remove(6), None);
    assert_eq!(t.len(), 1);
    t.check_invariants();
}

fn dense_keys<L: optiql::IndexLock>(t: &ArtTree<L>) {
    // Dense keys share long prefixes: exercises lazy expansion splits at
    // the deepest byte and node growth N4→N16→N48→N256.
    const N: u64 = 30_000;
    for k in 0..N {
        assert_eq!(t.insert(k, k + 1), None);
    }
    assert_eq!(t.len(), N as usize);
    assert_eq!(t.check_invariants(), N as usize);
    for k in 0..N {
        assert_eq!(t.lookup(k), Some(k + 1), "key {k}");
    }
    assert_eq!(t.lookup(N), None);
}

fn sparse_keys<L: optiql::IndexLock>(t: &ArtTree<L>) {
    // Sparse keys exercise path compression + prefix splits.
    let mut x = 0x243F6A8885A308D3u64;
    let mut keys = Vec::new();
    for _ in 0..10_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        keys.push(x);
    }
    keys.sort_unstable();
    keys.dedup();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.insert(*k, i as u64), None, "insert {k:#x}");
    }
    assert_eq!(t.check_invariants(), keys.len());
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.lookup(*k), Some(i as u64), "lookup {k:#x}");
    }
    // Near-miss probes (key ± 1) must not produce false positives.
    for k in keys.iter().take(2_000) {
        let probe = k.wrapping_add(1);
        if keys.binary_search(&probe).is_err() {
            assert_eq!(t.lookup(probe), None, "false positive at {probe:#x}");
        }
    }
}

fn boundary_keys<L: optiql::IndexLock>(t: &ArtTree<L>) {
    let keys = [
        0u64,
        1,
        0xFF,
        0x100,
        0xFFFF_FFFF,
        0x1_0000_0000,
        u64::MAX - 1,
        u64::MAX,
    ];
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.insert(*k, i as u64), None);
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.lookup(*k), Some(i as u64));
    }
    assert_eq!(t.check_invariants(), keys.len());
    for k in keys {
        assert!(t.remove(k).is_some());
    }
    assert!(t.is_empty());
    t.check_invariants();
}

fn delete_and_collapse<L: optiql::IndexLock>(t: &ArtTree<L>) {
    const N: u64 = 4_000;
    // Sparse enough that deep Node4 chains appear and later collapse.
    let keys: Vec<u64> = (0..N).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
    for k in &keys {
        t.insert(*k, *k ^ 0xFF);
    }
    assert_eq!(t.check_invariants(), keys.len());
    for k in &keys {
        assert_eq!(t.remove(*k), Some(*k ^ 0xFF), "remove {k:#x}");
    }
    assert_eq!(t.len(), 0);
    t.check_invariants();
    // Reusable after draining.
    for k in keys.iter().take(100) {
        assert_eq!(t.insert(*k, 1), None);
    }
    assert_eq!(t.check_invariants(), 100);
}

for_each_config!(crud, basic_crud);
for_each_config!(dense, dense_keys);
for_each_config!(sparse, sparse_keys);
for_each_config!(boundaries, boundary_keys);
for_each_config!(drain, delete_and_collapse);

#[test]
fn contention_expansion_materializes_last_level() {
    // Force expansion fast: threshold 4, sample every time.
    let t: ArtTree<optiql::OptiQL> = ArtTree::with_expansion(4, 1);
    // A sparse key: lazily expanded leaf directly under the root.
    let key = 0xAB_00_00_00_00_00_00_01u64;
    t.insert(key, 0);
    // Hammer updates: each goes through the upgrade path (depth 0 child is
    // a leaf) and bumps the counter until materialization.
    for i in 0..64 {
        assert_eq!(t.update(key, i + 1), Some(i));
    }
    assert_eq!(t.lookup(key), Some(64));
    assert_eq!(t.check_invariants(), 1);
    // After expansion the leaf sits under a materialized last-level node;
    // updates (now direct-locking) still work.
    for i in 64..80 {
        assert_eq!(t.update(key, i + 1), Some(i));
    }
    assert_eq!(t.lookup(key), Some(80));
}
