//! Property-based model checking for the ART against `BTreeMap`.

use std::collections::BTreeMap;

use proptest::prelude::*;

use optiql_art::{ArtOptLock, ArtOptiQL, ArtTree};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Update(u64, u64),
    Remove(u64),
    Lookup(u64),
}

/// Key generator biased toward shared prefixes (dense low keys), sparse
/// spread-out keys, and boundary values — the regimes where path
/// compression, lazy expansion and prefix splits all fire.
fn key_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => 0u64..512,
        3 => (0u64..64).prop_map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)),
        2 => any::<u64>(),
        1 => prop_oneof![Just(0u64), Just(u64::MAX), Just(1u64 << 63), Just(0xFFu64)],
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (key_strategy(), any::<u64>()).prop_map(|(k, v)| Op::Update(k, v)),
        key_strategy().prop_map(Op::Remove),
        key_strategy().prop_map(Op::Lookup),
    ]
}

fn run_model<L: optiql::IndexLock>(tree: &ArtTree<L>, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                assert_eq!(tree.insert(k, v), model.insert(k, v), "insert {k:#x}");
            }
            Op::Update(k, v) => {
                let expect = model.get_mut(&k).map(|s| std::mem::replace(s, v));
                assert_eq!(tree.update(k, v), expect, "update {k:#x}");
            }
            Op::Remove(k) => {
                assert_eq!(tree.remove(k), model.remove(&k), "remove {k:#x}");
            }
            Op::Lookup(k) => {
                assert_eq!(tree.lookup(k), model.get(&k).copied(), "lookup {k:#x}");
            }
        }
    }
    assert_eq!(tree.len(), model.len());
    assert_eq!(tree.check_invariants(), model.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn art_optiql_matches_model(ops in prop::collection::vec(op_strategy(), 1..600)) {
        run_model(&ArtOptiQL::new(), &ops);
    }

    #[test]
    fn art_optlock_matches_model(ops in prop::collection::vec(op_strategy(), 1..600)) {
        run_model(&ArtOptLock::new(), &ops);
    }

    #[test]
    fn art_with_aggressive_expansion_matches_model(
        ops in prop::collection::vec(op_strategy(), 1..400)
    ) {
        // Expansion fires constantly: materialized nodes must stay
        // semantically invisible.
        run_model(&ArtTree::<optiql::OptiQL>::with_expansion(2, 1), &ops);
    }
}
