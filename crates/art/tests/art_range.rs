//! Differential tests for the ART's byte-string keys and streaming
//! `range` iterator: against the `BTreeMap` model when quiescent
//! (property-based, arbitrary byte keys exercising the escape encoding
//! and >7-byte prefix chains), and against invariants under concurrent
//! expansion/collapse churn.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use optiql::IndexLock;
use optiql_art::{ArtMcsRw, ArtOptLock, ArtOptiQL, ArtTree};
use optiql_index_api::{key_above_start, key_below_end, BoxedBytes, Bytes};

fn bound_strategy(key_space: u64) -> impl Strategy<Value = Bound<u64>> {
    prop_oneof![
        1 => Just(Bound::Unbounded),
        4 => (0..key_space).prop_map(Bound::Included),
        4 => (0..key_space).prop_map(Bound::Excluded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quiescent u64 differential over every bound shape.
    #[test]
    fn range_matches_model_when_quiescent(
        kvs in proptest::collection::vec((0..5_000u64, any::<u64>()), 0..300),
        start in bound_strategy(5_000),
        end in bound_strategy(5_000),
    ) {
        let entries: BTreeMap<u64, u64> = kvs.into_iter().collect();
        let art: ArtOptiQL = ArtOptiQL::new();
        for (&k, &v) in &entries {
            art.insert(k, v);
        }
        let got: Vec<(u64, u64)> = art.range(start, end).collect();
        let want: Vec<(u64, u64)> = entries
            .iter()
            .map(|(&k, &v)| (k, v))
            .filter(|(k, _)| key_above_start(k, &start) && key_below_end(k, &end))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Byte-string keys against the model: arbitrary blobs (embedded NUL
    /// and escape bytes included) must round-trip every point op and
    /// stream back in raw lexicographic order. This is the end-to-end
    /// proof that the prefix-free encoding, the digit descent, the chain
    /// allocation, and the decode on yield agree.
    #[test]
    fn byte_keys_match_model(
        raw_list in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24), 0..120),
        probe in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let raws: std::collections::BTreeSet<Vec<u8>> = raw_list.into_iter().collect();
        let art: ArtTree<optiql::OptiQL, Bytes> = ArtTree::new();
        let mut model: BTreeMap<Bytes, u64> = BTreeMap::new();
        for (i, r) in raws.iter().enumerate() {
            let k = Bytes::from(&r[..]);
            prop_assert_eq!(art.insert(k.clone(), i as u64), model.insert(k, i as u64));
        }
        prop_assert_eq!(art.check_invariants(), model.len());
        prop_assert_eq!(art.len(), model.len());
        let probe = Bytes::from(&probe[..]);
        prop_assert_eq!(art.lookup(probe.clone()), model.get(&probe).copied());
        let got: Vec<(Bytes, u64)> = art.range(Bound::Unbounded, Bound::Unbounded).collect();
        let want: Vec<(Bytes, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, want);
        let got: Vec<(Bytes, u64)> =
            art.range(Bound::Excluded(probe.clone()), Bound::Unbounded).collect();
        let want: Vec<(Bytes, u64)> = model
            .range((Bound::Excluded(probe.clone()), Bound::Unbounded))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        prop_assert_eq!(got, want);
        // Remove half, re-check.
        for (i, r) in raws.iter().enumerate() {
            if i % 2 == 0 {
                let k = Bytes::from(&r[..]);
                prop_assert_eq!(art.remove(k.clone()), model.remove(&k));
            }
        }
        prop_assert_eq!(art.check_invariants(), model.len());
        let got: Vec<(Bytes, u64)> = art.range(Bound::Unbounded, Bound::Unbounded).collect();
        let want: Vec<(Bytes, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, want);
    }
}

/// Key strategy pinning the inline/pointer slot boundary: lengths
/// clustered at 6/7/8 bytes, escape bytes `0x00`/`0x01` overweighted,
/// and the empty key.
fn boundary_key() -> impl Strategy<Value = Vec<u8>> {
    fn escape_byte() -> impl Strategy<Value = u8> {
        prop_oneof![
            2 => Just(0x00u8),
            2 => Just(0x01u8),
            1 => Just(0xFFu8),
            3 => any::<u8>(),
        ]
    }
    prop_oneof![
        1 => Just(Vec::new()),
        6 => proptest::collection::vec(escape_byte(), 6..9),
        3 => proptest::collection::vec(escape_byte(), 0..13),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential over the inline/pointer boundary on the ART: the
    /// same key set through `Bytes` (inline slot words) and the
    /// `BoxedBytes` baseline (pointer slots) must both match the model —
    /// identical digits, different slot representations.
    #[test]
    fn inline_and_pointer_representations_agree(
        raw_list in proptest::collection::vec(boundary_key(), 0..100),
    ) {
        let fast: ArtTree<optiql::OptiQL, Bytes> = ArtTree::new();
        let base: ArtTree<optiql::OptiQL, BoxedBytes> = ArtTree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (i, r) in raw_list.iter().enumerate() {
            let v = i as u64;
            prop_assert_eq!(fast.insert(Bytes::from(&r[..]), v), model.get(r).copied());
            prop_assert_eq!(base.insert(BoxedBytes::from(&r[..]), v), model.insert(r.clone(), v));
        }
        for r in &raw_list {
            let want = model.get(r).copied();
            prop_assert_eq!(fast.lookup(Bytes::from(&r[..])), want);
            prop_assert_eq!(base.lookup(BoxedBytes::from(&r[..])), want);
        }
        let want: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let got_fast: Vec<(Vec<u8>, u64)> = fast
            .range(Bound::Unbounded, Bound::Unbounded)
            .map(|(k, v)| (k.as_bytes().to_vec(), v))
            .collect();
        let got_base: Vec<(Vec<u8>, u64)> = base
            .range(Bound::Unbounded, Bound::Unbounded)
            .map(|(k, v)| (k.0.as_bytes().to_vec(), v))
            .collect();
        prop_assert_eq!(&got_fast, &want, "fast path stream order");
        prop_assert_eq!(&got_base, &want, "baseline stream order");
        for r in raw_list.iter().step_by(2) {
            let want = model.remove(r);
            prop_assert_eq!(fast.remove(Bytes::from(&r[..])), want);
            prop_assert_eq!(base.remove(BoxedBytes::from(&r[..])), want);
        }
        prop_assert_eq!(fast.check_invariants(), model.len());
        prop_assert_eq!(base.check_invariants(), model.len());
    }
}

/// Deep shared prefixes: 20+ common bytes force multi-link `Node4`
/// chains (a node header packs at most 7 path bytes), and the divergence
/// sits past the old fixed `KEY_LEN`.
#[test]
fn long_shared_prefixes_build_chains() {
    let art: ArtTree<optiql::OptiQL, Bytes> = ArtTree::new();
    let base = b"tenant/0000000042/table/orders/row/";
    let keys: Vec<Bytes> = (0..200u32)
        .map(|i| {
            let mut k = base.to_vec();
            k.extend_from_slice(format!("{i:08}").as_bytes());
            Bytes::from(&k[..])
        })
        .collect();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(art.insert(k.clone(), i as u64), None, "insert {i}");
    }
    assert_eq!(art.check_invariants(), 200);
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(art.lookup(k.clone()), Some(i as u64), "lookup {i}");
    }
    // A sibling family diverging inside the long prefix.
    art.insert(Bytes::from("tenant/0000000043/x"), 999);
    assert_eq!(art.lookup(Bytes::from("tenant/0000000043/x")), Some(999));
    assert_eq!(art.check_invariants(), 201);
    // Ordered stream spans the chain transparently.
    let got: Vec<Bytes> = art
        .range(Bound::Unbounded, Bound::Unbounded)
        .map(|(k, _)| k)
        .collect();
    let mut want = keys.clone();
    want.push(Bytes::from("tenant/0000000043/x"));
    want.sort();
    assert_eq!(got, want);
    for k in &keys {
        assert!(art.remove(k.clone()).is_some());
    }
    assert_eq!(art.check_invariants(), 1);
}

/// Byte-string YCSB-C shape: a read-only key space of formatted user
/// keys served concurrently, updates racing on a disjoint stripe.
#[test]
fn byte_key_ycsb_c_style_reads() {
    const USERS: u32 = 2_000;
    let art: Arc<ArtTree<optiql::OptiQL, Bytes>> = Arc::new(ArtTree::new());
    for i in 0..USERS {
        art.insert(Bytes::from(format!("user{i:08}").as_bytes()), i as u64);
    }
    let hs: Vec<_> = (0..4u64)
        .map(|t| {
            let art = Arc::clone(&art);
            std::thread::spawn(move || {
                let mut x = 0x1234_5678 ^ t;
                for _ in 0..20_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let i = (x >> 33) as u32 % USERS;
                    let k = Bytes::from(format!("user{i:08}").as_bytes());
                    if t == 3 && x & 7 == 0 {
                        art.update(k, i as u64); // same value: reads stay exact
                    } else {
                        assert_eq!(art.lookup(k), Some(i as u64), "user {i}");
                    }
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(art.check_invariants(), USERS as usize);
}

/// Concurrent churn: writers cycle keys through insert/remove (driving
/// lazy expansion, chain splits, and collapse) while readers stream
/// ranges. Stable keys must always be yielded exactly once, in order,
/// within bounds.
fn churn_harness<L: IndexLock>(art: Arc<ArtTree<L>>) {
    const STABLE: u64 = 400;
    for s in 0..STABLE {
        art.insert(s * 4, s);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let t = Arc::clone(&art);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = 0xC0FFEE ^ w;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let churn = (x % (STABLE * 4)) | 2;
                    if x & 1 << 63 == 0 {
                        t.insert(churn, x);
                    } else {
                        t.remove(churn);
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2u64)
        .map(|r| {
            let t = Arc::clone(&art);
            std::thread::spawn(move || {
                let mut x = 0xDECADE ^ r;
                for _ in 0..200 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let lo = x % (STABLE * 4);
                    let hi = lo + x % 512;
                    let got: Vec<(u64, u64)> =
                        t.range(Bound::Included(lo), Bound::Excluded(hi)).collect();
                    for w in got.windows(2) {
                        assert!(w[0].0 < w[1].0, "stream must ascend strictly");
                    }
                    assert!(
                        got.iter().all(|&(k, _)| k >= lo && k < hi),
                        "stream must respect bounds"
                    );
                    let stable: Vec<u64> =
                        got.iter().map(|&(k, _)| k).filter(|k| k % 4 == 0).collect();
                    let want: Vec<u64> = (lo..hi.min(STABLE * 4)).filter(|k| k % 4 == 0).collect();
                    assert_eq!(stable, want, "every stable key in [{lo},{hi}) exactly once");
                }
            })
        })
        .collect();
    for h in readers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in writers {
        h.join().unwrap();
    }
    art.check_invariants();
}

#[test]
fn range_survives_expansion_collapse_churn_optiql() {
    churn_harness(Arc::new(ArtOptiQL::new()));
}

#[test]
fn range_survives_expansion_collapse_churn_optlock() {
    churn_harness(Arc::new(ArtOptLock::new()));
}

#[test]
fn range_survives_expansion_collapse_churn_pessimistic() {
    churn_harness(Arc::new(ArtMcsRw::new()));
}
