//! # optiql-art — Adaptive Radix Tree with optimistic lock coupling
//!
//! The ART index the paper adapts in §6.2: adaptive node sizes
//! (Node4/16/48/256), path compression, lazy expansion via tagged
//! single-entry leaves, optimistic lock coupling for traversal, an
//! upgrade-based write path that keeps OptiQL's writer queue intact, and
//! **contention expansion** — materializing lazily-expanded leaves under
//! contention so updates can acquire the queue-based lock directly.
//!
//! ```
//! use optiql_art::ArtOptiQL;
//!
//! let art: ArtOptiQL = ArtOptiQL::new();
//! art.insert(7, 70);
//! assert_eq!(art.lookup(7), Some(70));
//! art.update(7, 71);
//! assert_eq!(art.remove(7), Some(71));
//! assert!(art.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod multi;
pub mod node;
pub mod tree;

pub use tree::{ArtStats, ArtTree, DEFAULT_EXPANSION_THRESHOLD, DEFAULT_SAMPLE_INV};

use optiql::{McsRwLock, OptLock, OptiQL, OptiQLNor, PthreadRwLock};

optiql_index_api::impl_concurrent_index! {
    impl [K: optiql_index_api::IndexKey, L: optiql::IndexLock] ConcurrentIndex<K> for ArtTree<L, K>
}

/// ART with centralized optimistic locks (the paper's OptLock baseline).
pub type ArtOptLock = ArtTree<OptLock>;
/// ART with OptiQL on every node (§6.2).
pub type ArtOptiQL = ArtTree<OptiQL>;
/// ART with OptiQL without opportunistic read.
pub type ArtOptiQLNor = ArtTree<OptiQLNor>;
/// ART with the fair queue-based reader-writer MCS lock (pessimistic).
pub type ArtMcsRw = ArtTree<McsRwLock>;
/// ART with a pthread-style pessimistic reader-writer lock.
pub type ArtPthread = ArtTree<PthreadRwLock>;
