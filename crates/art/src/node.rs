//! ART node layout (Leis et al. \[27\]): four adaptively-sized node types,
//! path compression, and single-entry KV leaves reached through tagged
//! pointers (lazy expansion).
//!
//! As in the B+-tree crate, every mutable cell is an atomic accessed with
//! `Relaxed` ordering so optimistic readers are race-free; inconsistent
//! snapshots are rejected by lock-version validation.
//!
//! Keys are fixed-width `u64`s traversed in big-endian byte order (order
//! preserving); a full key is 8 bytes, so a compressed prefix is at most 7
//! bytes and packs into a single atomic word.

use std::sync::atomic::{AtomicPtr, AtomicU16, AtomicU32, AtomicU64, AtomicU8, Ordering};

use optiql::IndexLock;
use optiql_index_api::IndexKey;

const R: Ordering = Ordering::Relaxed;

/// Key length in bytes.
pub const KEY_LEN: usize = 8;

/// Big-endian byte decomposition (order preserving).
#[inline]
pub fn key_bytes(k: u64) -> [u8; KEY_LEN] {
    k.to_be_bytes()
}

/// Node kinds; immutable per allocation (a node changes size by being
/// replaced, never in place).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeType {
    /// Up to 4 children, sorted key array.
    N4 = 0,
    /// Up to 16 children, sorted key array.
    N16 = 1,
    /// Up to 48 children via a 256-entry indirection table.
    N48 = 2,
    /// Direct 256-slot child table.
    N256 = 3,
}

/// Single-entry leaf: the full key plus the payload ("TID"). Reached via a
/// tagged pointer; the key is immutable, the value is an atomic cell so
/// in-place updates need no reallocation. Generic over the key type: the
/// radix structure above stores only digit bytes, so the leaf is the only
/// place a `K` lives.
#[repr(C, align(8))]
pub struct KvLeaf<K: IndexKey = u64> {
    /// The complete key (lazy expansion means inner nodes may not spell
    /// out every byte; the leaf is the source of truth).
    pub key: K,
    val: AtomicU64,
}

impl<K: IndexKey> KvLeaf<K> {
    /// Allocate a leaf, returning its *tagged* child pointer.
    pub fn alloc<L: IndexLock>(key: K, val: u64) -> *mut ArtNode<L> {
        let p = Box::into_raw(Box::new(KvLeaf {
            key,
            val: AtomicU64::new(val),
        }));
        ((p as usize) | 1) as *mut ArtNode<L>
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.val.load(R)
    }

    /// Replace the value (caller holds the parent node's exclusive lock).
    #[inline]
    pub fn set_value(&self, v: u64) -> u64 {
        let old = self.val.load(R);
        self.val.store(v, R);
        old
    }
}

/// True iff a child pointer is a tagged KV leaf.
#[inline]
pub fn is_kv<L: IndexLock>(p: *mut ArtNode<L>) -> bool {
    (p as usize) & 1 == 1
}

/// Untag a KV leaf pointer.
///
/// # Safety
/// `p` must be a tagged pointer produced by [`KvLeaf::alloc`] **with the
/// same key type `K`**, still live or epoch-retired.
#[inline]
pub unsafe fn as_kv<'a, L: IndexLock, K: IndexKey>(p: *mut ArtNode<L>) -> &'a KvLeaf<K> {
    debug_assert!(is_kv(p));
    unsafe { &*(((p as usize) & !1) as *const KvLeaf<K>) }
}

/// Raw (untagged) KV pointer for retirement.
#[inline]
pub fn kv_raw<L: IndexLock, K: IndexKey>(p: *mut ArtNode<L>) -> *mut KvLeaf<K> {
    ((p as usize) & !1) as *mut KvLeaf<K>
}

/// Branchless SSE2 probe of a `Node16` key array: compare all 16 bytes
/// against `b` in one shot, mask the compare result down to the `cnt` live
/// slots, and return the index of the match (key bytes are unique within a
/// node, so at most one bit survives the mask).
///
/// Consistency: `AtomicU8` is layout-identical to `u8`, so reading the
/// array as one 16-byte vector is layout-correct. The vector load is not a
/// single atomic operation, but like every other relaxed payload read in
/// this module it may only be torn by a concurrent writer, and the caller
/// discards the result through lock-version validation in that case. The
/// count mask keeps stale bytes beyond `cnt` (left behind by removals)
/// from ever matching.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn simd_find16(keys: &[AtomicU8; 16], b: u8, cnt: usize) -> Option<usize> {
    use std::arch::x86_64::{
        __m128i, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8,
    };
    debug_assert!(cnt <= 16);
    // Safety: SSE2 is part of the x86_64 baseline; the 16-byte source is a
    // fully initialized `[AtomicU8; 16]` (unaligned load, no alignment
    // requirement).
    let eq = unsafe {
        let hay = _mm_loadu_si128(keys.as_ptr() as *const __m128i);
        _mm_movemask_epi8(_mm_cmpeq_epi8(hay, _mm_set1_epi8(b as i8))) as u32
    };
    let live = eq & ((1u32 << cnt) - 1);
    (live != 0).then(|| live.trailing_zeros() as usize)
}

/// Prefetch a child before it is entered: the leaf line for a tagged KV
/// pointer, the header + leading key/index lines for an inner node. Used
/// by the batched engine, which chooses a child one pipeline turn before
/// touching it.
#[inline(always)]
pub(crate) fn prefetch_child<L: IndexLock>(p: *mut ArtNode<L>) {
    #[cfg(target_arch = "x86_64")]
    // Safety: prefetch is a pure hint and never faults.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let addr = ((p as usize) & !1) as *const i8;
        _mm_prefetch::<_MM_HINT_T0>(addr);
        if !is_kv(p) {
            _mm_prefetch::<_MM_HINT_T0>(addr.wrapping_add(64));
            _mm_prefetch::<_MM_HINT_T0>(addr.wrapping_add(128));
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Common header of every inner ART node.
#[repr(C)]
pub struct ArtNode<L: IndexLock> {
    /// Node kind; immutable after construction.
    typ: NodeType,
    /// Per-node lock (the paper uses the same lock type on *all* ART nodes,
    /// §6.2).
    pub lock: L,
    count: AtomicU16,
    /// Compressed-path length in bytes (0..=7).
    prefix_len: AtomicU8,
    /// Compressed-path bytes, packed big-endian: byte `i` lives at bits
    /// `56 - 8 i`.
    prefix: AtomicU64,
    /// Contention counter for contention expansion (§6.2), incremented
    /// probabilistically on upgrade-based exclusive acquisitions.
    contention: AtomicU32,
}

macro_rules! node_struct {
    ($name:ident, $kids:expr) => {
        /// Sorted-array ART node with a small fixed child capacity.
        #[repr(C)]
        pub struct $name<L: IndexLock> {
            /// Common node header.
            pub hdr: ArtNode<L>,
            keys: [AtomicU8; $kids],
            children: [AtomicPtr<ArtNode<L>>; $kids],
        }
    };
}

node_struct!(Node4, 4);
node_struct!(Node16, 16);

/// 48-child node: a 256-entry table maps a key byte to `slot + 1`
/// (0 = empty), children live in 48 slots.
#[repr(C)]
pub struct Node48<L: IndexLock> {
    /// Common node header.
    pub hdr: ArtNode<L>,
    index: [AtomicU8; 256],
    children: [AtomicPtr<ArtNode<L>>; 48],
}

/// 256-child node: direct table. The tree root is a `Node256` and is never
/// replaced, which removes every root-swap race.
#[repr(C)]
pub struct Node256<L: IndexLock> {
    /// Common node header.
    pub hdr: ArtNode<L>,
    children: [AtomicPtr<ArtNode<L>>; 256],
}

impl<L: IndexLock> ArtNode<L> {
    fn new_header(typ: NodeType) -> ArtNode<L> {
        ArtNode {
            typ,
            lock: L::default(),
            count: AtomicU16::new(0),
            prefix_len: AtomicU8::new(0),
            prefix: AtomicU64::new(0),
            contention: AtomicU32::new(0),
        }
    }

    /// Allocate an inner node of the given type.
    pub fn alloc(typ: NodeType) -> *mut ArtNode<L> {
        match typ {
            NodeType::N4 => Box::into_raw(Box::new(Node4::<L> {
                hdr: Self::new_header(typ),
                keys: [const { AtomicU8::new(0) }; 4],
                children: [const { AtomicPtr::new(std::ptr::null_mut()) }; 4],
            })) as *mut ArtNode<L>,
            NodeType::N16 => Box::into_raw(Box::new(Node16::<L> {
                hdr: Self::new_header(typ),
                keys: [const { AtomicU8::new(0) }; 16],
                children: [const { AtomicPtr::new(std::ptr::null_mut()) }; 16],
            })) as *mut ArtNode<L>,
            NodeType::N48 => Box::into_raw(Box::new(Node48::<L> {
                hdr: Self::new_header(typ),
                index: [const { AtomicU8::new(0) }; 256],
                children: [const { AtomicPtr::new(std::ptr::null_mut()) }; 48],
            })) as *mut ArtNode<L>,
            NodeType::N256 => Box::into_raw(Box::new(Node256::<L> {
                hdr: Self::new_header(typ),
                children: [const { AtomicPtr::new(std::ptr::null_mut()) }; 256],
            })) as *mut ArtNode<L>,
        }
    }

    /// Free an inner node (single-threaded teardown or via EBR retirement).
    ///
    /// # Safety
    /// `p` must be an untagged inner node pointer, not referenced anymore.
    pub unsafe fn free(p: *mut ArtNode<L>) {
        unsafe {
            match (*p).typ {
                NodeType::N4 => drop(Box::from_raw(p as *mut Node4<L>)),
                NodeType::N16 => drop(Box::from_raw(p as *mut Node16<L>)),
                NodeType::N48 => drop(Box::from_raw(p as *mut Node48<L>)),
                NodeType::N256 => drop(Box::from_raw(p as *mut Node256<L>)),
            }
        }
    }

    /// Node kind.
    #[inline]
    pub fn node_type(&self) -> NodeType {
        self.typ
    }

    /// Child count (clamped to the type's capacity).
    #[inline]
    pub fn count(&self) -> usize {
        (self.count.load(R) as usize).min(self.capacity())
    }

    /// Capacity by node type.
    #[inline]
    pub fn capacity(&self) -> usize {
        match self.typ {
            NodeType::N4 => 4,
            NodeType::N16 => 16,
            NodeType::N48 => 48,
            NodeType::N256 => 256,
        }
    }

    /// True iff another child cannot be added without growing.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count.load(R) as usize >= self.capacity()
    }

    /// Compressed-path length (bytes).
    #[inline]
    pub fn prefix_len(&self) -> usize {
        (self.prefix_len.load(R) as usize).min(KEY_LEN - 1)
    }

    /// Prefix byte `i`.
    #[inline]
    pub fn prefix_byte(&self, i: usize) -> u8 {
        debug_assert!(i < KEY_LEN);
        ((self.prefix.load(R) >> (56 - 8 * i)) & 0xFF) as u8
    }

    /// Install a compressed path (exclusive access).
    pub fn set_prefix(&self, bytes: &[u8]) {
        debug_assert!(bytes.len() < KEY_LEN);
        let mut packed = 0u64;
        for (i, b) in bytes.iter().enumerate() {
            packed |= (*b as u64) << (56 - 8 * i);
        }
        self.prefix.store(packed, R);
        self.prefix_len.store(bytes.len() as u8, R);
    }

    /// Compare the compressed path against `key[depth..]` (any encoded key
    /// length). Returns the number of matching bytes, which equals
    /// `prefix_len` on a full match; an exhausted key is a mismatch at the
    /// point of exhaustion.
    #[inline]
    pub fn prefix_match_len(&self, key: &[u8], depth: usize) -> usize {
        let plen = self.prefix_len();
        let mut i = 0;
        while i < plen && depth + i < key.len() {
            if self.prefix_byte(i) != key[depth + i] {
                break;
            }
            i += 1;
        }
        i
    }

    /// Contention counter (for contention expansion, §6.2).
    #[inline]
    pub fn contention(&self) -> u32 {
        self.contention.load(R)
    }

    /// Bump the contention counter, returning the new value.
    #[inline]
    pub fn bump_contention(&self) -> u32 {
        self.contention.fetch_add(1, R) + 1
    }

    /// Reset the contention counter (after an expansion).
    #[inline]
    pub fn reset_contention(&self) {
        self.contention.store(0, R);
    }

    // --- type-dispatched child operations --------------------------------

    /// Child for key byte `b`, or null.
    pub fn find_child(&self, b: u8) -> *mut ArtNode<L> {
        let self_ptr = self as *const ArtNode<L> as *mut ArtNode<L>;
        unsafe {
            match self.typ {
                NodeType::N4 => {
                    let n = &*(self_ptr as *const Node4<L>);
                    let cnt = self.count().min(4);
                    for i in 0..cnt {
                        if n.keys[i].load(R) == b {
                            return n.children[i].load(R);
                        }
                    }
                    std::ptr::null_mut()
                }
                NodeType::N16 => {
                    let n = &*(self_ptr as *const Node16<L>);
                    let cnt = self.count().min(16);
                    #[cfg(target_arch = "x86_64")]
                    match simd_find16(&n.keys, b, cnt) {
                        Some(i) => n.children[i].load(R),
                        None => std::ptr::null_mut(),
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    {
                        for i in 0..cnt {
                            if n.keys[i].load(R) == b {
                                return n.children[i].load(R);
                            }
                        }
                        std::ptr::null_mut()
                    }
                }
                NodeType::N48 => {
                    let n = &*(self_ptr as *const Node48<L>);
                    let slot = n.index[b as usize].load(R);
                    if slot == 0 {
                        std::ptr::null_mut()
                    } else {
                        n.children[(slot - 1) as usize].load(R)
                    }
                }
                NodeType::N256 => {
                    let n = &*(self_ptr as *const Node256<L>);
                    n.children[b as usize].load(R)
                }
            }
        }
    }

    /// Add a child (exclusive access; must not be full; byte must be absent).
    pub fn insert_child(&self, b: u8, child: *mut ArtNode<L>) {
        debug_assert!(!self.is_full());
        debug_assert!(self.find_child(b).is_null());
        let self_ptr = self as *const ArtNode<L> as *mut ArtNode<L>;
        let cnt = self.count.load(R) as usize;
        unsafe {
            match self.typ {
                NodeType::N4 => {
                    let n = &*(self_ptr as *const Node4<L>);
                    // Keep keys sorted for deterministic iteration.
                    let mut pos = 0;
                    while pos < cnt && n.keys[pos].load(R) < b {
                        pos += 1;
                    }
                    let mut i = cnt;
                    while i > pos {
                        n.keys[i].store(n.keys[i - 1].load(R), R);
                        n.children[i].store(n.children[i - 1].load(R), R);
                        i -= 1;
                    }
                    n.keys[pos].store(b, R);
                    n.children[pos].store(child, R);
                }
                NodeType::N16 => {
                    let n = &*(self_ptr as *const Node16<L>);
                    let mut pos = 0;
                    while pos < cnt && n.keys[pos].load(R) < b {
                        pos += 1;
                    }
                    let mut i = cnt;
                    while i > pos {
                        n.keys[i].store(n.keys[i - 1].load(R), R);
                        n.children[i].store(n.children[i - 1].load(R), R);
                        i -= 1;
                    }
                    n.keys[pos].store(b, R);
                    n.children[pos].store(child, R);
                }
                NodeType::N48 => {
                    let n = &*(self_ptr as *const Node48<L>);
                    let slot = (0..48)
                        .find(|&i| n.children[i].load(R).is_null())
                        .expect("Node48 full despite count");
                    n.children[slot].store(child, R);
                    n.index[b as usize].store((slot + 1) as u8, R);
                }
                NodeType::N256 => {
                    let n = &*(self_ptr as *const Node256<L>);
                    n.children[b as usize].store(child, R);
                }
            }
        }
        self.count.store((cnt + 1) as u16, R);
    }

    /// Replace the child at byte `b` (exclusive access; byte must exist).
    /// Returns the previous pointer.
    pub fn replace_child(&self, b: u8, child: *mut ArtNode<L>) -> *mut ArtNode<L> {
        let self_ptr = self as *const ArtNode<L> as *mut ArtNode<L>;
        unsafe {
            match self.typ {
                NodeType::N4 => {
                    let n = &*(self_ptr as *const Node4<L>);
                    for i in 0..self.count() {
                        if n.keys[i].load(R) == b {
                            return n.children[i].swap(child, R);
                        }
                    }
                }
                NodeType::N16 => {
                    let n = &*(self_ptr as *const Node16<L>);
                    for i in 0..self.count() {
                        if n.keys[i].load(R) == b {
                            return n.children[i].swap(child, R);
                        }
                    }
                }
                NodeType::N48 => {
                    let n = &*(self_ptr as *const Node48<L>);
                    let slot = n.index[b as usize].load(R);
                    if slot != 0 {
                        return n.children[(slot - 1) as usize].swap(child, R);
                    }
                }
                NodeType::N256 => {
                    let n = &*(self_ptr as *const Node256<L>);
                    let old = n.children[b as usize].swap(child, R);
                    debug_assert!(!old.is_null());
                    return old;
                }
            }
        }
        panic!("replace_child: byte {b} not present");
    }

    /// Remove the child at byte `b` (exclusive access). Returns the removed
    /// pointer, or null if absent.
    pub fn remove_child(&self, b: u8) -> *mut ArtNode<L> {
        let self_ptr = self as *const ArtNode<L> as *mut ArtNode<L>;
        let cnt = self.count.load(R) as usize;
        unsafe {
            match self.typ {
                NodeType::N4 => {
                    let n = &*(self_ptr as *const Node4<L>);
                    for i in 0..cnt.min(4) {
                        if n.keys[i].load(R) == b {
                            let old = n.children[i].load(R);
                            for j in i..cnt - 1 {
                                n.keys[j].store(n.keys[j + 1].load(R), R);
                                n.children[j].store(n.children[j + 1].load(R), R);
                            }
                            self.count.store((cnt - 1) as u16, R);
                            return old;
                        }
                    }
                    std::ptr::null_mut()
                }
                NodeType::N16 => {
                    let n = &*(self_ptr as *const Node16<L>);
                    for i in 0..cnt.min(16) {
                        if n.keys[i].load(R) == b {
                            let old = n.children[i].load(R);
                            for j in i..cnt - 1 {
                                n.keys[j].store(n.keys[j + 1].load(R), R);
                                n.children[j].store(n.children[j + 1].load(R), R);
                            }
                            self.count.store((cnt - 1) as u16, R);
                            return old;
                        }
                    }
                    std::ptr::null_mut()
                }
                NodeType::N48 => {
                    let n = &*(self_ptr as *const Node48<L>);
                    let slot = n.index[b as usize].load(R);
                    if slot == 0 {
                        return std::ptr::null_mut();
                    }
                    let old = n.children[(slot - 1) as usize].swap(std::ptr::null_mut(), R);
                    n.index[b as usize].store(0, R);
                    self.count.store((cnt - 1) as u16, R);
                    old
                }
                NodeType::N256 => {
                    let n = &*(self_ptr as *const Node256<L>);
                    let old = n.children[b as usize].swap(std::ptr::null_mut(), R);
                    if !old.is_null() {
                        self.count.store((cnt - 1) as u16, R);
                    }
                    old
                }
            }
        }
    }

    /// Allocate the next-size-up node and copy prefix + children into it
    /// (exclusive access on `self`; the new node is private to the caller).
    pub fn grow(&self) -> *mut ArtNode<L> {
        let next = match self.typ {
            NodeType::N4 => NodeType::N16,
            NodeType::N16 => NodeType::N48,
            NodeType::N48 => NodeType::N256,
            NodeType::N256 => unreachable!("Node256 cannot grow"),
        };
        let bigger_ptr = Self::alloc(next);
        let bigger = unsafe { &*bigger_ptr };
        // Copy the compressed path.
        bigger.prefix.store(self.prefix.load(R), R);
        bigger.prefix_len.store(self.prefix_len.load(R), R);
        bigger.contention.store(self.contention.load(R), R);
        self.for_each_child(|b, c| bigger.insert_child(b, c));
        bigger_ptr
    }

    /// Iterate `(byte, child)` pairs in ascending byte order.
    pub fn for_each_child(&self, mut f: impl FnMut(u8, *mut ArtNode<L>)) {
        let self_ptr = self as *const ArtNode<L> as *mut ArtNode<L>;
        unsafe {
            match self.typ {
                NodeType::N4 => {
                    let n = &*(self_ptr as *const Node4<L>);
                    for i in 0..self.count() {
                        f(n.keys[i].load(R), n.children[i].load(R));
                    }
                }
                NodeType::N16 => {
                    let n = &*(self_ptr as *const Node16<L>);
                    for i in 0..self.count() {
                        f(n.keys[i].load(R), n.children[i].load(R));
                    }
                }
                NodeType::N48 => {
                    let n = &*(self_ptr as *const Node48<L>);
                    for b in 0..256 {
                        let slot = n.index[b].load(R);
                        if slot != 0 {
                            f(b as u8, n.children[(slot - 1) as usize].load(R));
                        }
                    }
                }
                NodeType::N256 => {
                    let n = &*(self_ptr as *const Node256<L>);
                    for b in 0..256 {
                        let c = n.children[b].load(R);
                        if !c.is_null() {
                            f(b as u8, c);
                        }
                    }
                }
            }
        }
    }

    /// The single remaining child (exclusive access, count must be 1).
    pub fn only_child(&self) -> (u8, *mut ArtNode<L>) {
        debug_assert_eq!(self.count(), 1);
        let mut out = None;
        self.for_each_child(|b, c| {
            if out.is_none() {
                out = Some((b, c));
            }
        });
        out.expect("only_child on empty node")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql::OptLock;

    type N = ArtNode<OptLock>;

    fn with_node(typ: NodeType, f: impl FnOnce(&N)) {
        let p = N::alloc(typ);
        f(unsafe { &*p });
        unsafe { N::free(p) };
    }

    fn fake_child(i: usize) -> *mut N {
        // Aligned, non-null, never dereferenced sentinel values.
        ((i + 1) * 16) as *mut N
    }

    #[test]
    fn kv_tagging_roundtrip() {
        let p = KvLeaf::alloc::<OptLock>(0xDEADu64, 42);
        assert!(is_kv(p));
        let kv: &KvLeaf<u64> = unsafe { as_kv(p) };
        assert_eq!(kv.key, 0xDEAD);
        assert_eq!(kv.value(), 42);
        assert_eq!(kv.set_value(43), 42);
        assert_eq!(kv.value(), 43);
        drop(unsafe { Box::from_raw(kv_raw::<OptLock, u64>(p)) });
    }

    #[test]
    fn inner_pointers_are_never_tagged() {
        for typ in [NodeType::N4, NodeType::N16, NodeType::N48, NodeType::N256] {
            let p = N::alloc(typ);
            assert!(!is_kv(p));
            unsafe { N::free(p) };
        }
    }

    #[test]
    fn insert_find_remove_every_type() {
        for typ in [NodeType::N4, NodeType::N16, NodeType::N48, NodeType::N256] {
            with_node(typ, |n| {
                let cap = n.capacity().min(8);
                for i in 0..cap {
                    n.insert_child((i * 7) as u8, fake_child(i));
                }
                assert_eq!(n.count(), cap);
                for i in 0..cap {
                    assert_eq!(n.find_child((i * 7) as u8), fake_child(i), "{typ:?}");
                }
                assert!(n.find_child(255).is_null());
                // Remove half.
                for i in (0..cap).step_by(2) {
                    assert_eq!(n.remove_child((i * 7) as u8), fake_child(i));
                }
                for i in 0..cap {
                    let expect = if i % 2 == 0 {
                        std::ptr::null_mut()
                    } else {
                        fake_child(i)
                    };
                    assert_eq!(n.find_child((i * 7) as u8), expect);
                }
            });
        }
    }

    #[test]
    fn replace_child_swaps_pointer() {
        with_node(NodeType::N4, |n| {
            n.insert_child(9, fake_child(0));
            assert_eq!(n.replace_child(9, fake_child(1)), fake_child(0));
            assert_eq!(n.find_child(9), fake_child(1));
        });
    }

    #[test]
    fn grow_preserves_children_and_prefix() {
        let p = N::alloc(NodeType::N4);
        let n = unsafe { &*p };
        n.set_prefix(&[1, 2, 3]);
        for i in 0..4 {
            n.insert_child(i as u8 * 50, fake_child(i));
        }
        assert!(n.is_full());
        let gp = n.grow();
        let g = unsafe { &*gp };
        assert_eq!(g.node_type(), NodeType::N16);
        assert_eq!(g.count(), 4);
        assert_eq!(g.prefix_len(), 3);
        assert_eq!(g.prefix_byte(1), 2);
        for i in 0..4 {
            assert_eq!(g.find_child(i as u8 * 50), fake_child(i));
        }
        unsafe {
            N::free(p);
            N::free(gp);
        }
    }

    #[test]
    fn grow_chain_to_256() {
        let mut p = N::alloc(NodeType::N4);
        let mut filled = 0usize;
        loop {
            let n = unsafe { &*p };
            while !n.is_full() && filled < 256 {
                n.insert_child(filled as u8, fake_child(filled));
                filled += 1;
            }
            if n.node_type() == NodeType::N256 {
                break;
            }
            let g = n.grow();
            unsafe { N::free(p) };
            p = g;
        }
        let n = unsafe { &*p };
        assert_eq!(n.count(), 256);
        for i in 0..256 {
            assert_eq!(n.find_child(i as u8), fake_child(i));
        }
        unsafe { N::free(p) };
    }

    #[test]
    fn prefix_match_detects_divergence() {
        with_node(NodeType::N4, |n| {
            n.set_prefix(&[0xAA, 0xBB, 0xCC]);
            assert_eq!(n.prefix_len(), 3);
            let key = key_bytes(0xAABBCCDD_00000000);
            assert_eq!(n.prefix_match_len(&key, 0), 3);
            let bad = key_bytes(0xAABBFF00_00000000);
            assert_eq!(n.prefix_match_len(&bad, 0), 2);
            // Depth shifts the comparison window.
            let shifted = key_bytes(0x00AABBCC_00000000);
            assert_eq!(n.prefix_match_len(&shifted, 1), 3);
        });
    }

    #[test]
    fn n4_keys_stay_sorted() {
        with_node(NodeType::N4, |n| {
            for b in [9u8, 3, 200, 90] {
                n.insert_child(b, fake_child(b as usize));
            }
            let mut seen = Vec::new();
            n.for_each_child(|b, _| seen.push(b));
            assert_eq!(seen, vec![3, 9, 90, 200]);
        });
    }

    #[test]
    fn node48_reuses_freed_slots() {
        // Slot allocation scans for null children; after remove + insert
        // cycles every byte must still resolve to its own child.
        with_node(NodeType::N48, |n| {
            for b in 0..48u16 {
                n.insert_child(b as u8, fake_child(b as usize));
            }
            assert!(n.is_full());
            // Free every third slot, then refill with new bytes.
            for b in (0..48u16).step_by(3) {
                assert_eq!(n.remove_child(b as u8), fake_child(b as usize));
            }
            for (next, b) in (100usize..).zip((0..48u16).step_by(3)) {
                n.insert_child((b + 64) as u8, fake_child(next));
                let got = n.find_child((b + 64) as u8);
                assert_eq!(got, fake_child(next));
            }
            assert!(n.is_full());
            // Untouched entries survived the churn.
            for b in (1..48u16).step_by(3) {
                assert_eq!(n.find_child(b as u8), fake_child(b as usize));
            }
        });
    }

    #[test]
    fn n16_find_child_matches_reference_for_every_byte() {
        // Fill a Node16 to capacity with spread-out key bytes, then probe
        // all 256 byte values against a reference built from child
        // iteration — exercises the SSE2 movemask path (and the portable
        // fallback elsewhere) at full occupancy.
        with_node(NodeType::N16, |n| {
            for i in 0..16usize {
                n.insert_child((i * 16 + 3) as u8, fake_child(i));
            }
            assert!(n.is_full());
            let mut reference = [std::ptr::null_mut(); 256];
            n.for_each_child(|b, c| reference[b as usize] = c);
            for b in 0..=255u8 {
                assert_eq!(n.find_child(b), reference[b as usize], "byte {b}");
            }
        });
    }

    #[test]
    fn n16_stale_tail_keys_beyond_count_never_match() {
        // Removing the largest key leaves its byte in the key array beyond
        // `count`; the count mask must keep it from matching.
        with_node(NodeType::N16, |n| {
            for i in 0..16usize {
                n.insert_child(i as u8 * 10, fake_child(i));
            }
            assert_eq!(n.remove_child(150), fake_child(15));
            assert_eq!(n.count(), 15);
            assert!(n.find_child(150).is_null());
            // Partial occupancy still finds everything that remains.
            for i in 0..15usize {
                assert_eq!(n.find_child(i as u8 * 10), fake_child(i));
            }
        });
    }

    #[test]
    fn only_child_finds_survivor() {
        with_node(NodeType::N4, |n| {
            n.insert_child(7, fake_child(1));
            n.insert_child(8, fake_child(2));
            n.remove_child(7);
            let (b, c) = n.only_child();
            assert_eq!(b, 8);
            assert_eq!(c, fake_child(2));
        });
    }
}
