//! Batched, software-pipelined ART operations (memory-level parallelism).
//!
//! Same execution model as the B+-tree's batched engine: a batch of keys
//! is processed as a group of in-flight state machines advanced
//! round-robin, each turn moving one operation one tree level and ending
//! right after prefetching the node it will touch next, so one group keeps
//! up to `GROUP` cache misses outstanding instead of one.
//!
//! Each in-flight descent is the scalar OLC protocol re-expressed as a
//! state machine over [`OptimisticGuard`]s: read-guard the child, then
//! validate the parent guard behind it. ART adds one wrinkle the B+-tree
//! does not have — tagged KV-leaf children. Reading `kv.key` is itself a
//! potential cache miss, so a chosen KV child gets its own pipeline state:
//! the turn that discovers it prefetches the leaf line and yields; the
//! next turn reads the key/value and validates.
//!
//! Structural cases (prefix splits, node growth — both need the parent
//! held) and repeatedly-failing ops fall back to the scalar path against
//! cache-warm nodes. Lazy expansion and same-key overwrite only need the
//! current node and are handled inline. Pessimistic lock configurations
//! bypass pipelining: their reads hold real shared locks, which must not
//! be parked across turns.
//!
//! The engine is key-generic like the scalar paths. Radix digits are
//! encoded once per group into a flat reusable buffer (one `encode_into`
//! per key, zero steady-state allocation) and each turn slices its own
//! digits out of it. Byte-string keys get one more pipeline stage than
//! `u64`: their KV-leaf key payload lives behind a pointer, so the `Kv`
//! turn prefetches that payload line and yields (`KvWarm`) before the
//! compare-and-validate turn touches it.

use std::sync::atomic::Ordering;

use optiql::olc::OptimisticGuard;
use optiql::stats::{self, Event};
use optiql::IndexLock;
use optiql_index_api::IndexKey;

use crate::node::{as_kv, is_kv, prefetch_child, ArtNode, KvLeaf};
use crate::tree::{alloc_chain, digit, ArtTree};

/// Operations interleaved per pipeline group (see the B+-tree engine for
/// the sizing rationale).
pub(crate) const GROUP: usize = 8;

/// Pipelined restarts per op before completing it on the scalar path.
const PIPELINE_ATTEMPTS: u32 = 3;

/// One in-flight operation. `Enter`: `child` (an inner node) was chosen
/// under `parent` and prefetched; next turn guards it. `Kv`: `child` (a
/// tagged KV leaf) was chosen and its line prefetched; next turn reads it.
/// `KvWarm` (pointer-slot keys only): the leaf header has been read far
/// enough to prefetch the out-of-line key payload; next turn compares.
enum OpSt<'t, L: IndexLock> {
    Start,
    Enter {
        parent: OptimisticGuard<'t, L>,
        child: *mut ArtNode<L>,
        depth: usize,
    },
    Kv {
        node: &'t ArtNode<L>,
        guard: OptimisticGuard<'t, L>,
        child: *mut ArtNode<L>,
        byte: u8,
        depth: usize,
    },
    KvWarm {
        node: &'t ArtNode<L>,
        guard: OptimisticGuard<'t, L>,
        child: *mut ArtNode<L>,
        byte: u8,
        depth: usize,
    },
    Done(Option<u64>),
}

/// Outcome of one turn of an in-flight op.
enum Turn<'t, L: IndexLock> {
    Next(OpSt<'t, L>),
    Restart,
}

impl<L: IndexLock, K: IndexKey> ArtTree<L, K> {
    /// Batched point lookups; `result[i] == lookup(keys[i])`, order
    /// preserved. Pipelines `GROUP` descents with interleaved prefetch.
    pub fn multi_lookup(&self, keys: &[K]) -> Vec<Option<u64>> {
        stats::record(Event::BatchIssued);
        if L::PESSIMISTIC || keys.len() < 2 {
            return keys.iter().map(|k| self.lookup(k.clone())).collect();
        }
        let _g = self.collector.pin();
        let mut out = Vec::with_capacity(keys.len());
        let mut restarts = 0u64;
        // Flat per-group digit buffer: one `encode_into` per key up front,
        // every turn slices its digits instead of re-encoding.
        let mut digits: Vec<u8> = Vec::new();
        for group in keys.chunks(GROUP) {
            digits.clear();
            let mut offs = [0usize; GROUP + 1];
            for (j, key) in group.iter().enumerate() {
                key.encode_into(&mut digits);
                offs[j + 1] = digits.len();
            }
            let mut st: [OpSt<'_, L>; GROUP] = std::array::from_fn(|_| OpSt::Start);
            let mut attempts = [0u32; GROUP];
            let mut pending = group.len();
            while pending > 0 {
                stats::record(Event::BatchPrefetchRound);
                for (i, key) in group.iter().enumerate() {
                    if let OpSt::Done(_) = st[i] {
                        continue;
                    }
                    let kb = &digits[offs[i]..offs[i + 1]];
                    let turn = match std::mem::replace(&mut st[i], OpSt::Start) {
                        OpSt::Start => {
                            if attempts[i] >= PIPELINE_ATTEMPTS {
                                Turn::Next(OpSt::Done(self.lookup_impl(key)))
                            } else {
                                self.lk_start(kb)
                            }
                        }
                        OpSt::Enter {
                            parent,
                            child,
                            depth,
                        } => self.lk_enter(kb, parent, child, depth),
                        OpSt::Kv {
                            node,
                            guard,
                            child,
                            byte,
                            depth,
                        } => {
                            if K::INLINE {
                                self.lk_kv(key, guard, child)
                            } else {
                                unsafe { as_kv::<L, K>(child) }.key.prefetch_payload();
                                Turn::Next(OpSt::KvWarm {
                                    node,
                                    guard,
                                    child,
                                    byte,
                                    depth,
                                })
                            }
                        }
                        OpSt::KvWarm { guard, child, .. } => self.lk_kv(key, guard, child),
                        OpSt::Done(_) => unreachable!(),
                    };
                    match turn {
                        Turn::Next(next) => {
                            if let OpSt::Done(_) = next {
                                pending -= 1;
                            }
                            st[i] = next;
                        }
                        Turn::Restart => {
                            attempts[i] += 1;
                            restarts += 1;
                            stats::record(Event::BatchOpRestart);
                        }
                    }
                }
            }
            for s in st.iter().take(group.len()) {
                match s {
                    OpSt::Done(r) => out.push(*r),
                    _ => unreachable!("pipeline drained with op not Done"),
                }
            }
        }
        self.index_stats.record_ops(keys.len() as u64);
        self.index_stats.record_restarts(restarts);
        out
    }

    /// Batched inserts, equivalent to applying `pairs` in order (a
    /// duplicate key later in the batch observes the earlier write).
    pub fn multi_insert(&self, pairs: &[(K, u64)]) -> Vec<Option<u64>> {
        stats::record(Event::BatchIssued);
        if L::PESSIMISTIC || pairs.len() < 2 {
            return pairs
                .iter()
                .map(|(k, v)| self.insert(k.clone(), *v))
                .collect();
        }
        let _g = self.collector.pin();
        let mut out = Vec::with_capacity(pairs.len());
        let mut restarts = 0u64;
        let mut digits: Vec<u8> = Vec::new();
        for group in pairs.chunks(GROUP) {
            digits.clear();
            let mut offs = [0usize; GROUP + 1];
            for (j, (key, _)) in group.iter().enumerate() {
                key.encode_into(&mut digits);
                offs[j + 1] = digits.len();
            }
            let mut st: [OpSt<'_, L>; GROUP] = std::array::from_fn(|_| OpSt::Start);
            let mut attempts = [0u32; GROUP];
            // Ops whose key already occurs earlier in this group run
            // scalar, in order, after the group drains — preserving the
            // in-order batch semantics. (Groups are sequential, so only
            // intra-group duplicates can race.)
            let mut deferred = [false; GROUP];
            let mut pending = 0usize;
            for (j, (k, _)) in group.iter().enumerate() {
                deferred[j] = group[..j].iter().any(|(e, _)| e == k);
                pending += usize::from(!deferred[j]);
            }
            while pending > 0 {
                stats::record(Event::BatchPrefetchRound);
                for (i, (key, val)) in group.iter().enumerate() {
                    let val = *val;
                    if deferred[i] {
                        continue;
                    }
                    if let OpSt::Done(_) = st[i] {
                        continue;
                    }
                    let kb = &digits[offs[i]..offs[i + 1]];
                    let turn = match std::mem::replace(&mut st[i], OpSt::Start) {
                        OpSt::Start => {
                            if attempts[i] >= PIPELINE_ATTEMPTS {
                                Turn::Next(OpSt::Done(self.insert_optimistic(key.clone(), val)))
                            } else {
                                self.in_start(key, kb, val)
                            }
                        }
                        OpSt::Enter {
                            parent,
                            child,
                            depth,
                        } => self.in_enter(key, kb, val, parent, child, depth),
                        OpSt::Kv {
                            node,
                            guard,
                            child,
                            byte,
                            depth,
                        } => {
                            if K::INLINE {
                                self.in_kv(key, kb, val, node, guard, child, byte, depth)
                            } else {
                                unsafe { as_kv::<L, K>(child) }.key.prefetch_payload();
                                Turn::Next(OpSt::KvWarm {
                                    node,
                                    guard,
                                    child,
                                    byte,
                                    depth,
                                })
                            }
                        }
                        OpSt::KvWarm {
                            node,
                            guard,
                            child,
                            byte,
                            depth,
                        } => self.in_kv(key, kb, val, node, guard, child, byte, depth),
                        OpSt::Done(_) => unreachable!(),
                    };
                    match turn {
                        Turn::Next(next) => {
                            if let OpSt::Done(_) = next {
                                pending -= 1;
                            }
                            st[i] = next;
                        }
                        Turn::Restart => {
                            attempts[i] += 1;
                            restarts += 1;
                            stats::record(Event::BatchOpRestart);
                        }
                    }
                }
            }
            for (j, (k, v)) in group.iter().enumerate() {
                if deferred[j] {
                    st[j] = OpSt::Done(self.insert_optimistic(k.clone(), *v));
                }
            }
            for s in st.iter().take(group.len()) {
                match s {
                    OpSt::Done(r) => out.push(*r),
                    _ => unreachable!("pipeline drained with op not Done"),
                }
            }
        }
        let added = out.iter().filter(|r| r.is_none()).count();
        if added > 0 {
            self.size.fetch_add(added, Ordering::Relaxed);
        }
        self.index_stats.record_ops(pairs.len() as u64);
        self.index_stats.record_restarts(restarts);
        out
    }

    // --- lookup turns -----------------------------------------------------

    /// First turn: guard the root (never replaced, always cache-hot) and
    /// advance one level.
    #[inline]
    fn lk_start(&self, kb: &[u8]) -> Turn<'_, L> {
        let node = self.root();
        let Some(g) = OptimisticGuard::read(&node.lock) else {
            return Turn::Restart;
        };
        self.lk_advance(kb, node, g, 0)
    }

    /// Later turns: guard the prefetched child, validate the parent guard
    /// behind it (the OLC coupling step), and advance one more level.
    #[inline]
    fn lk_enter<'t>(
        &'t self,
        kb: &[u8],
        parent: OptimisticGuard<'t, L>,
        child: *mut ArtNode<L>,
        depth: usize,
    ) -> Turn<'t, L> {
        let ci = unsafe { &*child };
        let Some(cg) = OptimisticGuard::read(&ci.lock) else {
            parent.abandon();
            return Turn::Restart;
        };
        if !parent.validate() {
            cg.abandon();
            return Turn::Restart;
        }
        self.lk_advance(kb, ci, cg, depth)
    }

    /// KV turn: the leaf line was prefetched last turn; read it and
    /// validate the node it was found under.
    #[inline]
    fn lk_kv<'t>(
        &self,
        key: &K,
        guard: OptimisticGuard<'t, L>,
        child: *mut ArtNode<L>,
    ) -> Turn<'t, L> {
        let kv = unsafe { as_kv::<L, K>(child) };
        let (hit, val) = (kv.key == *key, kv.value());
        if !guard.validate() {
            return Turn::Restart;
        }
        Turn::Next(OpSt::Done(hit.then_some(val)))
    }

    /// One descent step at `(node, g, depth)`: mirrors one iteration of
    /// the scalar `lookup` loop, but yields after prefetching the chosen
    /// child instead of entering it.
    #[inline]
    fn lk_advance<'t>(
        &self,
        kb: &[u8],
        node: &'t ArtNode<L>,
        g: OptimisticGuard<'t, L>,
        mut depth: usize,
    ) -> Turn<'t, L> {
        let pl = node.prefix_len();
        if pl > 0 {
            let m = node.prefix_match_len(kb, depth);
            if m < pl {
                if !g.validate() {
                    return Turn::Restart;
                }
                return Turn::Next(OpSt::Done(None));
            }
            depth += pl;
        }
        let b = digit(kb, depth);
        let child = node.find_child(b);
        if !g.recheck() {
            g.abandon();
            return Turn::Restart;
        }
        if child.is_null() {
            if !g.validate() {
                return Turn::Restart;
            }
            return Turn::Next(OpSt::Done(None));
        }
        prefetch_child(child);
        if is_kv(child) {
            return Turn::Next(OpSt::Kv {
                node,
                guard: g,
                child,
                byte: b,
                depth,
            });
        }
        Turn::Next(OpSt::Enter {
            parent: g,
            child,
            depth: depth + 1,
        })
    }

    // --- insert turns -----------------------------------------------------

    /// First insert turn: guard the root and advance.
    #[inline]
    fn in_start(&self, key: &K, kb: &[u8], val: u64) -> Turn<'_, L> {
        let node = self.root();
        let Some(g) = OptimisticGuard::read(&node.lock) else {
            return Turn::Restart;
        };
        self.in_advance(key, kb, val, node, g, 0)
    }

    /// Later insert turns: guard the prefetched inner child, validate the
    /// parent guard behind it, and advance. The parent validation is
    /// load-bearing, not just the lookup protocol copied over: during the
    /// yield since `find_child`, a prefix split may relocate the child one
    /// level down and shorten its prefix — the child guard would then be
    /// taken on the *post-split* version, so no later check would catch
    /// the now-stale `depth`. Validating the parent pins the child's
    /// position as of the moment its guard was acquired.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn in_enter<'t>(
        &'t self,
        key: &K,
        kb: &[u8],
        val: u64,
        parent: OptimisticGuard<'t, L>,
        child: *mut ArtNode<L>,
        depth: usize,
    ) -> Turn<'t, L> {
        let ci = unsafe { &*child };
        let Some(cg) = OptimisticGuard::read(&ci.lock) else {
            parent.abandon();
            return Turn::Restart;
        };
        if !parent.validate() {
            cg.abandon();
            return Turn::Restart;
        }
        self.in_advance(key, kb, val, ci, cg, depth)
    }

    /// KV turn of an insert: overwrite on a key match, otherwise perform
    /// the lazy-expansion split inline (it only needs the current node
    /// exclusively, like the scalar path).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn in_kv<'t>(
        &self,
        key: &K,
        kb: &[u8],
        val: u64,
        node: &'t ArtNode<L>,
        guard: OptimisticGuard<'t, L>,
        child: *mut ArtNode<L>,
        byte: u8,
        depth: usize,
    ) -> Turn<'t, L> {
        let kv = unsafe { as_kv::<L, K>(child) };
        if kv.key == *key {
            let Some(t) = guard.try_upgrade() else {
                return Turn::Restart;
            };
            let old = kv.set_value(val);
            node.lock.x_unlock(t);
            return Turn::Next(OpSt::Done(Some(old)));
        }
        // Lazy-expansion split: push both keys below a fresh chain.
        let oenc = kv.key.encode();
        let okb = oenc.as_ref();
        let mut d = depth + 1;
        let lim = okb.len().min(kb.len());
        while d < lim && okb[d] == kb[d] {
            d += 1;
        }
        // Path-consistent prefix-free keys diverge inside both encodings;
        // hitting an end means the captured state went stale (the upgrade
        // below would fail anyway) — restart instead of indexing past it.
        if d >= okb.len() || d >= kb.len() {
            guard.abandon();
            return Turn::Restart;
        }
        let Some(t) = guard.try_upgrade() else {
            return Turn::Restart;
        };
        self.note_lazy_expansion();
        let new_leaf = KvLeaf::alloc::<L>(key.clone(), val);
        let mut kids = [(digit(okb, d), child), (digit(kb, d), new_leaf)];
        kids.sort_by_key(|&(b, _)| b);
        let chain = alloc_chain::<L>(&kb[depth + 1..d], &kids);
        node.replace_child(byte, chain);
        node.lock.x_unlock(t);
        Turn::Next(OpSt::Done(None))
    }

    /// One insert descent step. Cases needing the parent exclusively
    /// (prefix split, node growth) complete on the scalar path; the
    /// empty-slot insert happens inline on this already-prefetched node.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn in_advance<'t>(
        &self,
        key: &K,
        kb: &[u8],
        val: u64,
        node: &'t ArtNode<L>,
        g: OptimisticGuard<'t, L>,
        mut depth: usize,
    ) -> Turn<'t, L> {
        let pl = node.prefix_len();
        if pl > 0 {
            let m = node.prefix_match_len(kb, depth);
            if m < pl {
                // Prefix split needs the parent held; scalar handles it.
                g.abandon();
                return Turn::Next(OpSt::Done(self.insert_optimistic(key.clone(), val)));
            }
            depth += pl;
        }
        let b = digit(kb, depth);
        let child = node.find_child(b);
        // Fill level read inside the validated window (see the scalar
        // path for why it must precede the recheck).
        let full = node.is_full();
        if !g.recheck() {
            g.abandon();
            return Turn::Restart;
        }
        if child.is_null() {
            if full {
                // Growing replaces the node in its parent; scalar handles.
                g.abandon();
                return Turn::Next(OpSt::Done(self.insert_optimistic(key.clone(), val)));
            }
            let Some(t) = g.try_upgrade() else {
                return Turn::Restart;
            };
            node.insert_child(b, KvLeaf::alloc::<L>(key.clone(), val));
            node.lock.x_unlock(t);
            return Turn::Next(OpSt::Done(None));
        }
        prefetch_child(child);
        if is_kv(child) {
            return Turn::Next(OpSt::Kv {
                node,
                guard: g,
                child,
                byte: b,
                depth,
            });
        }
        Turn::Next(OpSt::Enter {
            parent: g,
            child,
            depth: depth + 1,
        })
    }
}
