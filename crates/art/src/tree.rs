//! Concurrent ART with optimistic lock coupling (paper §6.2).
//!
//! All nodes carry the same lock type `L` (unlike the B+-tree, ART cannot
//! split lock types by level because a node's role — inner vs. last-level —
//! is only known after reading it). The write paths adapt to `L::STRATEGY`:
//!
//! * Optimistic locks (`OptLock`, `OptiQL*`) use the **upgrade** interface:
//!   a reader that located its target CASes the version it observed into an
//!   exclusive acquisition. For OptiQL the upgrade leaves the queue intact,
//!   so later writers still line up instead of hammering the word (§6.2).
//! * With a `DirectLock` strategy, updates that provably target the last
//!   level (all encoded key bytes consumed) acquire the lock directly — the
//!   queue-based path of Algorithm 4.
//! * **Contention expansion**: upgrade-acquired exclusive locks
//!   probabilistically bump a per-node contention counter; past a threshold
//!   the lazily-expanded leaf is materialized into a real last-level node so
//!   subsequent updates can use the direct path (§6.2, Figure 5).
//! * Pessimistic locks use lock coupling: shared on the way down for reads,
//!   exclusive coupling for writes.
//!
//! The root is a `Node256` that is never replaced, removing root-swap races.
//!
//! # Keys
//!
//! The tree is generic over `K:`[`IndexKey`]. Radix digits come from
//! `K::encode()` — big-endian bytes for `u64` (the default, preserving the
//! pre-generic layout byte for byte) and the escape-coded prefix-free form
//! for byte strings. Prefix-freedom is what makes variable-length keys
//! radix-safe: no encoded key is a prefix of another, so two distinct keys
//! always diverge at a digit position inside both, and a descent never
//! runs off the end of its key while a sibling continues. Compressed paths
//! longer than the 7 bytes a node header can pack are spelled out as a
//! chain of single-child `Node4`s ([`alloc_chain`]).

use std::cell::Cell;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use optiql::olc::{IndexStats, OptimisticGuard, RestartLoop, SharedIndexStats};
use optiql::stats::Event;
use optiql::{IndexLock, WriteStrategy};
use optiql_index_api::{bounds_nonempty, key_above_start, key_below_end, IndexKey, RangeIter};
use optiql_reclaim::{Collector, Guard};

use crate::node::{as_kv, is_kv, kv_raw, ArtNode, KvLeaf, NodeType, KEY_LEN};

/// Default contention-expansion threshold (paper: 1024).
pub const DEFAULT_EXPANSION_THRESHOLD: u32 = 1024;
/// Default sampling denominator: the counter is bumped with probability
/// 1/10 (paper: 0.1).
pub const DEFAULT_SAMPLE_INV: u32 = 10;

/// Longest compressed path a single node header can hold.
const MAX_PREFIX: usize = KEY_LEN - 1;

/// Entries per re-descent of the streaming [`ArtTree::range`] iterator.
const RANGE_CHUNK: usize = 64;

/// Internal atomic counters; snapshotted into [`ArtStats`].
#[derive(Default)]
struct StatsInner {
    grows: AtomicU64,
    prefix_splits: AtomicU64,
    lazy_expansions: AtomicU64,
    contention_expansions: AtomicU64,
    collapses: AtomicU64,
}

/// Snapshot of an ART's structural-event counters (relaxed, monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtStats {
    /// Unified operation/restart accounting (shared OLC protocol).
    pub index: IndexStats,
    /// Node growths (N4→N16→N48→N256).
    pub grows: u64,
    /// Compressed-path splits on prefix mismatch.
    pub prefix_splits: u64,
    /// Lazy-expansion splits (two keys pushed below a fresh Node4).
    pub lazy_expansions: u64,
    /// Contention expansions (§6.2 materializations).
    pub contention_expansions: u64,
    /// Path collapses after deletes.
    pub collapses: u64,
}

thread_local! {
    static RNG: Cell<u64> = const { Cell::new(0x9E3779B97F4A7C15) };
    /// Reusable digit buffer for pointer-slot keys: without it every
    /// byte-key operation allocates (and frees) a fresh escape-coded
    /// `Vec` just to walk the radix levels.
    static ENC_SCRATCH: Cell<Vec<u8>> = const { Cell::new(Vec::new()) };
}

/// RAII holder for a key's encoded radix digits. Inline keys encode into
/// the stack array their `Enc` type already is; pointer-slot keys borrow
/// the thread-local scratch buffer and hand it back on drop.
pub(crate) enum EncodedDigits<K: IndexKey> {
    Stack(K::Enc),
    Scratch(Vec<u8>),
}

impl<K: IndexKey> EncodedDigits<K> {
    #[inline]
    pub(crate) fn new(key: &K) -> Self {
        if K::INLINE {
            EncodedDigits::Stack(key.encode())
        } else {
            let mut buf = ENC_SCRATCH.take();
            buf.clear();
            key.encode_into(&mut buf);
            EncodedDigits::Scratch(buf)
        }
    }

    #[inline]
    pub(crate) fn as_ref(&self) -> &[u8] {
        match self {
            EncodedDigits::Stack(e) => e.as_ref(),
            EncodedDigits::Scratch(v) => v,
        }
    }
}

impl<K: IndexKey> Drop for EncodedDigits<K> {
    fn drop(&mut self) {
        if let EncodedDigits::Scratch(v) = self {
            ENC_SCRATCH.set(std::mem::take(v));
        }
    }
}

/// Cheap thread-local xorshift for contention sampling.
#[inline]
fn sample(denominator: u32) -> bool {
    if denominator <= 1 {
        return true;
    }
    RNG.with(|c| {
        let mut x = c.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        (x % denominator as u64) == 0
    })
}

/// Digit at `depth`, tolerating out-of-range reads: a torn optimistic
/// snapshot can leave `depth` past the key's end for a moment; the zero
/// fallback keeps the descent panic-free until validation rejects it.
/// With a consistent tree, prefix-free keys never index out of range.
#[inline]
pub(crate) fn digit(kb: &[u8], depth: usize) -> u8 {
    *kb.get(depth).unwrap_or(&0)
}

/// Build a chain of `Node4`s spelling out `path` (any length), ending in a
/// node holding `kids` (ascending digits). Each link packs up to
/// [`MAX_PREFIX`] path bytes into its header and spends one more as the
/// digit to the next link. The chain is private to the caller until
/// published.
pub(crate) fn alloc_chain<L: IndexLock>(
    path: &[u8],
    kids: &[(u8, *mut ArtNode<L>)],
) -> *mut ArtNode<L> {
    if path.len() <= MAX_PREFIX {
        let np = ArtNode::<L>::alloc(NodeType::N4);
        let n = unsafe { &*np };
        n.set_prefix(path);
        for &(b, c) in kids {
            n.insert_child(b, c);
        }
        return np;
    }
    let child = alloc_chain(&path[MAX_PREFIX + 1..], kids);
    let np = ArtNode::<L>::alloc(NodeType::N4);
    let n = unsafe { &*np };
    n.set_prefix(&path[..MAX_PREFIX]);
    n.insert_child(path[MAX_PREFIX], child);
    np
}

/// Adaptive radix tree mapping `K` keys (default `u64`) to `u64` payloads.
pub struct ArtTree<L: IndexLock, K: IndexKey = u64> {
    root: *mut ArtNode<L>,
    pub(crate) size: AtomicUsize,
    pub(crate) collector: Collector,
    stats: StatsInner,
    pub(crate) index_stats: SharedIndexStats,
    expansion_threshold: u32,
    sample_inv: u32,
    _key: std::marker::PhantomData<K>,
}

unsafe impl<L: IndexLock, K: IndexKey> Send for ArtTree<L, K> {}
unsafe impl<L: IndexLock, K: IndexKey> Sync for ArtTree<L, K> {}

impl<L: IndexLock, K: IndexKey> Default for ArtTree<L, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: IndexLock, K: IndexKey> ArtTree<L, K> {
    /// Create an empty tree with default contention-expansion parameters.
    pub fn new() -> Self {
        Self::with_expansion(DEFAULT_EXPANSION_THRESHOLD, DEFAULT_SAMPLE_INV)
    }

    /// Create an empty tree with explicit contention-expansion parameters:
    /// the counter is sampled with probability `1 / sample_inv` and an
    /// expansion happens once it exceeds `threshold`. `threshold = 0`
    /// disables expansion.
    pub fn with_expansion(threshold: u32, sample_inv: u32) -> Self {
        ArtTree {
            root: ArtNode::alloc(NodeType::N256),
            size: AtomicUsize::new(0),
            collector: Collector::new(),
            stats: StatsInner::default(),
            index_stats: SharedIndexStats::new(),
            expansion_threshold: threshold,
            sample_inv,
            _key: std::marker::PhantomData,
        }
    }

    /// Number of entries (maintained counter; exact when quiescent).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drive deferred reclamation (quiescent points only).
    pub fn flush_reclamation(&self) {
        self.collector.flush();
    }

    /// A handle to this tree's epoch-reclamation domain. Outer layers pin
    /// it once around an operation group so the per-operation pins inside
    /// become cheap nested increments (see
    /// [`ConcurrentIndex::reclaim_handle`](optiql_index_api::ConcurrentIndex::reclaim_handle)).
    pub fn reclaim_handle(&self) -> Option<optiql_reclaim::Handle> {
        Some(self.collector.handle())
    }

    /// Snapshot the structural-event counters.
    pub fn stats(&self) -> ArtStats {
        ArtStats {
            index: self.index_stats(),
            grows: self.stats.grows.load(Ordering::Relaxed),
            prefix_splits: self.stats.prefix_splits.load(Ordering::Relaxed),
            lazy_expansions: self.stats.lazy_expansions.load(Ordering::Relaxed),
            contention_expansions: self.stats.contention_expansions.load(Ordering::Relaxed),
            collapses: self.stats.collapses.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the unified operation/restart accounting.
    pub fn index_stats(&self) -> IndexStats {
        self.index_stats.snapshot()
    }

    #[inline]
    fn restart_loop(&self) -> RestartLoop<'_> {
        RestartLoop::new(&self.index_stats, Event::IndexRestartArt)
    }

    #[inline]
    fn count_stat(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn root(&self) -> &ArtNode<L> {
        unsafe { &*self.root }
    }

    /// Count one lazy-expansion split (the batched engine performs them
    /// inline, outside this module).
    #[inline]
    pub(crate) fn note_lazy_expansion(&self) {
        self.count_stat(&self.stats.lazy_expansions);
    }

    /// Retire an inner node through the epoch collector.
    fn retire_inner(&self, g: &Guard, p: *mut ArtNode<L>) {
        debug_assert!(!is_kv(p));
        let addr = p as usize;
        g.defer(move || unsafe { ArtNode::<L>::free(addr as *mut ArtNode<L>) });
    }

    /// Retire a KV leaf through the epoch collector.
    fn retire_kv(&self, g: &Guard, p: *mut ArtNode<L>) {
        debug_assert!(is_kv(p));
        let raw = kv_raw::<L, K>(p) as usize;
        g.defer(move || unsafe { drop(Box::from_raw(raw as *mut KvLeaf<K>)) });
    }

    // --- lookup -----------------------------------------------------------

    /// Point lookup.
    pub fn lookup(&self, key: K) -> Option<u64> {
        self.index_stats.record_op();
        self.lookup_impl(&key)
    }

    /// Lookup body without the per-op accounting: shared by the scalar
    /// entry point and the batched engine's fallback path (which accounts
    /// once per batch).
    pub(crate) fn lookup_impl(&self, key: &K) -> Option<u64> {
        let enc = EncodedDigits::new(key);
        let kb = enc.as_ref();
        let _g = self.collector.pin();
        let mut rs = self.restart_loop();
        'restart: loop {
            rs.pause();
            let mut node = self.root();
            let Some(mut g) = OptimisticGuard::read(&node.lock) else {
                continue 'restart;
            };
            let mut depth = 0usize;
            loop {
                let pl = node.prefix_len();
                if pl > 0 {
                    let m = node.prefix_match_len(kb, depth);
                    if m < pl {
                        if !g.validate() {
                            continue 'restart;
                        }
                        return None;
                    }
                    depth += pl;
                }
                let b = digit(kb, depth);
                let child = node.find_child(b);
                if !g.recheck() {
                    continue 'restart;
                }
                if child.is_null() {
                    if !g.validate() {
                        continue 'restart;
                    }
                    return None;
                }
                if is_kv(child) {
                    let kv = unsafe { as_kv::<L, K>(child) };
                    let (hit, val) = (kv.key == *key, kv.value());
                    if !g.validate() {
                        continue 'restart;
                    }
                    return hit.then_some(val);
                }
                let ci = unsafe { &*child };
                let Some(cg) = OptimisticGuard::read(&ci.lock) else {
                    g.abandon();
                    continue 'restart;
                };
                if !g.validate() {
                    cg.abandon();
                    continue 'restart;
                }
                node = ci;
                g = cg;
                depth += 1;
            }
        }
    }

    // --- update -----------------------------------------------------------

    /// Replace the value of an existing key; `None` if absent.
    pub fn update(&self, key: K, val: u64) -> Option<u64> {
        self.index_stats.record_op();
        if L::PESSIMISTIC {
            return self.update_pessimistic(&key, val);
        }
        let enc = EncodedDigits::new(&key);
        let kb = enc.as_ref();
        let g = self.collector.pin();
        let mut rs = self.restart_loop();
        let direct = matches!(
            L::STRATEGY,
            WriteStrategy::DirectLock | WriteStrategy::DirectLockAor
        );
        'restart: loop {
            rs.pause();
            let mut parent: Option<(&ArtNode<L>, u64)> = None;
            let mut node = self.root();
            let Some(mut v) = node.lock.r_lock() else {
                continue 'restart;
            };
            let mut depth = 0usize;
            loop {
                let pl = node.prefix_len();
                if pl > 0 {
                    let m = node.prefix_match_len(kb, depth);
                    if m < pl {
                        if !node.lock.r_unlock(v) {
                            continue 'restart;
                        }
                        return None;
                    }
                    depth += pl;
                }

                if direct && depth + 1 == kb.len() {
                    // Known last level: the remaining digit is the key's
                    // final encoded byte, and prefix-freedom makes every
                    // child under it a leaf — acquire the queue-based lock
                    // directly (Algorithm 4 adapted to ART) and validate
                    // the parent afterwards.
                    let t = node.lock.x_lock_adjustable();
                    if let Some((p, pv)) = parent {
                        if !p.lock.recheck(pv) {
                            node.lock.x_unlock(t);
                            continue 'restart;
                        }
                    }
                    let child = node.find_child(digit(kb, depth));
                    let out = if !child.is_null() && is_kv(child) {
                        let kv = unsafe { as_kv::<L, K>(child) };
                        if kv.key == key {
                            node.lock.x_finish_adjustable(t);
                            Some(kv.set_value(val))
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    node.lock.x_unlock(t);
                    return out;
                }

                let b = digit(kb, depth);
                let child = node.find_child(b);
                if !node.lock.recheck(v) {
                    continue 'restart;
                }
                if child.is_null() {
                    if !node.lock.r_unlock(v) {
                        continue 'restart;
                    }
                    return None;
                }
                if is_kv(child) {
                    let kv = unsafe { as_kv::<L, K>(child) };
                    if kv.key != key {
                        if !node.lock.r_unlock(v) {
                            continue 'restart;
                        }
                        return None;
                    }
                    // Upgrade-based exclusive acquisition.
                    let Some(t) = node.lock.try_upgrade(v) else {
                        continue 'restart;
                    };
                    let old = kv.set_value(val);
                    // Contention expansion (§6.2): this write used an
                    // upgrade because the node is lazily expanded or sits
                    // at the end of a compressed path. Under contention,
                    // materialize the last level so future updates can
                    // lock directly.
                    if direct
                        && self.expansion_threshold > 0
                        && depth + 1 < kb.len()
                        && sample(self.sample_inv)
                        && node.bump_contention() > self.expansion_threshold
                    {
                        self.count_stat(&self.stats.contention_expansions);
                        self.materialize_leaf(&g, node, b, child, depth);
                        node.reset_contention();
                    }
                    node.lock.x_unlock(t);
                    return Some(old);
                }
                let ci = unsafe { &*child };
                let Some(cv) = ci.lock.r_lock() else {
                    continue 'restart;
                };
                // OLC coupling: re-validate the parent after locking the
                // child (see `insert_optimistic` for the relocation race).
                #[cfg(not(feature = "bug-pr4-revert"))]
                if !node.lock.recheck(v) {
                    continue 'restart;
                }
                parent = Some((node, v));
                node = ci;
                v = cv;
                depth += 1;
            }
        }
    }

    /// Replace a lazily-expanded leaf with a materialized last-level node
    /// (caller holds `node` exclusively; `child` is the KV at byte `b`).
    fn materialize_leaf(
        &self,
        _g: &Guard,
        node: &ArtNode<L>,
        b: u8,
        child: *mut ArtNode<L>,
        depth: usize,
    ) {
        let kv = unsafe { as_kv::<L, K>(child) };
        let oenc = kv.key.encode();
        let okb = oenc.as_ref();
        if depth + 1 >= okb.len() {
            // The leaf's final digit is already spelled out above it:
            // nothing left to materialize.
            return;
        }
        // The chain spans bytes (depth+1 .. len-1) as compressed path and
        // discriminates on the final byte.
        let last = okb.len() - 1;
        let chain = alloc_chain::<L>(&okb[depth + 1..last], &[(okb[last], child)]);
        node.replace_child(b, chain);
    }

    fn update_pessimistic(&self, key: &K, val: u64) -> Option<u64> {
        let enc = EncodedDigits::new(key);
        let kb = enc.as_ref();
        let _g = self.collector.pin();
        let mut node = self.root();
        let mut t = node.lock.x_lock();
        let mut depth = 0usize;
        loop {
            let pl = node.prefix_len();
            if pl > 0 {
                let m = node.prefix_match_len(kb, depth);
                if m < pl {
                    node.lock.x_unlock(t);
                    return None;
                }
                depth += pl;
            }
            let child = node.find_child(digit(kb, depth));
            if child.is_null() {
                node.lock.x_unlock(t);
                return None;
            }
            if is_kv(child) {
                let kv = unsafe { as_kv::<L, K>(child) };
                let out = (kv.key == *key).then(|| kv.set_value(val));
                node.lock.x_unlock(t);
                return out;
            }
            let ci = unsafe { &*child };
            let ct = ci.lock.x_lock();
            node.lock.x_unlock(t);
            node = ci;
            t = ct;
            depth += 1;
        }
    }

    // --- insert -----------------------------------------------------------

    /// Insert or overwrite; returns the previous value if the key existed.
    pub fn insert(&self, key: K, val: u64) -> Option<u64> {
        self.index_stats.record_op();
        let old = if L::PESSIMISTIC {
            self.insert_pessimistic(key, val)
        } else {
            self.insert_optimistic(key, val)
        };
        if old.is_none() {
            self.size.fetch_add(1, Ordering::Relaxed);
        }
        old
    }

    pub(crate) fn insert_optimistic(&self, key: K, val: u64) -> Option<u64> {
        let enc = EncodedDigits::new(&key);
        let kb = enc.as_ref();
        let g = self.collector.pin();
        let mut rs = self.restart_loop();
        'restart: loop {
            rs.pause();
            let mut parent: Option<(&ArtNode<L>, u64, u8)> = None;
            let mut node = self.root();
            let Some(mut v) = node.lock.r_lock() else {
                continue 'restart;
            };
            let mut depth = 0usize;
            loop {
                let pl = node.prefix_len();
                if pl > 0 {
                    let m = node.prefix_match_len(kb, depth);
                    if m < pl {
                        // Prefix mismatch: split the compressed path
                        // (Figure 5). Requires parent + node exclusively.
                        let (p, pv, pb) =
                            parent.expect("root has an empty prefix, mismatch implies parent");
                        let Some(pt) = p.lock.try_upgrade(pv) else {
                            continue 'restart;
                        };
                        let Some(nt) = node.lock.try_upgrade(v) else {
                            p.lock.x_unlock(pt);
                            continue 'restart;
                        };
                        // Collect the old path bytes before overwriting.
                        self.count_stat(&self.stats.prefix_splits);
                        let full: Vec<u8> = (0..pl).map(|i| node.prefix_byte(i)).collect();
                        let new4p = ArtNode::<L>::alloc(NodeType::N4);
                        let new4 = unsafe { &*new4p };
                        new4.set_prefix(&full[..m]);
                        new4.insert_child(full[m], node as *const ArtNode<L> as *mut ArtNode<L>);
                        new4.insert_child(
                            digit(kb, depth + m),
                            KvLeaf::alloc::<L>(key.clone(), val),
                        );
                        node.set_prefix(&full[m + 1..]);
                        p.replace_child(pb, new4p);
                        node.lock.x_unlock(nt);
                        p.lock.x_unlock(pt);
                        return None;
                    }
                    depth += pl;
                }
                let b = digit(kb, depth);
                let child = node.find_child(b);
                // Read the fill level *before* validating: after the
                // recheck a concurrent writer may fill the node, and a
                // stale `is_full` combined with the validated-null `child`
                // would send the root (a never-full Node256) down the grow
                // path. Inside the validated window the two reads are
                // consistent: a full Node256 has no null slot.
                let full = node.is_full();
                if !node.lock.recheck(v) {
                    continue 'restart;
                }

                if child.is_null() {
                    if full {
                        // Grow into the next node size (replaces the node
                        // in its parent; the root Node256 is never full).
                        let (p, pv, pb) = parent.expect("root Node256 never grows");
                        let Some(pt) = p.lock.try_upgrade(pv) else {
                            continue 'restart;
                        };
                        let Some(nt) = node.lock.try_upgrade(v) else {
                            p.lock.x_unlock(pt);
                            continue 'restart;
                        };
                        self.count_stat(&self.stats.grows);
                        let bigger = node.grow();
                        unsafe { &*bigger }.insert_child(b, KvLeaf::alloc::<L>(key.clone(), val));
                        p.replace_child(pb, bigger);
                        node.lock.x_unlock(nt);
                        p.lock.x_unlock(pt);
                        self.retire_inner(&g, node as *const ArtNode<L> as *mut ArtNode<L>);
                        return None;
                    }
                    let Some(nt) = node.lock.try_upgrade(v) else {
                        continue 'restart;
                    };
                    node.insert_child(b, KvLeaf::alloc::<L>(key.clone(), val));
                    node.lock.x_unlock(nt);
                    return None;
                }

                if is_kv(child) {
                    let kv = unsafe { as_kv::<L, K>(child) };
                    if kv.key == key {
                        let Some(nt) = node.lock.try_upgrade(v) else {
                            continue 'restart;
                        };
                        let old = kv.set_value(val);
                        node.lock.x_unlock(nt);
                        return Some(old);
                    }
                    // Lazy-expansion split: push both keys one (or more)
                    // levels down under a fresh chain.
                    let oenc = kv.key.encode();
                    let okb = oenc.as_ref();
                    let mut d = depth + 1;
                    let lim = okb.len().min(kb.len());
                    while d < lim && okb[d] == kb[d] {
                        d += 1;
                    }
                    debug_assert!(
                        d < okb.len() && d < kb.len(),
                        "prefix-free keys must diverge within both"
                    );
                    let Some(nt) = node.lock.try_upgrade(v) else {
                        continue 'restart;
                    };
                    self.count_stat(&self.stats.lazy_expansions);
                    let new_leaf = KvLeaf::alloc::<L>(key.clone(), val);
                    let (da, db) = (digit(okb, d), digit(kb, d));
                    let mut kids = [(da, child), (db, new_leaf)];
                    kids.sort_by_key(|&(b, _)| b);
                    let chain = alloc_chain::<L>(&kb[depth + 1..d], &kids);
                    node.replace_child(b, chain);
                    node.lock.x_unlock(nt);
                    return None;
                }

                let ci = unsafe { &*child };
                let Some(cv) = ci.lock.r_lock() else {
                    continue 'restart;
                };
                // OLC coupling: re-validate the parent *after* locking the
                // child. Between the recheck above and the child r_lock, a
                // concurrent prefix split may relocate `ci` one level down
                // (shortening its prefix); `cv` was read post-split, so
                // nothing later would catch the stale `depth`.
                #[cfg(not(feature = "bug-pr4-revert"))]
                if !node.lock.recheck(v) {
                    continue 'restart;
                }
                parent = Some((node, v, b));
                node = ci;
                v = cv;
                depth += 1;
            }
        }
    }

    fn insert_pessimistic(&self, key: K, val: u64) -> Option<u64> {
        let enc = EncodedDigits::new(&key);
        let kb = enc.as_ref();
        let g = self.collector.pin();
        // Couple exclusively, holding (parent, node) so any SMO has both.
        let mut pstate: Option<(&ArtNode<L>, optiql::WriteToken, u8)> = None;
        let mut node = self.root();
        let mut t = node.lock.x_lock();
        let mut depth = 0usize;
        loop {
            let pl = node.prefix_len();
            if pl > 0 {
                let m = node.prefix_match_len(kb, depth);
                if m < pl {
                    let (p, pt, pb) = pstate.expect("root prefix is empty");
                    self.count_stat(&self.stats.prefix_splits);
                    let full: Vec<u8> = (0..pl).map(|i| node.prefix_byte(i)).collect();
                    let new4p = ArtNode::<L>::alloc(NodeType::N4);
                    let new4 = unsafe { &*new4p };
                    new4.set_prefix(&full[..m]);
                    new4.insert_child(full[m], node as *const ArtNode<L> as *mut ArtNode<L>);
                    new4.insert_child(digit(kb, depth + m), KvLeaf::alloc::<L>(key.clone(), val));
                    node.set_prefix(&full[m + 1..]);
                    p.replace_child(pb, new4p);
                    node.lock.x_unlock(t);
                    p.lock.x_unlock(pt);
                    return None;
                }
                depth += pl;
            }
            let b = digit(kb, depth);
            let child = node.find_child(b);

            if child.is_null() {
                if node.is_full() {
                    let (p, pt, pb) = pstate.expect("root Node256 never grows");
                    self.count_stat(&self.stats.grows);
                    let bigger = node.grow();
                    unsafe { &*bigger }.insert_child(b, KvLeaf::alloc::<L>(key.clone(), val));
                    p.replace_child(pb, bigger);
                    node.lock.x_unlock(t);
                    p.lock.x_unlock(pt);
                    self.retire_inner(&g, node as *const ArtNode<L> as *mut ArtNode<L>);
                    return None;
                }
                node.insert_child(b, KvLeaf::alloc::<L>(key.clone(), val));
                node.lock.x_unlock(t);
                if let Some((p, pt, _)) = pstate {
                    p.lock.x_unlock(pt);
                }
                return None;
            }

            if is_kv(child) {
                let kv = unsafe { as_kv::<L, K>(child) };
                let out = if kv.key == key {
                    Some(kv.set_value(val))
                } else {
                    let oenc = kv.key.encode();
                    let okb = oenc.as_ref();
                    let mut d = depth + 1;
                    let lim = okb.len().min(kb.len());
                    while d < lim && okb[d] == kb[d] {
                        d += 1;
                    }
                    self.count_stat(&self.stats.lazy_expansions);
                    let new_leaf = KvLeaf::alloc::<L>(key.clone(), val);
                    let mut kids = [(digit(okb, d), child), (digit(kb, d), new_leaf)];
                    kids.sort_by_key(|&(b, _)| b);
                    let chain = alloc_chain::<L>(&kb[depth + 1..d], &kids);
                    node.replace_child(b, chain);
                    None
                };
                node.lock.x_unlock(t);
                if let Some((p, pt, _)) = pstate {
                    p.lock.x_unlock(pt);
                }
                return out;
            }

            // Descend: release the grandparent, keep (node, child) locked.
            if let Some((p, pt, _)) = pstate.take() {
                p.lock.x_unlock(pt);
            }
            let ci = unsafe { &*child };
            let ct = ci.lock.x_lock();
            pstate = Some((node, t, b));
            node = ci;
            t = ct;
            depth += 1;
        }
    }

    // --- remove -----------------------------------------------------------

    /// Remove a key; returns the removed value.
    pub fn remove(&self, key: K) -> Option<u64> {
        self.index_stats.record_op();
        let old = if L::PESSIMISTIC {
            self.remove_pessimistic(&key)
        } else {
            self.remove_optimistic(&key)
        };
        if old.is_some() {
            self.size.fetch_sub(1, Ordering::Relaxed);
        }
        old
    }

    fn remove_optimistic(&self, key: &K) -> Option<u64> {
        let enc = EncodedDigits::new(key);
        let kb = enc.as_ref();
        let g = self.collector.pin();
        let mut rs = self.restart_loop();
        'restart: loop {
            rs.pause();
            let mut parent: Option<(&ArtNode<L>, u64, u8)> = None;
            let mut node = self.root();
            let Some(mut v) = node.lock.r_lock() else {
                continue 'restart;
            };
            let mut depth = 0usize;
            loop {
                let pl = node.prefix_len();
                if pl > 0 {
                    let m = node.prefix_match_len(kb, depth);
                    if m < pl {
                        if !node.lock.r_unlock(v) {
                            continue 'restart;
                        }
                        return None;
                    }
                    depth += pl;
                }
                let b = digit(kb, depth);
                let child = node.find_child(b);
                if !node.lock.recheck(v) {
                    continue 'restart;
                }
                if child.is_null() {
                    if !node.lock.r_unlock(v) {
                        continue 'restart;
                    }
                    return None;
                }
                if is_kv(child) {
                    let kv = unsafe { as_kv::<L, K>(child) };
                    if kv.key != *key {
                        if !node.lock.r_unlock(v) {
                            continue 'restart;
                        }
                        return None;
                    }
                    let Some(nt) = node.lock.try_upgrade(v) else {
                        continue 'restart;
                    };
                    let old = kv.value();
                    node.remove_child(b);
                    self.retire_kv(&g, child);
                    // Opportunistic path collapse: a Node4 left with a
                    // single KV child is replaced by that child in the
                    // parent (undoing lazy expansion).
                    if node.node_type() == NodeType::N4 && node.count() <= 1 {
                        if let Some((p, pv, pb)) = parent {
                            if let Some(pt) = p.lock.try_upgrade(pv) {
                                if node.count() == 1 {
                                    let (_, rc) = node.only_child();
                                    if is_kv(rc) {
                                        self.count_stat(&self.stats.collapses);
                                        p.replace_child(pb, rc);
                                        self.retire_inner(
                                            &g,
                                            node as *const ArtNode<L> as *mut ArtNode<L>,
                                        );
                                    }
                                } else {
                                    // Node drained entirely: unlink it.
                                    self.count_stat(&self.stats.collapses);
                                    p.remove_child(pb);
                                    self.retire_inner(
                                        &g,
                                        node as *const ArtNode<L> as *mut ArtNode<L>,
                                    );
                                }
                                p.lock.x_unlock(pt);
                            }
                        }
                    }
                    node.lock.x_unlock(nt);
                    return Some(old);
                }
                let ci = unsafe { &*child };
                let Some(cv) = ci.lock.r_lock() else {
                    continue 'restart;
                };
                // OLC coupling: re-validate the parent *after* locking the
                // child. Between the recheck above and the child r_lock, a
                // concurrent prefix split may relocate `ci` one level down
                // (shortening its prefix); `cv` was read post-split, so
                // nothing later would catch the stale `depth`.
                #[cfg(not(feature = "bug-pr4-revert"))]
                if !node.lock.recheck(v) {
                    continue 'restart;
                }
                parent = Some((node, v, b));
                node = ci;
                v = cv;
                depth += 1;
            }
        }
    }

    fn remove_pessimistic(&self, key: &K) -> Option<u64> {
        let enc = EncodedDigits::new(key);
        let kb = enc.as_ref();
        let g = self.collector.pin();
        let mut pstate: Option<(&ArtNode<L>, optiql::WriteToken, u8)> = None;
        let mut node = self.root();
        let mut t = node.lock.x_lock();
        let mut depth = 0usize;
        loop {
            let pl = node.prefix_len();
            if pl > 0 {
                let m = node.prefix_match_len(kb, depth);
                if m < pl {
                    node.lock.x_unlock(t);
                    if let Some((p, pt, _)) = pstate {
                        p.lock.x_unlock(pt);
                    }
                    return None;
                }
                depth += pl;
            }
            let b = digit(kb, depth);
            let child = node.find_child(b);
            if child.is_null() {
                node.lock.x_unlock(t);
                if let Some((p, pt, _)) = pstate {
                    p.lock.x_unlock(pt);
                }
                return None;
            }
            if is_kv(child) {
                let kv = unsafe { as_kv::<L, K>(child) };
                let out = if kv.key == *key {
                    let old = kv.value();
                    node.remove_child(b);
                    self.retire_kv(&g, child);
                    if node.node_type() == NodeType::N4 && node.count() <= 1 {
                        if let Some((p, _, pb)) = pstate {
                            if node.count() == 1 {
                                let (_, rc) = node.only_child();
                                if is_kv(rc) {
                                    self.count_stat(&self.stats.collapses);
                                    p.replace_child(pb, rc);
                                    self.retire_inner(
                                        &g,
                                        node as *const ArtNode<L> as *mut ArtNode<L>,
                                    );
                                }
                            } else {
                                self.count_stat(&self.stats.collapses);
                                p.remove_child(pb);
                                self.retire_inner(&g, node as *const ArtNode<L> as *mut ArtNode<L>);
                            }
                        }
                    }
                    Some(old)
                } else {
                    None
                };
                node.lock.x_unlock(t);
                if let Some((p, pt, _)) = pstate {
                    p.lock.x_unlock(pt);
                }
                return out;
            }
            if let Some((p, pt, _)) = pstate.take() {
                p.lock.x_unlock(pt);
            }
            let ci = unsafe { &*child };
            let ct = ci.lock.x_lock();
            pstate = Some((node, t, b));
            node = ci;
            t = ct;
            depth += 1;
        }
    }

    // --- range scan -----------------------------------------------------------

    /// Collect up to `limit` entries with keys ≥ `start` in ascending key
    /// order.
    ///
    /// Each node's children are snapshotted under version validation, so
    /// every returned pair existed in the tree at some point during the
    /// scan; like other optimistically-synchronized range scans, the scan
    /// as a whole is not a serializable snapshot (matching the range-query
    /// semantics index benchmarks such as YCSB-E assume).
    pub fn scan(&self, start: K, limit: usize) -> Vec<(K, u64)> {
        self.index_stats.record_op();
        self.scan_from(Some(&start), limit)
    }

    /// Scan body: `start = None` collects from the leftmost key. Shared by
    /// [`scan`](Self::scan) and the streaming [`range`](Self::range)
    /// refills (which account once per range).
    pub(crate) fn scan_from(&self, start: Option<&K>, limit: usize) -> Vec<(K, u64)> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        let _g = self.collector.pin();
        let enc = start.map(|s| s.encode());
        let sb: &[u8] = enc.as_ref().map(|e| e.as_ref()).unwrap_or(&[]);
        let mut rs = self.restart_loop();
        loop {
            out.clear();
            if self.scan_node(
                self.root,
                start,
                sb,
                0,
                start.is_some(),
                limit,
                &mut out,
                None,
            ) {
                return out;
            }
            rs.pause();
        }
    }

    /// DFS collector; `bounded` is true while the subtree may still contain
    /// keys below `start` (i.e. we are on the lower-bound path). The scan
    /// couples: after locking a node, the parent's version is re-validated
    /// so a concurrent prefix split (which shifts the child's effective
    /// depth) forces a restart instead of misinterpreting bounds. Returns
    /// false when validation failed and the whole scan should restart.
    #[allow(clippy::too_many_arguments)]
    fn scan_node(
        &self,
        p: *mut ArtNode<L>,
        start: Option<&K>,
        sb: &[u8],
        depth: usize,
        bounded: bool,
        limit: usize,
        out: &mut Vec<(K, u64)>,
        parent: Option<(&ArtNode<L>, u64)>,
    ) -> bool {
        if is_kv(p) {
            let kv = unsafe { as_kv::<L, K>(p) };
            let (k, v) = (kv.key.clone(), kv.value());
            // The pointer snapshot was validated by the caller; re-validate
            // the parent so the value read pairs with a live membership.
            if let Some((pn, pv)) = parent {
                if !pn.lock.recheck(pv) {
                    return false;
                }
            }
            if !bounded || start.map_or(true, |s| k >= *s) {
                out.push((k, v));
            }
            return true;
        }
        let node = unsafe { &*p };
        // Snapshot prefix + children under version validation; retry this
        // node a few times before restarting the whole scan.
        for _ in 0..8 {
            let Some(ver) = node.lock.r_lock() else {
                std::thread::yield_now();
                continue;
            };
            // Couple with the parent: if it changed since its children were
            // snapshotted, this node may have been relocated (prefix split
            // or growth) and `depth` is no longer its effective depth.
            if let Some((pn, pv)) = parent {
                if !pn.lock.recheck(pv) {
                    if L::PESSIMISTIC {
                        node.lock.r_unlock(ver);
                    }
                    return false;
                }
            }
            let pl = node.prefix_len();
            let mut prefix_cmp = std::cmp::Ordering::Equal;
            if bounded {
                for i in 0..pl {
                    if depth + i >= sb.len() {
                        // The start key is a strict prefix of this path:
                        // every key below extends it, hence sorts above.
                        prefix_cmp = std::cmp::Ordering::Greater;
                        break;
                    }
                    match node.prefix_byte(i).cmp(&sb[depth + i]) {
                        std::cmp::Ordering::Equal => continue,
                        other => {
                            prefix_cmp = other;
                            break;
                        }
                    }
                }
            }
            let mut kids = Vec::with_capacity(node.count());
            node.for_each_child(|b, c| kids.push((b, c)));
            if !node.lock.recheck(ver) {
                continue;
            }
            // Pessimistic r_lock takes a real shared hold (and a queue
            // node); every exit below must pair it with r_unlock or the
            // next writer blocks forever. Optimistic locks hold nothing —
            // their validation stays recheck-based.
            match (bounded, prefix_cmp) {
                (true, std::cmp::Ordering::Less) => {
                    // Whole subtree < start.
                    if L::PESSIMISTIC {
                        node.lock.r_unlock(ver);
                    }
                    return true;
                }
                (true, std::cmp::Ordering::Greater) => {
                    // Whole subtree > start: collect unbounded.
                    let ok = self.scan_children(
                        &kids,
                        start,
                        sb,
                        depth + pl,
                        false,
                        limit,
                        out,
                        (node, ver),
                    );
                    if L::PESSIMISTIC {
                        node.lock.r_unlock(ver);
                    }
                    return ok;
                }
                _ => {
                    let next_depth = depth + pl;
                    let pivot = if bounded { digit(sb, next_depth) } else { 0 };
                    let mut ok = true;
                    for &(b, c) in &kids {
                        if out.len() >= limit {
                            break;
                        }
                        if bounded && b < pivot {
                            continue;
                        }
                        let child_bounded = bounded && b == pivot;
                        ok = self.scan_node(
                            c,
                            start,
                            sb,
                            next_depth + 1,
                            child_bounded,
                            limit,
                            out,
                            Some((node, ver)),
                        );
                        if !ok {
                            break;
                        }
                    }
                    if L::PESSIMISTIC {
                        node.lock.r_unlock(ver);
                    }
                    return ok;
                }
            }
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_children(
        &self,
        kids: &[(u8, *mut ArtNode<L>)],
        start: Option<&K>,
        sb: &[u8],
        depth: usize,
        bounded: bool,
        limit: usize,
        out: &mut Vec<(K, u64)>,
        parent: (&ArtNode<L>, u64),
    ) -> bool {
        for &(_, c) in kids {
            if out.len() >= limit {
                break;
            }
            if !self.scan_node(c, start, sb, depth + 1, bounded, limit, out, Some(parent)) {
                return false;
            }
        }
        true
    }

    /// Stream the entries within `start..end` in ascending key order.
    ///
    /// The iterator re-descends in [`RANGE_CHUNK`]-sized validated chunks,
    /// resuming at the last yielded key (exclusive); a restart therefore
    /// never loses or duplicates an already-yielded entry.
    pub fn range(&self, start: Bound<K>, end: Bound<K>) -> RangeIter<'_, K> {
        self.index_stats.record_op();
        if !bounds_nonempty(&start, &end) {
            return RangeIter::empty();
        }
        RangeIter::new(ArtRange {
            tree: self,
            cursor: None,
            buf: Vec::new().into_iter(),
            exhausted: false,
            start,
            end,
        })
    }

    // --- validation (test support) -----------------------------------------

    /// Single-threaded structural check; returns the entry count.
    pub fn check_invariants(&self) -> usize {
        fn walk<L: IndexLock, K: IndexKey>(p: *mut ArtNode<L>, path: &mut Vec<u8>) -> usize {
            if is_kv(p) {
                let kv = unsafe { as_kv::<L, K>(p) };
                let enc = kv.key.encode();
                assert!(
                    enc.as_ref().starts_with(path),
                    "leaf key {:?} does not match its path {:?}",
                    kv.key,
                    path
                );
                return 1;
            }
            let n = unsafe { &*p };
            let cap_ok = match n.node_type() {
                NodeType::N4 => n.count() <= 4,
                NodeType::N16 => n.count() <= 16,
                NodeType::N48 => n.count() <= 48,
                NodeType::N256 => n.count() <= 256,
            };
            assert!(cap_ok, "count exceeds node capacity");
            for i in 0..n.prefix_len() {
                path.push(n.prefix_byte(i));
            }
            let mut total = 0;
            let mut kids = Vec::new();
            n.for_each_child(|b, c| kids.push((b, c)));
            assert_eq!(
                kids.len(),
                n.count(),
                "child iteration disagrees with count"
            );
            let mut prev: Option<u8> = None;
            for (b, c) in kids {
                if let Some(pb) = prev {
                    assert!(pb < b, "child bytes out of order");
                }
                prev = Some(b);
                path.push(b);
                total += walk::<L, K>(c, path);
                path.pop();
            }
            for _ in 0..n.prefix_len() {
                path.pop();
            }
            total
        }
        let mut path = Vec::new();
        walk::<L, K>(self.root, &mut path)
    }
}

/// The streaming iterator behind [`ArtTree::range`]: drains a chunked
/// validated scan, then re-descends from the last yielded key. Keys are
/// globally unique and chunks ascend, so dropping entries ≤ the cursor on
/// refill removes exactly the one overlapping boundary key.
struct ArtRange<'a, L: IndexLock, K: IndexKey> {
    tree: &'a ArtTree<L, K>,
    /// Last yielded key; the next refill starts here (then skips it).
    cursor: Option<K>,
    buf: std::vec::IntoIter<(K, u64)>,
    /// A refill returned a short chunk: the tree is drained past `cursor`.
    exhausted: bool,
    start: Bound<K>,
    end: Bound<K>,
}

impl<L: IndexLock, K: IndexKey> Iterator for ArtRange<'_, L, K> {
    type Item = (K, u64);

    fn next(&mut self) -> Option<(K, u64)> {
        loop {
            for (k, v) in self.buf.by_ref() {
                if let Some(c) = &self.cursor {
                    if k <= *c {
                        continue;
                    }
                }
                if !key_above_start(&k, &self.start) {
                    continue;
                }
                if !key_below_end(&k, &self.end) {
                    self.exhausted = true;
                    self.buf = Vec::new().into_iter();
                    return None;
                }
                self.cursor = Some(k.clone());
                return Some((k, v));
            }
            if self.exhausted {
                return None;
            }
            let from = self.cursor.clone().or_else(|| match &self.start {
                Bound::Included(s) | Bound::Excluded(s) => Some(s.clone()),
                Bound::Unbounded => None,
            });
            let batch = self.tree.scan_from(from.as_ref(), RANGE_CHUNK);
            if batch.len() < RANGE_CHUNK {
                self.exhausted = true;
            }
            if batch.is_empty() {
                return None;
            }
            self.buf = batch.into_iter();
        }
    }
}

impl<L: IndexLock, K: IndexKey> Drop for ArtTree<L, K> {
    fn drop(&mut self) {
        fn free<L: IndexLock, K: IndexKey>(p: *mut ArtNode<L>) {
            if is_kv(p) {
                drop(unsafe { Box::from_raw(kv_raw::<L, K>(p)) });
                return;
            }
            let n = unsafe { &*p };
            let mut kids = Vec::new();
            n.for_each_child(|_, c| kids.push(c));
            for c in kids {
                free::<L, K>(c);
            }
            unsafe { ArtNode::<L>::free(p) };
        }
        free::<L, K>(self.root);
        self.collector.flush();
    }
}
