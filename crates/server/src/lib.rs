//! # optiql-server — a thread-per-core pipelined KV front end
//!
//! The workspace's indexes got fast in layers: software-pipelined
//! `multi_lookup`/`multi_insert` descents (3.9× B+-tree / 1.9× ART over
//! scalar at batch 8), a block-routed sharded facade with per-shard
//! reclamation domains, core affinity and amortized epoch pins. This
//! crate is the layer that lets network traffic reach all of that: a
//! TCP server speaking a pipelined length-prefixed binary protocol
//! ([`proto`]) whose workers turn each connection's in-flight request
//! window into exactly the dense operation batches the engines want
//! ([`server`]).
//!
//! Layering: `optiql-server` sits beside the harness, *above* the
//! index crates —
//!
//! ```text
//! optiql-index-api ── optiql-btree / optiql-art / optiql-sharded
//!         └── optiql-server (this crate: proto + thread-per-core server)
//!                 └── optiql-harness::loadgen (client), optiql-bench (sweeps)
//! ```
//!
//! The binary lives at `src/main.rs` (`cargo run -p optiql-server --
//! --help`); the closed-loop load generator is
//! `optiql_harness::loadgen` / the `optiql-loadgen` binary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod proto;
pub mod server;

pub use proto::{FrameDecoder, ProtoError, Request, Response};
pub use server::{start, BackendKind, Dispatch, ServerConfig, ServerHandle, StatsSnapshot};
// Re-exported so server embedders configure durability without naming
// the wal crate themselves.
pub use optiql_wal::{FsyncPolicy, RecoveryReport, Wal, WalStatsSnapshot};
