//! `optiql-server` — serve an OptiQL index over TCP.
//!
//! ```text
//! optiql-server [--addr 127.0.0.1:7878] [--backend sharded-btree]
//!               [--shards 8] [--workers 0] [--dispatch grouped]
//!               [--preload 0] [--max-group 256]
//!               [--wal-dir DIR] [--fsync always|group|none]
//! ```
//!
//! With `--wal-dir` the server recovers the directory's logs before
//! binding (a `# recovery: ...` line reports what replayed), serves a
//! write-ahead-logged index, and acknowledges SET/DEL only after the
//! covering fsync (per `--fsync`; default `group`).
//!
//! Prints `listening on <addr>` once ready (scripts wait for that
//! line), then serves until a client sends the SHUTDOWN opcode (the
//! `optiql-loadgen --shutdown` flag), and exits 0 after printing a
//! stats summary.

use optiql_server::{start, BackendKind, Dispatch, FsyncPolicy, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: optiql-server [--addr HOST:PORT] [--backend btree|art|sharded-btree|sharded-art]\n\
         \x20                    [--shards N] [--workers N] [--dispatch grouped|per-op]\n\
         \x20                    [--preload N] [--max-group N]\n\
         \x20                    [--wal-dir DIR] [--fsync always|group|none]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        preload: 0,
        ..ServerConfig::default()
    };
    let mut backend_name = "sharded-btree".to_string();
    let mut shards = 8usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = val(),
            "--backend" => backend_name = val(),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = val().parse().unwrap_or_else(|_| usage()),
            "--dispatch" => {
                cfg.dispatch = Dispatch::parse(&val()).unwrap_or_else(|| usage());
            }
            "--preload" => cfg.preload = val().parse().unwrap_or_else(|_| usage()),
            "--max-group" => cfg.max_group = val().parse().unwrap_or_else(|_| usage()),
            "--wal-dir" => cfg.wal_dir = Some(val().into()),
            "--fsync" => {
                cfg.fsync = FsyncPolicy::parse(&val()).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    cfg.backend = BackendKind::parse(&backend_name, shards).unwrap_or_else(|| usage());

    let handle = match start(&cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("optiql-server: cannot start on {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // Recovery summary before the banner: anything polling for
    // "listening on" sees the replay outcome first.
    if let Some(rep) = handle.recovery() {
        println!("# recovery: {rep}");
    }
    println!("listening on {}", handle.addr());
    println!(
        "# backend={backend_name} shards={shards} workers={} dispatch={:?} preload={}",
        cfg.workers, cfg.dispatch, cfg.preload
    );
    if let Some(dir) = &cfg.wal_dir {
        println!("# wal: dir={} fsync={}", dir.display(), cfg.fsync.as_str());
    }
    // Line-buffered stdout may sit on the banner when piped; scripts
    // poll for it.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let wal = handle.wal().cloned();
    let stats = handle.join();
    let wal_stats = wal.map(|w| w.stats());
    println!(
        "# shutdown: conns={} requests={} index_ops={} groups={} batched_ops={} proto_errors={}",
        stats.connections,
        stats.requests,
        stats.index_ops,
        stats.groups,
        stats.batched_ops,
        stats.proto_errors
    );
    if let Some(w) = wal_stats {
        println!(
            "# wal: records={} bytes={} fsyncs={}",
            w.records, w.bytes, w.fsyncs
        );
    }
}
