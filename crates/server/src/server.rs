//! The thread-per-core pipelined server.
//!
//! One acceptor thread owns the listener and deals accepted connections
//! out to worker threads round-robin. Each worker owns a core
//! (best-effort pin), a set of reclamation domains (the shards dealt to
//! it by [`ShardAffinity::shards_of_worker`]) and the connections it was
//! handed; it multiplexes them with non-blocking reads, so one slow
//! client never stalls the others.
//!
//! The point of the server is what happens between read and write: a
//! pipelining client has several requests in flight, so one socket read
//! usually drains a *burst* of frames. In [`Dispatch::Grouped`] mode the
//! worker carves each burst into maximal same-opcode runs and dispatches
//! every GET-run through `multi_lookup` and every SET-run through
//! `multi_insert` — the software-pipelined group-prefetch engines the
//! batched benches measured at 3.9× (B+-tree) / 1.9× (ART) over scalar
//! descent — under **one** epoch pin per burst (the per-op pins inside
//! become nested no-fence increments). Responses are written back in
//! arrival order; runs are contiguous, so order preservation is
//! structural, not bookkeeping. [`Dispatch::PerOp`] executes the same
//! queue one scalar operation at a time — it exists so the `server`
//! bench can measure exactly what grouping buys end-to-end.
//!
//! Robustness: a malformed or oversized frame poisons only its own
//! connection — the worker answers with [`Response::Error`], flushes,
//! and closes that socket. Worker threads never panic on client bytes.

use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use optiql_index_api::{ConcurrentIndex, ReclaimHandle};
use optiql_sharded::{ShardAffinity, ShardedIndex};
use optiql_wal::{DurableIndex, FsyncPolicy, RecoveryReport, Wal, WalConfig, WalStatsSnapshot};

use crate::proto::{FrameDecoder, Request, Response, SCAN_PART_MAX};

/// Which index the server serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// One OptiQL B+-tree.
    Btree,
    /// One OptiQL ART.
    Art,
    /// Block-routed sharded facade over B+-trees.
    ShardedBtree {
        /// Shard count (rounded up to a power of two).
        shards: usize,
    },
    /// Block-routed sharded facade over ARTs.
    ShardedArt {
        /// Shard count (rounded up to a power of two).
        shards: usize,
    },
}

impl BackendKind {
    /// Parse a CLI backend name: `btree`, `art`, `sharded-btree`,
    /// `sharded-art`.
    pub fn parse(name: &str, shards: usize) -> Option<BackendKind> {
        Some(match name {
            "btree" => BackendKind::Btree,
            "art" => BackendKind::Art,
            "sharded-btree" => BackendKind::ShardedBtree { shards },
            "sharded-art" => BackendKind::ShardedArt { shards },
            _ => return None,
        })
    }

    /// The number of wal shards matching this backend's routing: the
    /// sharded facades get one log per index shard (same power-of-two
    /// rounding `ShardedIndex::new` applies, same block bits), plain
    /// trees get a single log.
    fn wal_shards(&self) -> usize {
        match *self {
            BackendKind::Btree | BackendKind::Art => 1,
            BackendKind::ShardedBtree { shards } | BackendKind::ShardedArt { shards } => {
                shards.max(1).next_power_of_two()
            }
        }
    }
}

/// How a worker executes a drained burst of requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Carve bursts into same-opcode runs and dispatch them through the
    /// batched engines under one epoch pin per burst.
    #[default]
    Grouped,
    /// One scalar index operation per request (the baseline the bench
    /// compares against).
    PerOp,
}

impl Dispatch {
    /// Parse a CLI dispatch name: `grouped` or `per-op`.
    pub fn parse(name: &str) -> Option<Dispatch> {
        Some(match name {
            "grouped" => Dispatch::Grouped,
            "per-op" => Dispatch::PerOp,
            _ => return None,
        })
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port; see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Index backend.
    pub backend: BackendKind,
    /// Worker threads. `0` means one per available core.
    pub workers: usize,
    /// Burst execution mode.
    pub dispatch: Dispatch,
    /// Keys preloaded before the listener opens: dense keys
    /// `0..preload`, value `key + 1` (the harness convention, so
    /// loadgen lookups hit).
    pub preload: u64,
    /// Largest burst executed under one pin (and one `multi_*` call).
    pub max_group: usize,
    /// Write-ahead-log directory. `None` (the default) serves the
    /// in-memory index exactly as before; `Some` mounts a
    /// [`DurableIndex`] on top — recovery runs before the listener
    /// opens, and every SET/DEL is logged (and, per `fsync`, synced)
    /// before its ack reaches the wire.
    pub wal_dir: Option<PathBuf>,
    /// Fsync discipline when `wal_dir` is set: `Always` syncs inside
    /// every mutation, `Group` amortizes one sync per worker round over
    /// the whole pipelined burst, `None` never syncs (measurement
    /// baseline).
    pub fsync: FsyncPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            backend: BackendKind::ShardedBtree { shards: 8 },
            workers: 0,
            dispatch: Dispatch::Grouped,
            preload: 0,
            max_group: 256,
            wal_dir: None,
            fsync: FsyncPolicy::Group,
        }
    }
}

/// Monotonic counters the server publishes; cheap enough to keep
/// always-on (a handful of `Relaxed` adds per burst).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests executed (an MGET counts once).
    pub requests: AtomicU64,
    /// Index operations executed (an MGET of k keys counts k).
    pub index_ops: AtomicU64,
    /// Bursts executed under one pin (grouped mode only).
    pub groups: AtomicU64,
    /// Operations that went through `multi_lookup`/`multi_insert`.
    pub batched_ops: AtomicU64,
    /// Connections closed for protocol violations.
    pub proto_errors: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests executed.
    pub requests: u64,
    /// Index operations executed.
    pub index_ops: u64,
    /// Bursts executed under one pin.
    pub groups: u64,
    /// Operations dispatched through the batched engines.
    pub batched_ops: u64,
    /// Connections closed for protocol violations.
    pub proto_errors: u64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            index_ops: self.index_ops.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            proto_errors: self.proto_errors.load(Ordering::Relaxed),
        }
    }
}

/// The backend seen by workers: the index plus its reclamation topology.
struct Backend {
    index: Arc<dyn ConcurrentIndex>,
    /// One handle per reclamation domain, in shard order (plain trees
    /// have exactly one domain).
    domains: Vec<ReclaimHandle>,
    /// Shard → core placement used to deal domains out to workers.
    shard_affinity: ShardAffinity,
}

fn sharded_backend<I: ConcurrentIndex + Default + 'static>(shards: usize) -> Backend {
    let s: ShardedIndex<I> = ShardedIndex::new(shards);
    let mut domains = Vec::new();
    s.for_each_shard(|_, sh| domains.extend(sh.reclaim_handle()));
    let shard_affinity = s.affinity();
    Backend {
        index: Arc::new(s),
        domains,
        shard_affinity,
    }
}

fn plain_backend<I: ConcurrentIndex + Default + 'static>() -> Backend {
    let t = I::default();
    let domains = t.reclaim_handle().into_iter().collect();
    Backend {
        index: Arc::new(t),
        domains,
        shard_affinity: ShardAffinity::probe(1),
    }
}

impl Backend {
    fn build(kind: BackendKind) -> Backend {
        match kind {
            BackendKind::Btree => plain_backend::<optiql_btree::BTreeOptiQL>(),
            BackendKind::Art => plain_backend::<optiql_art::ArtOptiQL>(),
            BackendKind::ShardedBtree { shards } => {
                sharded_backend::<optiql_btree::BTreeOptiQL>(shards)
            }
            BackendKind::ShardedArt { shards } => sharded_backend::<optiql_art::ArtOptiQL>(shards),
        }
    }

    /// The reclamation domains worker `tid` of `workers` owns (and pins
    /// once per burst in grouped mode).
    fn owned_domains(&self, tid: usize, workers: usize) -> Vec<ReclaimHandle> {
        if self.domains.is_empty() {
            return Vec::new();
        }
        self.shard_affinity
            .shards_of_worker(tid, workers)
            .into_iter()
            .filter_map(|s| self.domains.get(s).cloned())
            .collect()
    }
}

/// A running server. Dropping the handle aborts the process's view of
/// it without joining; call [`shutdown`](Self::shutdown) (or let a
/// client send the SHUTDOWN opcode and call [`join`](Self::join)) for a
/// clean stop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<ServerStats>,
    index: Arc<dyn ConcurrentIndex>,
    wal: Option<Arc<Wal>>,
    recovery: Option<RecoveryReport>,
}

impl ServerHandle {
    /// The bound listen address (with the real port when `:0` was
    /// requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The served index (tests inspect it directly). With a wal mounted
    /// this is the [`DurableIndex`] wrapper: direct mutations through it
    /// are logged too.
    pub fn index(&self) -> &Arc<dyn ConcurrentIndex> {
        &self.index
    }

    /// What recovery replayed at startup (`None` when no wal is
    /// mounted).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The mounted wal (`None` without `--wal-dir`). Benches clone the
    /// `Arc` to snapshot counters after the handle is consumed by
    /// [`join`](Self::join)/[`shutdown`](Self::shutdown).
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Wal counter snapshot (`None` when no wal is mounted).
    pub fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// True once the server has begun stopping (a client sent SHUTDOWN
    /// or [`shutdown`](Self::shutdown) ran).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Request a stop and join every thread.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop.store(true, Ordering::Release);
        self.join_threads();
        self.stats.snapshot()
    }

    /// Wait until something else stops the server (a SHUTDOWN frame),
    /// then join every thread.
    pub fn join(mut self) -> StatsSnapshot {
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.join_threads();
        self.stats.snapshot()
    }

    fn join_threads(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.join_threads();
    }
}

/// Build the backend, recover + mount the wal (if configured), preload,
/// bind the listener and spawn the acceptor + worker threads.
pub fn start(cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let backend = Arc::new(Backend::build(cfg.backend));

    // Mount durability first: recovery must finish before the listener
    // opens, so no client ever reads pre-recovery state. Recovery
    // replays into the *plain* index (appending nothing); the wrapper
    // only sees post-recovery traffic.
    let (serve_index, wal, recovery) = match &cfg.wal_dir {
        Some(dir) => {
            let wal = Arc::new(Wal::open(WalConfig {
                dir: dir.clone(),
                shards: cfg.backend.wal_shards(),
                block_bits: optiql_sharded::DEFAULT_BLOCK_BITS,
                policy: cfg.fsync,
            })?);
            let report = wal.recover_into::<u64, _>(&*backend.index)?;
            let durable: Arc<dyn ConcurrentIndex> = Arc::new(DurableIndex::new(
                Arc::clone(&backend.index),
                Arc::clone(&wal),
            ));
            (durable, Some(wal), Some(report))
        }
        None => (Arc::clone(&backend.index), None, None),
    };

    // Preload through the serving index: with a wal mounted the dense
    // keys are logged like any client write, so a later recovery
    // reproduces preload + traffic together.
    for i in 0..cfg.preload {
        serve_index.insert(i, i.wrapping_add(1));
    }
    if let Some(w) = &wal {
        w.commit_dirty();
    }

    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.workers
    };
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let worker_affinity = ShardAffinity::probe(workers);

    let mut threads = Vec::with_capacity(workers + 1);
    let mut senders = Vec::with_capacity(workers);
    for tid in 0..workers {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        senders.push(tx);
        let w = Worker {
            tid,
            rx,
            index: Arc::clone(&serve_index),
            owned: backend.owned_domains(tid, workers),
            dispatch: cfg.dispatch,
            max_group: cfg.max_group.max(1),
            // Only group commit needs the worker-round flush point:
            // Always syncs inside each op, None never syncs.
            group_wal: wal
                .as_ref()
                .filter(|w| w.policy() == FsyncPolicy::Group)
                .map(Arc::clone),
            stop: Arc::clone(&stop),
            stats: Arc::clone(&stats),
        };
        let affinity = worker_affinity.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("optiql-worker-{tid}"))
                .spawn(move || {
                    affinity.pin_to_shard(w.tid);
                    w.run();
                })?,
        );
    }

    {
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        threads.push(
            std::thread::Builder::new()
                .name("optiql-acceptor".into())
                .spawn(move || accept_loop(listener, senders, stop, stats))?,
        );
    }

    Ok(ServerHandle {
        addr,
        stop,
        threads,
        stats,
        index: serve_index,
        wal,
        recovery,
    })
}

fn accept_loop(
    listener: TcpListener,
    senders: Vec<mpsc::Sender<TcpStream>>,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let mut next = 0usize;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stats.connections.fetch_add(1, Ordering::Relaxed);
                // Round-robin deal; a worker whose channel died (worker
                // exited) just drops the connection.
                let _ = senders[next % senders.len()].send(stream);
                next += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// One connection a worker multiplexes.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Decoded, not yet executed.
    pending: Vec<Request>,
    /// Encoded responses not yet written; `outpos` is the flush cursor.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Flush what's buffered, then close (set on protocol errors and
    /// after a SHUTDOWN ack).
    close_after_flush: bool,
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            pending: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            close_after_flush: false,
            closed: false,
        }
    }
}

struct Worker {
    tid: usize,
    rx: mpsc::Receiver<TcpStream>,
    index: Arc<dyn ConcurrentIndex>,
    /// Reclamation domains this worker owns; pinned once per burst in
    /// grouped mode.
    owned: Vec<ReclaimHandle>,
    dispatch: Dispatch,
    max_group: usize,
    /// Present iff a wal with [`FsyncPolicy::Group`] is mounted: the
    /// worker round becomes two-phase (execute everything, one
    /// `commit_dirty`, then flush responses) so a single fsync per
    /// dirty shard covers every ack the round releases.
    group_wal: Option<Arc<Wal>>,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
}

impl Worker {
    fn run(&self) {
        let mut conns: Vec<Conn> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        let mut idle_rounds = 0u32;
        while !self.stop.load(Ordering::Acquire) {
            let mut progressed = false;
            while let Ok(s) = self.rx.try_recv() {
                conns.push(Conn::new(s));
                progressed = true;
            }
            match &self.group_wal {
                // Group commit: run every connection's read → decode →
                // execute first (responses pile up in outbufs), make the
                // whole round durable with one fsync per dirty shard,
                // and only then let any response reach a socket. An ack
                // a client can observe is therefore always covered by a
                // completed fsync — the durable-prefix property the
                // crash tests assert.
                Some(wal) => {
                    for conn in conns.iter_mut() {
                        progressed |= self.pump_ingest(conn, &mut scratch);
                    }
                    wal.commit_dirty();
                    for conn in conns.iter_mut() {
                        progressed |= self.pump_flush(conn);
                    }
                }
                None => {
                    for conn in conns.iter_mut() {
                        progressed |= self.pump(conn, &mut scratch);
                    }
                }
            }
            conns.retain(|c| !c.closed);
            if progressed {
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
                if idle_rounds < 64 {
                    // Share the core with clients (this matters on
                    // single-core hosts, where the loadgen and the
                    // worker time-slice one CPU).
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Run one read → decode → execute → flush cycle on a connection.
    /// Returns true if any byte or request moved.
    fn pump(&self, conn: &mut Conn, scratch: &mut [u8]) -> bool {
        let a = self.pump_ingest(conn, scratch);
        let b = self.pump_flush(conn);
        a || b
    }

    /// The front half of [`pump`](Self::pump): read, decode, execute —
    /// responses land in `conn.outbuf` but nothing touches the socket's
    /// write side. Under group commit the worker runs this over every
    /// connection, fsyncs, then flushes.
    fn pump_ingest(&self, conn: &mut Conn, scratch: &mut [u8]) -> bool {
        let mut progressed = false;

        // Read everything the socket has.
        if !conn.close_after_flush {
            loop {
                match conn.stream.read(scratch) {
                    Ok(0) => {
                        conn.closed = true;
                        return true;
                    }
                    Ok(n) => {
                        conn.decoder.feed(&scratch[..n]);
                        progressed = true;
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.closed = true;
                        return true;
                    }
                }
            }

            // Decode the burst.
            loop {
                match conn.decoder.next_request() {
                    Ok(Some(req)) => conn.pending.push(req),
                    Ok(None) => break,
                    Err(e) => {
                        // Malformed frame: answer, then close only this
                        // connection. The queue decoded so far still
                        // executes — those frames were well-formed.
                        self.stats.proto_errors.fetch_add(1, Ordering::Relaxed);
                        Response::Error(format!("bad frame: {e}")).encode(&mut conn.outbuf);
                        conn.close_after_flush = true;
                        progressed = true;
                        break;
                    }
                }
            }
        }

        // Execute.
        if !conn.pending.is_empty() {
            progressed = true;
            match self.dispatch {
                Dispatch::Grouped => self.execute_grouped(conn),
                Dispatch::PerOp => self.execute_per_op(conn),
            }
            conn.pending.clear();
        }
        progressed
    }

    /// The back half of [`pump`](Self::pump): write buffered responses
    /// out, handle close-after-flush.
    fn pump_flush(&self, conn: &mut Conn) -> bool {
        if conn.closed {
            return false;
        }
        let mut progressed = false;
        while conn.outpos < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => {
                    conn.closed = true;
                    return true;
                }
                Ok(n) => {
                    conn.outpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closed = true;
                    return true;
                }
            }
        }
        if conn.outpos == conn.outbuf.len() {
            conn.outbuf.clear();
            conn.outpos = 0;
            if conn.close_after_flush {
                conn.closed = true;
            }
        }
        progressed
    }

    fn execute_one(&self, req: &Request, out: &mut Vec<u8>) {
        match req {
            Request::Get { key } => {
                Response::Value(self.index.lookup(*key)).encode(out);
                self.stats.index_ops.fetch_add(1, Ordering::Relaxed);
            }
            Request::Set { key, value } => {
                Response::Old(self.index.insert(*key, *value)).encode(out);
                self.stats.index_ops.fetch_add(1, Ordering::Relaxed);
            }
            Request::Del { key } => {
                Response::Old(self.index.remove(*key)).encode(out);
                self.stats.index_ops.fetch_add(1, Ordering::Relaxed);
            }
            Request::MGet { keys } => {
                let vs: Vec<Option<u64>> = keys.iter().map(|&k| self.index.lookup(k)).collect();
                self.stats
                    .index_ops
                    .fetch_add(keys.len() as u64, Ordering::Relaxed);
                Response::MValues(vs).encode(out);
            }
            Request::ScanCount { start, limit } => {
                let n = self.index.scan_count(*start, *limit as usize);
                self.stats.index_ops.fetch_add(1, Ordering::Relaxed);
                Response::Count(n as u64).encode(out);
            }
            Request::Shutdown => self.ack_shutdown(out),
            Request::Scan { start, count } => {
                // Stream straight off the lazy range iterator: each
                // SCAN_PART is encoded (and its buffer retired) before
                // the next chunk of leaves is even visited, so a 64Ki
                // scan costs one part's allocation, not the scan's.
                let mut total = 0u32;
                let mut part: Vec<(u64, u64)> =
                    Vec::with_capacity(SCAN_PART_MAX.min(*count as usize));
                for kv in self
                    .index
                    .range(
                        std::ops::Bound::Included(*start),
                        std::ops::Bound::Unbounded,
                    )
                    .take(*count as usize)
                {
                    part.push(kv);
                    if part.len() == SCAN_PART_MAX {
                        total += part.len() as u32;
                        Response::ScanPart(std::mem::take(&mut part)).encode(out);
                    }
                }
                total += part.len() as u32;
                if !part.is_empty() {
                    Response::ScanPart(part).encode(out);
                }
                Response::ScanEnd { total }.encode(out);
                self.stats
                    .index_ops
                    .fetch_add(u64::from(total).max(1), Ordering::Relaxed);
            }
            // Reserved opcodes: well-formed on the wire, unimplemented in
            // the engine. Clean ERR, connection stays open — only actual
            // protocol violations cost the client its connection.
            Request::Cas { .. } => {
                Response::Error("CAS (0x08) is reserved, not implemented".into()).encode(out);
            }
            Request::Incr { .. } => {
                Response::Error("INCR (0x09) is reserved, not implemented".into()).encode(out);
            }
            Request::Ttl { .. } => {
                Response::Error("TTL (0x0a) is reserved, not implemented".into()).encode(out);
            }
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
    }

    fn ack_shutdown(&self, out: &mut Vec<u8>) {
        Response::Ok.encode(out);
        self.stop.store(true, Ordering::Release);
    }

    fn execute_per_op(&self, conn: &mut Conn) {
        let reqs = std::mem::take(&mut conn.pending);
        for req in &reqs {
            self.execute_one(req, &mut conn.outbuf);
            if matches!(req, Request::Shutdown) {
                conn.close_after_flush = true;
            }
        }
        conn.pending = reqs;
    }

    /// Execute a burst: maximal same-opcode runs go through the batched
    /// engines; each `max_group` slice runs under one epoch pin over
    /// this worker's owned domains.
    fn execute_grouped(&self, conn: &mut Conn) {
        let reqs = std::mem::take(&mut conn.pending);
        let mut gets: Vec<u64> = Vec::new();
        let mut sets: Vec<(u64, u64)> = Vec::new();
        for chunk in reqs.chunks(self.max_group) {
            // One pin per burst over the owned domains: every per-op pin
            // the engines take inside is a nested depth increment.
            let _pins: Vec<_> = self.owned.iter().map(|h| h.pin()).collect();
            self.stats.groups.fetch_add(1, Ordering::Relaxed);
            let mut i = 0;
            while i < chunk.len() {
                match &chunk[i] {
                    Request::Get { .. } => {
                        gets.clear();
                        while let Some(Request::Get { key }) = chunk.get(i) {
                            gets.push(*key);
                            i += 1;
                        }
                        if gets.len() == 1 {
                            Response::Value(self.index.lookup(gets[0])).encode(&mut conn.outbuf);
                            self.stats.index_ops.fetch_add(1, Ordering::Relaxed);
                        } else {
                            for v in self.index.multi_lookup(&gets) {
                                Response::Value(v).encode(&mut conn.outbuf);
                            }
                            self.stats
                                .index_ops
                                .fetch_add(gets.len() as u64, Ordering::Relaxed);
                            self.stats
                                .batched_ops
                                .fetch_add(gets.len() as u64, Ordering::Relaxed);
                        }
                        self.stats
                            .requests
                            .fetch_add(gets.len() as u64, Ordering::Relaxed);
                    }
                    Request::Set { .. } => {
                        sets.clear();
                        while let Some(Request::Set { key, value }) = chunk.get(i) {
                            sets.push((*key, *value));
                            i += 1;
                        }
                        if sets.len() == 1 {
                            Response::Old(self.index.insert(sets[0].0, sets[0].1))
                                .encode(&mut conn.outbuf);
                            self.stats.index_ops.fetch_add(1, Ordering::Relaxed);
                        } else {
                            for v in self.index.multi_insert(&sets) {
                                Response::Old(v).encode(&mut conn.outbuf);
                            }
                            self.stats
                                .index_ops
                                .fetch_add(sets.len() as u64, Ordering::Relaxed);
                            self.stats
                                .batched_ops
                                .fetch_add(sets.len() as u64, Ordering::Relaxed);
                        }
                        self.stats
                            .requests
                            .fetch_add(sets.len() as u64, Ordering::Relaxed);
                    }
                    Request::MGet { keys } => {
                        // An MGET is already a batch: straight through
                        // the pipelined engine.
                        let vs = self.index.multi_lookup(keys);
                        self.stats
                            .index_ops
                            .fetch_add(keys.len() as u64, Ordering::Relaxed);
                        self.stats
                            .batched_ops
                            .fetch_add(keys.len() as u64, Ordering::Relaxed);
                        self.stats.requests.fetch_add(1, Ordering::Relaxed);
                        Response::MValues(vs).encode(&mut conn.outbuf);
                        i += 1;
                    }
                    req => {
                        self.execute_one(req, &mut conn.outbuf);
                        if matches!(req, Request::Shutdown) {
                            conn.close_after_flush = true;
                        }
                        i += 1;
                    }
                }
            }
        }
        conn.pending = reqs;
    }
}
