//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame — request or response — is a 4-byte little-endian payload
//! length followed by the payload; the payload's first byte is the
//! opcode, the rest is the fixed-layout body (all integers little
//! endian). There is no CRC: TCP already checksums, and the fixed
//! framing means a malformed frame is detected structurally (unknown
//! opcode, body length mismatch, oversized frame) and answered with
//! [`Response::Error`] before the connection is closed.
//!
//! ```text
//! request  := len:u32 | opcode:u8 | body
//!   GET        0x01 | key:u64
//!   SET        0x02 | key:u64 | value:u64
//!   DEL        0x03 | key:u64
//!   MGET       0x04 | count:u32 | key:u64 × count
//!   SCAN_COUNT 0x05 | start:u64 | limit:u32
//!   SHUTDOWN   0x06 | (empty)
//!   SCAN       0x07 | start:u64 | count:u32
//!   CAS        0x08 | key:u64 | expected:u64 | new:u64   (reserved)
//!   INCR       0x09 | key:u64 | delta:u64                (reserved)
//!   TTL        0x0A | key:u64 | ttl_ms:u64               (reserved)
//!
//! response := len:u32 | opcode:u8 | body
//!   VALUE      0x81 | found:u8 | value:u64          (GET)
//!   OLD        0x82 | had:u8 | old:u64              (SET, DEL)
//!   MVALUES    0x84 | count:u32 | (found:u8 | value:u64) × count
//!   COUNT      0x85 | count:u64                     (SCAN_COUNT)
//!   OK         0x86 | (empty)                       (SHUTDOWN ack)
//!   SCAN_PART  0x87 | count:u32 | (key:u64 | value:u64) × count   (SCAN)
//!   SCAN_END   0x88 | total:u32                     (SCAN terminator)
//!   ERR        0xEE | utf-8 message (rest of frame)
//! ```
//!
//! ## Streaming SCAN
//!
//! A SCAN asks for up to `count` entries with key ≥ `start`, in
//! ascending key order. The reply is a *stream*: zero or more SCAN_PART
//! frames — each carrying at most [`SCAN_PART_MAX`] entries — followed
//! by exactly one SCAN_END whose `total` equals the summed part counts.
//! Bounding the parts is what makes the opcode safe to pipeline: the
//! server encodes from the index's lazy `range` iterator part by part,
//! so a 64Ki-entry scan never materializes in one allocation on either
//! side, and a client can abandon a stream knowing the next frame
//! boundary is at most one part away. Parts of one SCAN are contiguous
//! and in order on the connection (workers execute a connection's
//! requests serially), so continuation needs no sequence numbers.
//!
//! ## Reserved opcodes
//!
//! CAS, INCR and TTL have fixed body layouts (validated like any other
//! frame) but no implementation yet. The server answers each with a
//! clean ERR *without* closing the connection — reserving the opcode
//! space while keeping "ERR then close" as the signature of an actual
//! protocol violation.
//!
//! The codec is symmetric: [`FrameDecoder`] incrementally reassembles
//! frames from arbitrary byte chunks (partial reads, frames split across
//! reads, many frames per read), so the server and the load-generator
//! client share one implementation — and one proptest suite.

use std::fmt;

/// Frames larger than this are rejected before buffering the body: a
/// 4 MiB length prefix on this protocol can only be garbage (the largest
/// legal frame is an MGET of [`MAX_MGET`] keys).
pub const MAX_FRAME: usize = 4 + 8 * MAX_MGET as usize + 16;

/// Upper bound on keys per MGET request, so one frame cannot make the
/// server allocate unboundedly.
pub const MAX_MGET: u32 = 64 * 1024;

/// Upper bound on entries one SCAN may request. The reply streams in
/// [`SCAN_PART_MAX`]-entry frames, so this bounds iterator work per
/// request, not any single allocation.
pub const MAX_SCAN: u32 = 64 * 1024;

/// Most entries one SCAN_PART frame may carry (2 KiB of payload): the
/// response-side frame bound that keeps a scan stream pipelinable.
pub const SCAN_PART_MAX: usize = 128;

/// Request opcodes (the `0x0*` space).
pub mod op {
    /// Point lookup.
    pub const GET: u8 = 0x01;
    /// Insert-or-overwrite.
    pub const SET: u8 = 0x02;
    /// Remove.
    pub const DEL: u8 = 0x03;
    /// Batched point lookups.
    pub const MGET: u8 = 0x04;
    /// Count entries with key ≥ start, capped at limit.
    pub const SCAN_COUNT: u8 = 0x05;
    /// Ask the server to shut down cleanly (acked with OK).
    pub const SHUTDOWN: u8 = 0x06;
    /// Stream up to count entries with key ≥ start (SCAN_PART × n,
    /// then SCAN_END).
    pub const SCAN: u8 = 0x07;
    /// Reserved: compare-and-swap. Decodes; the server rejects it with
    /// ERR without closing the connection.
    pub const CAS: u8 = 0x08;
    /// Reserved: atomic increment. Decodes; rejected like CAS.
    pub const INCR: u8 = 0x09;
    /// Reserved: per-key expiry. Decodes; rejected like CAS.
    pub const TTL: u8 = 0x0A;
}

/// Response opcodes (the `0x8*` space, plus ERR).
pub mod resp {
    /// GET result.
    pub const VALUE: u8 = 0x81;
    /// SET / DEL result (previous value).
    pub const OLD: u8 = 0x82;
    /// MGET results.
    pub const MVALUES: u8 = 0x84;
    /// SCAN_COUNT result.
    pub const COUNT: u8 = 0x85;
    /// Success without payload.
    pub const OK: u8 = 0x86;
    /// One bounded chunk of a SCAN stream (≤ [`super::SCAN_PART_MAX`]
    /// entries, ascending keys).
    pub const SCAN_PART: u8 = 0x87;
    /// End of a SCAN stream; carries the total entry count.
    pub const SCAN_END: u8 = 0x88;
    /// Protocol or server error. After a *protocol violation* the
    /// sender closes the connection; after a reserved-opcode rejection
    /// it stays open.
    pub const ERR: u8 = 0xEE;
}

/// One decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Insert-or-overwrite.
    Set {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Remove a key.
    Del {
        /// Key to remove.
        key: u64,
    },
    /// Batched point lookups (order-preserving).
    MGet {
        /// Keys to look up, in response order.
        keys: Vec<u64>,
    },
    /// Count entries with key ≥ `start`, up to `limit`.
    ScanCount {
        /// Inclusive lower bound.
        start: u64,
        /// Result cap.
        limit: u32,
    },
    /// Clean server shutdown.
    Shutdown,
    /// Stream up to `count` entries with key ≥ `start` as bounded
    /// SCAN_PART frames plus a SCAN_END terminator.
    Scan {
        /// Inclusive lower bound.
        start: u64,
        /// Entry cap (≤ [`MAX_SCAN`]).
        count: u32,
    },
    /// Reserved (not implemented): compare-and-swap.
    Cas {
        /// Key to compare.
        key: u64,
        /// Value the swap requires.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Reserved (not implemented): atomic increment.
    Incr {
        /// Key to bump.
        key: u64,
        /// Amount to add.
        delta: u64,
    },
    /// Reserved (not implemented): per-key expiry.
    Ttl {
        /// Key to expire.
        key: u64,
        /// Lifetime in milliseconds.
        ttl_ms: u64,
    },
}

/// One decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET result: `None` when the key was absent.
    Value(Option<u64>),
    /// SET / DEL result: the previous value, if any.
    Old(Option<u64>),
    /// MGET results, positionally matching the request's keys.
    MValues(Vec<Option<u64>>),
    /// SCAN_COUNT result.
    Count(u64),
    /// Success without payload.
    Ok,
    /// One bounded chunk of a SCAN stream: ≤ [`SCAN_PART_MAX`]
    /// `(key, value)` entries in ascending key order.
    ScanPart(Vec<(u64, u64)>),
    /// SCAN stream terminator carrying the total entries streamed.
    ScanEnd {
        /// Entries streamed across this scan's SCAN_PART frames.
        total: u32,
    },
    /// Protocol or server error. The sender closes the connection after
    /// emitting this for a protocol violation; a reserved-opcode
    /// rejection leaves the connection open.
    Error(String),
}

/// Why a frame could not be decoded. All variants are fatal for the
/// connection that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// Zero-length payload (no opcode byte).
    EmptyFrame,
    /// First payload byte is not a known opcode.
    BadOpcode(u8),
    /// Body shorter than the opcode's fixed layout requires.
    Truncated,
    /// Body longer than the opcode's fixed layout allows.
    TrailingBytes,
    /// A count field (MGET keys, SCAN entries, SCAN_PART entries)
    /// exceeds its opcode's bound or disagrees with the body length.
    BadCount(u32),
    /// ERR payload is not UTF-8.
    BadUtf8,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
            ProtoError::EmptyFrame => write!(f, "empty frame (no opcode)"),
            ProtoError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            ProtoError::Truncated => write!(f, "body shorter than the opcode requires"),
            ProtoError::TrailingBytes => write!(f, "body longer than the opcode allows"),
            ProtoError::BadCount(n) => write!(f, "bad MGET count {n}"),
            ProtoError::BadUtf8 => write!(f, "error message is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Append one length-prefixed frame with the given opcode and body
/// writer. The writer appends body bytes to the buffer; the length
/// prefix is patched afterwards so bodies never need pre-measuring.
fn frame(out: &mut Vec<u8>, opcode: u8, body: impl FnOnce(&mut Vec<u8>)) {
    let at = out.len();
    out.extend_from_slice(&[0; 4]);
    out.push(opcode);
    body(out);
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Request {
    /// Append this request as one wire frame.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Get { key } => frame(out, op::GET, |b| put_u64(b, *key)),
            Request::Set { key, value } => frame(out, op::SET, |b| {
                put_u64(b, *key);
                put_u64(b, *value);
            }),
            Request::Del { key } => frame(out, op::DEL, |b| put_u64(b, *key)),
            Request::MGet { keys } => frame(out, op::MGET, |b| {
                put_u32(b, keys.len() as u32);
                for k in keys {
                    put_u64(b, *k);
                }
            }),
            Request::ScanCount { start, limit } => frame(out, op::SCAN_COUNT, |b| {
                put_u64(b, *start);
                put_u32(b, *limit);
            }),
            Request::Shutdown => frame(out, op::SHUTDOWN, |_| {}),
            Request::Scan { start, count } => frame(out, op::SCAN, |b| {
                put_u64(b, *start);
                put_u32(b, *count);
            }),
            Request::Cas { key, expected, new } => frame(out, op::CAS, |b| {
                put_u64(b, *key);
                put_u64(b, *expected);
                put_u64(b, *new);
            }),
            Request::Incr { key, delta } => frame(out, op::INCR, |b| {
                put_u64(b, *key);
                put_u64(b, *delta);
            }),
            Request::Ttl { key, ttl_ms } => frame(out, op::TTL, |b| {
                put_u64(b, *key);
                put_u64(b, *ttl_ms);
            }),
        }
    }
}

impl Response {
    /// Append this response as one wire frame.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Value(v) => frame(out, resp::VALUE, |b| {
                b.push(u8::from(v.is_some()));
                put_u64(b, v.unwrap_or(0));
            }),
            Response::Old(v) => frame(out, resp::OLD, |b| {
                b.push(u8::from(v.is_some()));
                put_u64(b, v.unwrap_or(0));
            }),
            Response::MValues(vs) => frame(out, resp::MVALUES, |b| {
                put_u32(b, vs.len() as u32);
                for v in vs {
                    b.push(u8::from(v.is_some()));
                    put_u64(b, v.unwrap_or(0));
                }
            }),
            Response::Count(n) => frame(out, resp::COUNT, |b| put_u64(b, *n)),
            Response::Ok => frame(out, resp::OK, |_| {}),
            Response::ScanPart(entries) => {
                assert!(
                    entries.len() <= SCAN_PART_MAX,
                    "SCAN_PART overflow: {} entries",
                    entries.len()
                );
                frame(out, resp::SCAN_PART, |b| {
                    put_u32(b, entries.len() as u32);
                    for (k, v) in entries {
                        put_u64(b, *k);
                        put_u64(b, *v);
                    }
                })
            }
            Response::ScanEnd { total } => frame(out, resp::SCAN_END, |b| put_u32(b, *total)),
            Response::Error(msg) => frame(out, resp::ERR, |b| b.extend_from_slice(msg.as_bytes())),
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Fixed-layout body reader: every `take_*` advances and fails with
/// `Truncated` past the end; `finish` fails with `TrailingBytes` unless
/// the body was consumed exactly.
struct Body<'a> {
    buf: &'a [u8],
}

impl<'a> Body<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Body { buf }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        if self.buf.len() < N {
            return Err(ProtoError::Truncated);
        }
        let (head, rest) = self.buf.split_at(N);
        self.buf = rest;
        Ok(head.try_into().unwrap())
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

fn opt_value(body: &mut Body<'_>) -> Result<Option<u64>, ProtoError> {
    let found = body.u8()?;
    let v = body.u64()?;
    Ok((found != 0).then_some(v))
}

impl Request {
    /// Decode one complete frame payload (opcode + body, no length
    /// prefix).
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let (&opcode, rest) = payload.split_first().ok_or(ProtoError::EmptyFrame)?;
        let mut b = Body::new(rest);
        let req = match opcode {
            op::GET => Request::Get { key: b.u64()? },
            op::SET => Request::Set {
                key: b.u64()?,
                value: b.u64()?,
            },
            op::DEL => Request::Del { key: b.u64()? },
            op::MGET => {
                let count = b.u32()?;
                if count > MAX_MGET {
                    return Err(ProtoError::BadCount(count));
                }
                let mut keys = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    keys.push(b.u64()?);
                }
                Request::MGet { keys }
            }
            op::SCAN_COUNT => Request::ScanCount {
                start: b.u64()?,
                limit: b.u32()?,
            },
            op::SHUTDOWN => Request::Shutdown,
            op::SCAN => {
                let start = b.u64()?;
                let count = b.u32()?;
                if count > MAX_SCAN {
                    return Err(ProtoError::BadCount(count));
                }
                Request::Scan { start, count }
            }
            op::CAS => Request::Cas {
                key: b.u64()?,
                expected: b.u64()?,
                new: b.u64()?,
            },
            op::INCR => Request::Incr {
                key: b.u64()?,
                delta: b.u64()?,
            },
            op::TTL => Request::Ttl {
                key: b.u64()?,
                ttl_ms: b.u64()?,
            },
            other => return Err(ProtoError::BadOpcode(other)),
        };
        b.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Decode one complete frame payload (opcode + body, no length
    /// prefix).
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let (&opcode, rest) = payload.split_first().ok_or(ProtoError::EmptyFrame)?;
        let mut b = Body::new(rest);
        let r = match opcode {
            resp::VALUE => Response::Value(opt_value(&mut b)?),
            resp::OLD => Response::Old(opt_value(&mut b)?),
            resp::MVALUES => {
                let count = b.u32()?;
                if count > MAX_MGET {
                    return Err(ProtoError::BadCount(count));
                }
                let mut vs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    vs.push(opt_value(&mut b)?);
                }
                Response::MValues(vs)
            }
            resp::COUNT => Response::Count(b.u64()?),
            resp::OK => Response::Ok,
            resp::SCAN_PART => {
                let count = b.u32()?;
                if count as usize > SCAN_PART_MAX {
                    return Err(ProtoError::BadCount(count));
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    entries.push((b.u64()?, b.u64()?));
                }
                Response::ScanPart(entries)
            }
            resp::SCAN_END => Response::ScanEnd { total: b.u32()? },
            resp::ERR => {
                let msg = std::str::from_utf8(b.buf).map_err(|_| ProtoError::BadUtf8)?;
                return Ok(Response::Error(msg.to_string()));
            }
            other => return Err(ProtoError::BadOpcode(other)),
        };
        b.finish()?;
        Ok(r)
    }
}

/// Incremental frame reassembler.
///
/// Feed it whatever byte chunks the socket produced; pull complete
/// payloads out with [`next_payload`](Self::next_payload) (or typed
/// frames with the `next_request` / `next_response` wrappers). The
/// decoder validates the length prefix *before* buffering a body, so a
/// garbage length can never make it allocate [`MAX_FRAME`]-scale memory
/// on behalf of a broken peer. Decode errors are sticky: a connection
/// that produced one cannot resynchronize mid-stream and must be closed.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed prefix is compacted away
    /// periodically instead of on every frame.
    pos: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// Fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes from the socket.
    pub fn feed(&mut self, chunk: &[u8]) {
        if self.poisoned {
            return;
        }
        // Compact once the consumed prefix dominates, so long-lived
        // connections never grow the buffer without bound.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull the next complete frame payload, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes". An `Err` poisons the decoder:
    /// every later call returns the same structural failure mode
    /// (`FrameTooLarge` here; opcode/body errors surface from the typed
    /// wrappers).
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        if self.poisoned {
            return Err(ProtoError::FrameTooLarge(0));
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            self.poisoned = true;
            return Err(ProtoError::FrameTooLarge(len));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(payload))
    }

    /// Pull the next complete [`Request`], if one is fully buffered.
    /// Decode errors poison the decoder.
    pub fn next_request(&mut self) -> Result<Option<Request>, ProtoError> {
        match self.next_payload()? {
            None => Ok(None),
            Some(p) => match Request::decode(&p) {
                Ok(r) => Ok(Some(r)),
                Err(e) => {
                    self.poisoned = true;
                    Err(e)
                }
            },
        }
    }

    /// Pull the next complete [`Response`], if one is fully buffered.
    /// Decode errors poison the decoder.
    pub fn next_response(&mut self) -> Result<Option<Response>, ProtoError> {
        match self.next_payload()? {
            None => Ok(None),
            Some(p) => match Response::decode(&p) {
                Ok(r) => Ok(Some(r)),
                Err(e) => {
                    self.poisoned = true;
                    Err(e)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let reqs = [
            Request::Get { key: 7 },
            Request::Set {
                key: u64::MAX,
                value: 0,
            },
            Request::Del { key: 1 << 63 },
            Request::MGet {
                keys: vec![1, 2, 3, u64::MAX],
            },
            Request::MGet { keys: vec![] },
            Request::ScanCount {
                start: 10,
                limit: 100,
            },
            Request::Shutdown,
            Request::Scan {
                start: 3,
                count: MAX_SCAN,
            },
            Request::Cas {
                key: 1,
                expected: 2,
                new: 3,
            },
            Request::Incr { key: 4, delta: 5 },
            Request::Ttl { key: 6, ttl_ms: 7 },
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        for r in &reqs {
            assert_eq!(dec.next_request().unwrap().as_ref(), Some(r));
        }
        assert_eq!(dec.next_request().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn response_frames_round_trip() {
        let resps = [
            Response::Value(Some(42)),
            Response::Value(None),
            Response::Old(Some(u64::MAX)),
            Response::Old(None),
            Response::MValues(vec![Some(1), None, Some(3)]),
            Response::MValues(vec![]),
            Response::Count(12345),
            Response::Ok,
            Response::ScanPart(vec![(1, 2), (3, 4), (u64::MAX, 0)]),
            Response::ScanPart(vec![]),
            Response::ScanPart((0..SCAN_PART_MAX as u64).map(|k| (k, k + 1)).collect()),
            Response::ScanEnd { total: 300 },
            Response::Error("bad frame: unknown opcode 0x99".into()),
        ];
        let mut wire = Vec::new();
        for r in &resps {
            r.encode(&mut wire);
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        for r in &resps {
            assert_eq!(dec.next_response().unwrap().as_ref(), Some(r));
        }
        assert_eq!(dec.next_response().unwrap(), None);
    }

    #[test]
    fn split_frames_reassemble_byte_by_byte() {
        let mut wire = Vec::new();
        Request::Set { key: 9, value: 10 }.encode(&mut wire);
        Request::Get { key: 9 }.encode(&mut wire);
        let mut dec = FrameDecoder::new();
        let mut seen = Vec::new();
        for &b in &wire {
            dec.feed(&[b]);
            while let Some(r) = dec.next_request().unwrap() {
                seen.push(r);
            }
        }
        assert_eq!(
            seen,
            vec![Request::Set { key: 9, value: 10 }, Request::Get { key: 9 }]
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            dec.next_request(),
            Err(ProtoError::FrameTooLarge(_))
        ));
        // Poisoned: more bytes don't resurrect it.
        let mut ok = Vec::new();
        Request::Get { key: 1 }.encode(&mut ok);
        dec.feed(&ok);
        assert!(dec.next_request().is_err());
    }

    #[test]
    fn structural_garbage_is_rejected() {
        // Unknown opcode.
        let mut dec = FrameDecoder::new();
        dec.feed(&3u32.to_le_bytes());
        dec.feed(&[0x77, 0, 0]);
        assert_eq!(dec.next_request(), Err(ProtoError::BadOpcode(0x77)));

        // Truncated body.
        let mut dec = FrameDecoder::new();
        dec.feed(&5u32.to_le_bytes());
        dec.feed(&[op::GET, 1, 2, 3, 4]);
        assert_eq!(dec.next_request(), Err(ProtoError::Truncated));

        // Trailing bytes.
        let mut dec = FrameDecoder::new();
        dec.feed(&10u32.to_le_bytes());
        dec.feed(&[op::GET, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(dec.next_request(), Err(ProtoError::TrailingBytes));

        // Empty payload.
        let mut dec = FrameDecoder::new();
        dec.feed(&0u32.to_le_bytes());
        assert_eq!(dec.next_request(), Err(ProtoError::EmptyFrame));

        // MGET count that disagrees with the body.
        let mut dec = FrameDecoder::new();
        dec.feed(&5u32.to_le_bytes());
        dec.feed(&[op::MGET, 2, 0, 0, 0]);
        assert_eq!(dec.next_request(), Err(ProtoError::Truncated));

        // SCAN asking for more than MAX_SCAN entries.
        let mut dec = FrameDecoder::new();
        dec.feed(&13u32.to_le_bytes());
        dec.feed(&[op::SCAN]);
        dec.feed(&0u64.to_le_bytes());
        dec.feed(&(MAX_SCAN + 1).to_le_bytes());
        assert_eq!(dec.next_request(), Err(ProtoError::BadCount(MAX_SCAN + 1)));

        // Truncated SCAN body (count field cut short).
        let mut dec = FrameDecoder::new();
        dec.feed(&9u32.to_le_bytes());
        dec.feed(&[op::SCAN]);
        dec.feed(&0u64.to_le_bytes());
        assert_eq!(dec.next_request(), Err(ProtoError::Truncated));

        // Reserved CAS with a short body is still structurally checked.
        let mut dec = FrameDecoder::new();
        dec.feed(&17u32.to_le_bytes());
        dec.feed(&[op::CAS]);
        dec.feed(&1u64.to_le_bytes());
        dec.feed(&2u64.to_le_bytes());
        assert_eq!(dec.next_request(), Err(ProtoError::Truncated));

        // SCAN_PART claiming more entries than the frame bound allows.
        let mut dec = FrameDecoder::new();
        dec.feed(&5u32.to_le_bytes());
        dec.feed(&[resp::SCAN_PART]);
        dec.feed(&(SCAN_PART_MAX as u32 + 1).to_le_bytes());
        assert_eq!(
            dec.next_response(),
            Err(ProtoError::BadCount(SCAN_PART_MAX as u32 + 1))
        );
    }

    #[test]
    fn compaction_keeps_long_streams_bounded() {
        let mut dec = FrameDecoder::new();
        let mut wire = Vec::new();
        Request::Get { key: 3 }.encode(&mut wire);
        for _ in 0..10_000 {
            dec.feed(&wire);
            assert_eq!(dec.next_request().unwrap(), Some(Request::Get { key: 3 }));
        }
        assert!(
            dec.buf.len() < 64 * 1024,
            "decoder buffer grew to {} bytes over a long stream",
            dec.buf.len()
        );
    }
}
