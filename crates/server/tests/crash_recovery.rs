//! Kill-during-load crash recovery: the durable-prefix property, end to
//! end, against a real subprocess server.
//!
//! A client floods SETs at a wal-mounted server (`--fsync group`). At a
//! seeded random ack count the server process is SIGKILLed mid-load; a
//! second server then recovers the same wal directory and must satisfy:
//!
//! * **Every acked write survives.** Acks are FIFO per connection, so
//!   the number of responses the client fully received is the length of
//!   the acked prefix — each of those keys must be present with its
//!   exact value after recovery.
//! * **No phantoms.** A full scan of the recovered keyspace may contain
//!   only keys the client actually sent (acked or in-flight — an
//!   unacked write may legally survive), each with the value the client
//!   wrote. Nothing else.
//!
//! Trials are seed-replayable: `OPTIQL_CRASH_SEEDS=7,8,9` (comma
//! separated) overrides the default seed list, and every assertion
//! message carries the seed. The clean-SHUTDOWN control runs the same
//! flow without the kill and requires *everything* back.
//!
//! SIGKILL does not drop the OS page cache, so this test proves the
//! ack/recovery protocol (fsync-before-ack ordering, torn-frame
//! truncation, replay); the torn-tail proptests in `optiql-wal` cover
//! physical corruption below the OS.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use optiql_server::proto::{FrameDecoder, Request, Response};

/// Keys are offset away from anything a preload could produce.
const BASE: u64 = 1 << 32;
/// SETs the load phase attempts per trial.
const LOAD: u64 = 20_000;

fn value_of(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A spawned `optiql-server` with its parsed listen address.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawn the real binary on a fresh port over `wal_dir` and wait
    /// for its banner.
    fn spawn(wal_dir: &std::path::Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_optiql-server"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--backend",
                "sharded-btree",
                "--shards",
                "4",
                "--workers",
                "1",
                "--fsync",
                "group",
                "--wal-dir",
            ])
            .arg(wal_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn optiql-server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before banner")
                .expect("read server stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.trim().parse().expect("parse listen addr");
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Server { child, addr }
    }

    fn kill(&mut self) {
        // std's kill is SIGKILL on unix: no handlers, no flushes.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill();
    }
}

struct Client {
    s: TcpStream,
    dec: FrameDecoder,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_nodelay(true).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        Client {
            s,
            dec: FrameDecoder::new(),
        }
    }

    fn send(&mut self, reqs: &[Request]) {
        let mut wire = Vec::new();
        for r in reqs {
            r.encode(&mut wire);
        }
        self.s.write_all(&wire).expect("write");
    }

    fn recv(&mut self) -> Option<Response> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(r) = self.dec.next_response().expect("well-formed response") {
                return Some(r);
            }
            let n = self.s.read(&mut buf).expect("read");
            if n == 0 {
                return None;
            }
            self.dec.feed(&buf[..n]);
        }
    }

    fn call(&mut self, req: Request) -> Response {
        self.send(std::slice::from_ref(&req));
        self.recv().expect("response before EOF")
    }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("optiql-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Flood `LOAD` pipelined SETs; count FIFO acks. When `kill_at` is
/// reached, SIGKILL the server. Returns (acked, sent).
fn load_until(server: &mut Server, kill_at: Option<u64>) -> (u64, u64) {
    let sent = Arc::new(AtomicU64::new(0));
    let mut rx = Client::connect(server.addr);
    let tx = rx.s.try_clone().expect("clone stream");
    let sender = {
        let sent = Arc::clone(&sent);
        std::thread::spawn(move || {
            let mut tx = tx;
            let mut wire = Vec::with_capacity(64 * 1024);
            for chunk_base in (0..LOAD).step_by(256) {
                wire.clear();
                let n = 256.min(LOAD - chunk_base);
                for i in chunk_base..chunk_base + n {
                    Request::Set {
                        key: BASE + i,
                        value: value_of(i),
                    }
                    .encode(&mut wire);
                }
                // A kill mid-load surfaces here as a broken pipe; the
                // count of fully sent SETs is what the phantom check
                // bounds against, so stop counting on error.
                if tx.write_all(&wire).is_err() {
                    return;
                }
                sent.fetch_add(n, Ordering::Release);
            }
        })
    };

    let mut acked = 0u64;
    let mut buf = [0u8; 16 * 1024];
    'recv: loop {
        while let Ok(Some(resp)) = rx.dec.next_response() {
            match resp {
                Response::Old(_) => acked += 1,
                other => panic!("unexpected response during load: {other:?}"),
            }
            if acked == LOAD {
                break 'recv;
            }
            if let Some(at) = kill_at {
                if acked >= at {
                    server.kill();
                    break 'recv;
                }
            }
        }
        match rx.s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => rx.dec.feed(&buf[..n]),
        }
    }
    // Drain whatever acks were already in flight when we decided to
    // stop: each is a response the server released post-fsync.
    if kill_at.is_some() {
        while let Ok(Some(Response::Old(_))) = rx.dec.next_response() {
            acked += 1;
        }
        while acked < LOAD {
            match rx.s.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    rx.dec.feed(&buf[..n]);
                    while let Ok(Some(Response::Old(_))) = rx.dec.next_response() {
                        acked += 1;
                    }
                }
            }
        }
    }
    sender.join().expect("sender thread");
    (acked, sent.load(Ordering::Acquire))
}

/// Assert the recovered server satisfies the durable-prefix property
/// for a trial that acked `acked` of `sent` sequential SETs.
fn verify_recovered(addr: SocketAddr, acked: u64, sent: u64, seed: u64) {
    let mut c = Client::connect(addr);

    // 1. Every acked write is present with its exact value.
    for chunk_base in (0..acked).step_by(512) {
        let n = 512.min(acked - chunk_base);
        let keys: Vec<u64> = (chunk_base..chunk_base + n).map(|i| BASE + i).collect();
        match c.call(Request::MGet { keys }) {
            Response::MValues(vs) => {
                for (j, v) in vs.into_iter().enumerate() {
                    let i = chunk_base + j as u64;
                    assert_eq!(
                        v,
                        Some(value_of(i)),
                        "seed {seed:#x}: acked key {i} lost or corrupt after recovery \
                         (acked={acked}, sent={sent})"
                    );
                }
            }
            other => panic!("seed {seed:#x}: MGET answered {other:?}"),
        }
    }

    // 2. No phantoms: everything in the recovered keyspace was sent,
    // with the value the client wrote.
    c.send(&[Request::Scan {
        start: BASE,
        count: (LOAD + 16) as u32,
    }]);
    let mut found = 0u64;
    loop {
        match c.recv().expect("scan response") {
            Response::ScanPart(part) => {
                for (k, v) in part {
                    let i = k.checked_sub(BASE).unwrap_or_else(|| {
                        panic!("seed {seed:#x}: phantom key {k} below keyspace")
                    });
                    assert!(
                        i < sent,
                        "seed {seed:#x}: phantom key {i} was never sent (sent={sent})"
                    );
                    assert_eq!(
                        v,
                        value_of(i),
                        "seed {seed:#x}: key {i} has a value the client never wrote"
                    );
                    found += 1;
                }
            }
            Response::ScanEnd { total } => {
                assert_eq!(u64::from(total), found, "seed {seed:#x}: scan miscount");
                break;
            }
            other => panic!("seed {seed:#x}: scan answered {other:?}"),
        }
    }
    assert!(
        found >= acked,
        "seed {seed:#x}: recovered {found} keys < {acked} acked"
    );
}

fn shutdown(addr: SocketAddr) {
    let mut c = Client::connect(addr);
    match c.call(Request::Shutdown) {
        Response::Ok => {}
        other => panic!("shutdown answered {other:?}"),
    }
}

fn trial_seeds() -> Vec<u64> {
    match std::env::var("OPTIQL_CRASH_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse().expect("OPTIQL_CRASH_SEEDS: bad seed"))
            .collect(),
        Err(_) => vec![0xC0FFEE],
    }
}

#[test]
fn sigkill_mid_load_preserves_the_acked_prefix() {
    for seed in trial_seeds() {
        let dir = tempdir(&format!("kill-{seed:x}"));
        let mut rng = seed;
        // Crash somewhere in the middle half of the load.
        let kill_at = LOAD / 4 + splitmix(&mut rng) % (LOAD / 2);

        let mut victim = Server::spawn(&dir);
        let (acked, sent) = load_until(&mut victim, Some(kill_at));
        victim.kill();
        assert!(
            acked >= kill_at,
            "seed {seed:#x}: load ended early ({acked} acks, wanted {kill_at})"
        );
        assert!(acked <= sent, "seed {seed:#x}: acks outran sends");

        let survivor = Server::spawn(&dir);
        verify_recovered(survivor.addr, acked, sent, seed);
        shutdown(survivor.addr);
        drop(survivor);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn clean_shutdown_preserves_everything() {
    let seed = 0x5D0_0D1E;
    let dir = tempdir("clean");

    let mut first = Server::spawn(&dir);
    let (acked, sent) = load_until(&mut first, None);
    assert_eq!(acked, LOAD, "clean run must ack every SET");
    assert_eq!(sent, LOAD);
    shutdown(first.addr);
    let status = first.child.wait().expect("wait server");
    assert!(status.success(), "clean shutdown must exit 0: {status:?}");

    let survivor = Server::spawn(&dir);
    verify_recovered(survivor.addr, LOAD, LOAD, seed);
    shutdown(survivor.addr);
    drop(survivor);
    let _ = std::fs::remove_dir_all(&dir);
}
