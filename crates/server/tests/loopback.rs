//! Loopback integration tests: a real server on 127.0.0.1, real TCP
//! clients, every opcode, both dispatch modes — and the robustness
//! contract: a client that sends garbage gets an ERR frame and loses its
//! connection, while every other connection (and the worker itself)
//! keeps running.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use optiql_server::proto::{FrameDecoder, Request, Response};
use optiql_server::server::{start, BackendKind, Dispatch, ServerConfig, ServerHandle};

/// Minimal synchronous test client (the harness's richer `Client` lives
/// above this crate in the dependency graph, so the tests carry their
/// own ten-liner).
struct C {
    s: TcpStream,
    dec: FrameDecoder,
}

impl C {
    fn connect(addr: SocketAddr) -> C {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_nodelay(true).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        C {
            s,
            dec: FrameDecoder::new(),
        }
    }

    fn send(&mut self, reqs: &[Request]) {
        let mut wire = Vec::new();
        for r in reqs {
            r.encode(&mut wire);
        }
        self.s.write_all(&wire).expect("write");
    }

    /// Next response; `None` on clean EOF.
    fn recv(&mut self) -> Option<Response> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(r) = self.dec.next_response().expect("well-formed response") {
                return Some(r);
            }
            let n = self.s.read(&mut buf).expect("read");
            if n == 0 {
                return None;
            }
            self.dec.feed(&buf[..n]);
        }
    }

    fn call(&mut self, req: Request) -> Response {
        self.send(std::slice::from_ref(&req));
        self.recv().expect("response before EOF")
    }
}

fn serve(backend: BackendKind, dispatch: Dispatch, preload: u64) -> ServerHandle {
    start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        backend,
        workers: 1,
        dispatch,
        preload,
        max_group: 64,
        ..ServerConfig::default()
    })
    .expect("server start")
}

/// Scripted pass over every opcode against a preloaded server
/// (preload: key k → k + 1 for k in 0..n).
fn exercise_all_ops(addr: SocketAddr, preload: u64) {
    let mut c = C::connect(addr);
    assert_eq!(c.call(Request::Get { key: 3 }), Response::Value(Some(4)));
    assert_eq!(
        c.call(Request::Get { key: preload + 9 }),
        Response::Value(None)
    );
    assert_eq!(
        c.call(Request::Set {
            key: preload + 9,
            value: 77
        }),
        Response::Old(None)
    );
    assert_eq!(
        c.call(Request::Set {
            key: preload + 9,
            value: 78
        }),
        Response::Old(Some(77))
    );
    assert_eq!(
        c.call(Request::MGet {
            keys: vec![0, preload + 9, preload + 100, 1]
        }),
        Response::MValues(vec![Some(1), Some(78), None, Some(2)])
    );
    assert_eq!(
        c.call(Request::ScanCount { start: 0, limit: 5 }),
        Response::Count(5)
    );
    assert_eq!(
        c.call(Request::Del { key: preload + 9 }),
        Response::Old(Some(78))
    );
    assert_eq!(
        c.call(Request::Get { key: preload + 9 }),
        Response::Value(None)
    );
}

#[test]
fn every_opcode_round_trips_grouped() {
    let h = serve(BackendKind::Btree, Dispatch::Grouped, 1000);
    exercise_all_ops(h.addr(), 1000);
    let stats = h.shutdown();
    assert!(stats.requests >= 8);
    assert_eq!(stats.proto_errors, 0);
}

#[test]
fn every_opcode_round_trips_per_op_and_sharded() {
    let h = serve(
        BackendKind::ShardedBtree { shards: 2 },
        Dispatch::PerOp,
        1000,
    );
    exercise_all_ops(h.addr(), 1000);
    let stats = h.shutdown();
    assert_eq!(stats.batched_ops, 0, "per-op mode must never batch");
}

#[test]
fn pipelined_burst_is_answered_in_order_and_batched() {
    let n: u64 = 256;
    let h = serve(BackendKind::Btree, Dispatch::Grouped, n);
    let mut c = C::connect(h.addr());

    // One write carrying a deep pipeline of GETs: the server drains the
    // burst, routes it through multi_lookup, and answers in arrival
    // order.
    let reqs: Vec<Request> = (0..n).map(|key| Request::Get { key }).collect();
    c.send(&reqs);
    for key in 0..n {
        assert_eq!(c.recv(), Some(Response::Value(Some(key + 1))));
    }

    // Mixed burst: SET run, GET run, MGET — still positional.
    let mut mixed = vec![
        Request::Set { key: 1, value: 100 },
        Request::Set { key: 2, value: 200 },
        Request::Set { key: 3, value: 300 },
    ];
    mixed.extend((1..4).map(|key| Request::Get { key }));
    mixed.push(Request::MGet {
        keys: vec![3, 2, 1],
    });
    c.send(&mixed);
    assert_eq!(c.recv(), Some(Response::Old(Some(2))));
    assert_eq!(c.recv(), Some(Response::Old(Some(3))));
    assert_eq!(c.recv(), Some(Response::Old(Some(4))));
    assert_eq!(c.recv(), Some(Response::Value(Some(100))));
    assert_eq!(c.recv(), Some(Response::Value(Some(200))));
    assert_eq!(c.recv(), Some(Response::Value(Some(300))));
    assert_eq!(
        c.recv(),
        Some(Response::MValues(vec![Some(300), Some(200), Some(100)]))
    );

    let stats = h.shutdown();
    assert!(
        stats.batched_ops > 0,
        "grouped dispatch never used the batch engines: {stats:?}"
    );
    assert!(stats.groups > 0);
}

#[test]
fn garbage_bytes_close_only_that_connection() {
    let h = serve(BackendKind::Btree, Dispatch::Grouped, 100);

    // A healthy connection, opened first and kept alive throughout.
    let mut good = C::connect(h.addr());
    assert_eq!(good.call(Request::Get { key: 1 }), Response::Value(Some(2)));

    // A hostile connection: structural garbage (valid length prefix,
    // unknown opcode). The server must answer ERR, then close.
    let mut bad = C::connect(h.addr());
    bad.s.write_all(&3u32.to_le_bytes()).unwrap();
    bad.s.write_all(&[0x99, 0xAA, 0xBB]).unwrap();
    match bad.recv() {
        Some(Response::Error(msg)) => assert!(msg.contains("opcode"), "got: {msg}"),
        other => panic!("expected ERR frame, got {other:?}"),
    }
    assert_eq!(bad.recv(), None, "connection must close after ERR");

    // A second hostile connection: an oversized length prefix.
    let mut huge = C::connect(h.addr());
    huge.s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    match huge.recv() {
        Some(Response::Error(_)) => {}
        other => panic!("expected ERR frame, got {other:?}"),
    }
    assert_eq!(huge.recv(), None);

    // The worker survived: the old connection still answers, and so
    // does a brand-new one.
    assert_eq!(good.call(Request::Get { key: 2 }), Response::Value(Some(3)));
    let mut fresh = C::connect(h.addr());
    assert_eq!(
        fresh.call(Request::Get { key: 3 }),
        Response::Value(Some(4))
    );

    let stats = h.shutdown();
    assert_eq!(stats.proto_errors, 2);
}

/// Drain one whole SCAN reply: parts until SCAN_END, asserting every
/// part respects the frame bound and keys ascend across the stream.
fn recv_scan(c: &mut C) -> (Vec<(u64, u64)>, u32) {
    let mut entries: Vec<(u64, u64)> = Vec::new();
    loop {
        match c.recv().expect("scan stream ended early") {
            Response::ScanPart(part) => {
                assert!(
                    part.len() <= optiql_server::proto::SCAN_PART_MAX,
                    "oversized part: {}",
                    part.len()
                );
                assert!(!part.is_empty(), "server must not emit empty parts");
                entries.extend(part);
            }
            Response::ScanEnd { total } => {
                for w in entries.windows(2) {
                    assert!(w[0].0 < w[1].0, "scan stream must ascend");
                }
                return (entries, total);
            }
            other => panic!("expected SCAN_PART/SCAN_END, got {other:?}"),
        }
    }
}

#[test]
fn scan_streams_bounded_frames_in_order() {
    let n: u64 = 1000;
    for backend in [BackendKind::Art, BackendKind::ShardedBtree { shards: 2 }] {
        let h = serve(backend, Dispatch::Grouped, n);
        let mut c = C::connect(h.addr());

        // 300 entries => parts of 128 + 128 + 44, then SCAN_END(300).
        c.send(&[Request::Scan {
            start: 5,
            count: 300,
        }]);
        let (entries, total) = recv_scan(&mut c);
        assert_eq!(total, 300);
        let want: Vec<(u64, u64)> = (5..305).map(|k| (k, k + 1)).collect();
        assert_eq!(entries, want);

        // Starting past the preload: empty stream, just the terminator.
        c.send(&[Request::Scan {
            start: n + 50,
            count: 10,
        }]);
        let (entries, total) = recv_scan(&mut c);
        assert_eq!((entries.len(), total), (0, 0));

        // count 0: also just the terminator.
        c.send(&[Request::Scan { start: 0, count: 0 }]);
        assert_eq!((recv_scan(&mut c).1), 0);

        // Asking past the end caps at what exists.
        c.send(&[Request::Scan {
            start: n - 3,
            count: 500,
        }]);
        let (entries, total) = recv_scan(&mut c);
        assert_eq!(total, 3);
        assert_eq!(entries, vec![(n - 3, n - 2), (n - 2, n - 1), (n - 1, n)]);

        // Pipelined with point ops: replies stay in request order, the
        // scan's parts contiguous between them.
        c.send(&[
            Request::Get { key: 1 },
            Request::Scan {
                start: 0,
                count: 130,
            },
            Request::Get { key: 2 },
        ]);
        assert_eq!(c.recv(), Some(Response::Value(Some(2))));
        let (entries, total) = recv_scan(&mut c);
        assert_eq!(total, 130);
        assert_eq!(entries.len(), 130);
        assert_eq!(c.recv(), Some(Response::Value(Some(3))));

        let stats = h.shutdown();
        assert_eq!(stats.proto_errors, 0);
    }
}

#[test]
fn reserved_opcodes_reject_without_closing() {
    let h = serve(BackendKind::Btree, Dispatch::Grouped, 10);
    let mut c = C::connect(h.addr());
    for (req, name) in [
        (
            Request::Cas {
                key: 1,
                expected: 2,
                new: 3,
            },
            "CAS",
        ),
        (Request::Incr { key: 1, delta: 1 }, "INCR"),
        (
            Request::Ttl {
                key: 1,
                ttl_ms: 1000,
            },
            "TTL",
        ),
    ] {
        match c.call(req) {
            Response::Error(msg) => {
                assert!(msg.contains(name) && msg.contains("reserved"), "got: {msg}");
            }
            other => panic!("expected ERR for {name}, got {other:?}"),
        }
        // Same connection keeps serving after each rejection.
        assert_eq!(c.call(Request::Get { key: 1 }), Response::Value(Some(2)));
    }
    let stats = h.shutdown();
    assert_eq!(
        stats.proto_errors, 0,
        "reserved opcodes are not protocol errors"
    );
}

#[test]
fn malformed_scan_closes_only_that_connection() {
    let h = serve(BackendKind::Btree, Dispatch::Grouped, 100);
    let mut good = C::connect(h.addr());
    assert_eq!(good.call(Request::Get { key: 1 }), Response::Value(Some(2)));

    // A SCAN frame whose count exceeds MAX_SCAN: structurally invalid,
    // so this connection gets ERR-then-close.
    let mut bad = C::connect(h.addr());
    bad.s.write_all(&13u32.to_le_bytes()).unwrap();
    bad.s.write_all(&[0x07]).unwrap();
    bad.s.write_all(&0u64.to_le_bytes()).unwrap();
    bad.s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    match bad.recv() {
        Some(Response::Error(msg)) => assert!(msg.contains("count"), "got: {msg}"),
        other => panic!("expected ERR frame, got {other:?}"),
    }
    assert_eq!(bad.recv(), None, "connection must close after ERR");

    // Everyone else is unaffected.
    assert_eq!(good.call(Request::Get { key: 2 }), Response::Value(Some(3)));
    let stats = h.shutdown();
    assert_eq!(stats.proto_errors, 1);
}

#[test]
fn shutdown_opcode_acks_and_stops_the_server() {
    let h = serve(BackendKind::Art, Dispatch::Grouped, 10);
    let mut c = C::connect(h.addr());
    assert_eq!(c.call(Request::Shutdown), Response::Ok);
    // join() returns because the SHUTDOWN raised the stop flag.
    let stats = h.join();
    assert!(stats.requests >= 1);
}
