//! Loopback integration tests: a real server on 127.0.0.1, real TCP
//! clients, every opcode, both dispatch modes — and the robustness
//! contract: a client that sends garbage gets an ERR frame and loses its
//! connection, while every other connection (and the worker itself)
//! keeps running.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use optiql_server::proto::{FrameDecoder, Request, Response};
use optiql_server::server::{start, BackendKind, Dispatch, ServerConfig, ServerHandle};

/// Minimal synchronous test client (the harness's richer `Client` lives
/// above this crate in the dependency graph, so the tests carry their
/// own ten-liner).
struct C {
    s: TcpStream,
    dec: FrameDecoder,
}

impl C {
    fn connect(addr: SocketAddr) -> C {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_nodelay(true).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        C {
            s,
            dec: FrameDecoder::new(),
        }
    }

    fn send(&mut self, reqs: &[Request]) {
        let mut wire = Vec::new();
        for r in reqs {
            r.encode(&mut wire);
        }
        self.s.write_all(&wire).expect("write");
    }

    /// Next response; `None` on clean EOF.
    fn recv(&mut self) -> Option<Response> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(r) = self.dec.next_response().expect("well-formed response") {
                return Some(r);
            }
            let n = self.s.read(&mut buf).expect("read");
            if n == 0 {
                return None;
            }
            self.dec.feed(&buf[..n]);
        }
    }

    fn call(&mut self, req: Request) -> Response {
        self.send(std::slice::from_ref(&req));
        self.recv().expect("response before EOF")
    }
}

fn serve(backend: BackendKind, dispatch: Dispatch, preload: u64) -> ServerHandle {
    start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        backend,
        workers: 1,
        dispatch,
        preload,
        max_group: 64,
    })
    .expect("server start")
}

/// Scripted pass over every opcode against a preloaded server
/// (preload: key k → k + 1 for k in 0..n).
fn exercise_all_ops(addr: SocketAddr, preload: u64) {
    let mut c = C::connect(addr);
    assert_eq!(c.call(Request::Get { key: 3 }), Response::Value(Some(4)));
    assert_eq!(
        c.call(Request::Get { key: preload + 9 }),
        Response::Value(None)
    );
    assert_eq!(
        c.call(Request::Set {
            key: preload + 9,
            value: 77
        }),
        Response::Old(None)
    );
    assert_eq!(
        c.call(Request::Set {
            key: preload + 9,
            value: 78
        }),
        Response::Old(Some(77))
    );
    assert_eq!(
        c.call(Request::MGet {
            keys: vec![0, preload + 9, preload + 100, 1]
        }),
        Response::MValues(vec![Some(1), Some(78), None, Some(2)])
    );
    assert_eq!(
        c.call(Request::ScanCount { start: 0, limit: 5 }),
        Response::Count(5)
    );
    assert_eq!(
        c.call(Request::Del { key: preload + 9 }),
        Response::Old(Some(78))
    );
    assert_eq!(
        c.call(Request::Get { key: preload + 9 }),
        Response::Value(None)
    );
}

#[test]
fn every_opcode_round_trips_grouped() {
    let h = serve(BackendKind::Btree, Dispatch::Grouped, 1000);
    exercise_all_ops(h.addr(), 1000);
    let stats = h.shutdown();
    assert!(stats.requests >= 8);
    assert_eq!(stats.proto_errors, 0);
}

#[test]
fn every_opcode_round_trips_per_op_and_sharded() {
    let h = serve(
        BackendKind::ShardedBtree { shards: 2 },
        Dispatch::PerOp,
        1000,
    );
    exercise_all_ops(h.addr(), 1000);
    let stats = h.shutdown();
    assert_eq!(stats.batched_ops, 0, "per-op mode must never batch");
}

#[test]
fn pipelined_burst_is_answered_in_order_and_batched() {
    let n: u64 = 256;
    let h = serve(BackendKind::Btree, Dispatch::Grouped, n);
    let mut c = C::connect(h.addr());

    // One write carrying a deep pipeline of GETs: the server drains the
    // burst, routes it through multi_lookup, and answers in arrival
    // order.
    let reqs: Vec<Request> = (0..n).map(|key| Request::Get { key }).collect();
    c.send(&reqs);
    for key in 0..n {
        assert_eq!(c.recv(), Some(Response::Value(Some(key + 1))));
    }

    // Mixed burst: SET run, GET run, MGET — still positional.
    let mut mixed = vec![
        Request::Set { key: 1, value: 100 },
        Request::Set { key: 2, value: 200 },
        Request::Set { key: 3, value: 300 },
    ];
    mixed.extend((1..4).map(|key| Request::Get { key }));
    mixed.push(Request::MGet {
        keys: vec![3, 2, 1],
    });
    c.send(&mixed);
    assert_eq!(c.recv(), Some(Response::Old(Some(2))));
    assert_eq!(c.recv(), Some(Response::Old(Some(3))));
    assert_eq!(c.recv(), Some(Response::Old(Some(4))));
    assert_eq!(c.recv(), Some(Response::Value(Some(100))));
    assert_eq!(c.recv(), Some(Response::Value(Some(200))));
    assert_eq!(c.recv(), Some(Response::Value(Some(300))));
    assert_eq!(
        c.recv(),
        Some(Response::MValues(vec![Some(300), Some(200), Some(100)]))
    );

    let stats = h.shutdown();
    assert!(
        stats.batched_ops > 0,
        "grouped dispatch never used the batch engines: {stats:?}"
    );
    assert!(stats.groups > 0);
}

#[test]
fn garbage_bytes_close_only_that_connection() {
    let h = serve(BackendKind::Btree, Dispatch::Grouped, 100);

    // A healthy connection, opened first and kept alive throughout.
    let mut good = C::connect(h.addr());
    assert_eq!(good.call(Request::Get { key: 1 }), Response::Value(Some(2)));

    // A hostile connection: structural garbage (valid length prefix,
    // unknown opcode). The server must answer ERR, then close.
    let mut bad = C::connect(h.addr());
    bad.s.write_all(&3u32.to_le_bytes()).unwrap();
    bad.s.write_all(&[0x99, 0xAA, 0xBB]).unwrap();
    match bad.recv() {
        Some(Response::Error(msg)) => assert!(msg.contains("opcode"), "got: {msg}"),
        other => panic!("expected ERR frame, got {other:?}"),
    }
    assert_eq!(bad.recv(), None, "connection must close after ERR");

    // A second hostile connection: an oversized length prefix.
    let mut huge = C::connect(h.addr());
    huge.s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    match huge.recv() {
        Some(Response::Error(_)) => {}
        other => panic!("expected ERR frame, got {other:?}"),
    }
    assert_eq!(huge.recv(), None);

    // The worker survived: the old connection still answers, and so
    // does a brand-new one.
    assert_eq!(good.call(Request::Get { key: 2 }), Response::Value(Some(3)));
    let mut fresh = C::connect(h.addr());
    assert_eq!(
        fresh.call(Request::Get { key: 3 }),
        Response::Value(Some(4))
    );

    let stats = h.shutdown();
    assert_eq!(stats.proto_errors, 2);
}

#[test]
fn shutdown_opcode_acks_and_stops_the_server() {
    let h = serve(BackendKind::Art, Dispatch::Grouped, 10);
    let mut c = C::connect(h.addr());
    assert_eq!(c.call(Request::Shutdown), Response::Ok);
    // join() returns because the SHUTDOWN raised the stop flag.
    let stats = h.join();
    assert!(stats.requests >= 1);
}
