//! Property tests for the wire codec: any sequence of frames, encoded
//! and then fed to the [`FrameDecoder`] in arbitrary chunkings (whole
//! stream, byte-by-byte, random splits), decodes back to exactly the
//! frames that went in. The decoder is the piece both the server and
//! the load generator trust; this suite is why they can.

use optiql_server::proto::{
    FrameDecoder, ProtoError, Request, Response, MAX_FRAME, MAX_SCAN, SCAN_PART_MAX,
};
use proptest::prelude::*;

fn any_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u64>().prop_map(|key| Request::Get { key }),
        (any::<u64>(), any::<u64>()).prop_map(|(key, value)| Request::Set { key, value }),
        any::<u64>().prop_map(|key| Request::Del { key }),
        prop::collection::vec(any::<u64>(), 0..40).prop_map(|keys| Request::MGet { keys }),
        (any::<u64>(), any::<u32>()).prop_map(|(start, limit)| Request::ScanCount { start, limit }),
        Just(Request::Shutdown),
        (any::<u64>(), 0..=MAX_SCAN).prop_map(|(start, count)| Request::Scan { start, count }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(key, expected, new)| Request::Cas {
            key,
            expected,
            new
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(key, delta)| Request::Incr { key, delta }),
        (any::<u64>(), any::<u64>()).prop_map(|(key, ttl_ms)| Request::Ttl { key, ttl_ms }),
    ]
}

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), any::<u64>().prop_map(Some),]
}

fn any_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        opt_u64().prop_map(Response::Value),
        opt_u64().prop_map(Response::Old),
        prop::collection::vec(opt_u64(), 0..40).prop_map(Response::MValues),
        any::<u64>().prop_map(Response::Count),
        Just(Response::Ok),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..SCAN_PART_MAX + 1)
            .prop_map(Response::ScanPart),
        any::<u32>().prop_map(|total| Response::ScanEnd { total }),
        // Messages exercise multi-byte UTF-8 and JSON-hostile characters.
        (0usize..4).prop_map(|i| {
            let msgs = ["", "bad frame", "péché → λ", "line\nbreak \"quoted\""];
            Response::Error(msgs[i].to_string())
        }),
    ]
}

/// Feed `wire` to a fresh decoder in chunks whose sizes cycle through
/// `chunks` (empty → one big chunk), draining typed frames after every
/// feed, and return everything decoded.
fn decode_chunked<T>(
    wire: &[u8],
    chunks: &[usize],
    mut next: impl FnMut(&mut FrameDecoder) -> Result<Option<T>, ProtoError>,
) -> Vec<T> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < wire.len() {
        let step = if chunks.is_empty() {
            wire.len()
        } else {
            chunks[i % chunks.len()].max(1)
        };
        i += 1;
        let end = (at + step).min(wire.len());
        dec.feed(&wire[at..end]);
        at = end;
        while let Some(frame) = next(&mut dec).expect("valid stream must decode") {
            out.push(frame);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn requests_round_trip_any_chunking(
        reqs in prop::collection::vec(any_request(), 1..24),
        chunks in prop::collection::vec(1usize..29, 0..12),
    ) {
        let mut wire = Vec::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        prop_assert!(wire.len() <= reqs.len() * MAX_FRAME);
        let got = decode_chunked(&wire, &chunks, FrameDecoder::next_request);
        prop_assert_eq!(got, reqs);
    }

    #[test]
    fn requests_round_trip_byte_by_byte(reqs in prop::collection::vec(any_request(), 1..12)) {
        let mut wire = Vec::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        let got = decode_chunked(&wire, &[1], FrameDecoder::next_request);
        prop_assert_eq!(got, reqs);
    }

    #[test]
    fn responses_round_trip_any_chunking(
        resps in prop::collection::vec(any_response(), 1..24),
        chunks in prop::collection::vec(1usize..29, 0..12),
    ) {
        let mut wire = Vec::new();
        for r in &resps {
            r.encode(&mut wire);
        }
        let got = decode_chunked(&wire, &chunks, FrameDecoder::next_response);
        prop_assert_eq!(got, resps);
    }

    #[test]
    fn responses_round_trip_byte_by_byte(resps in prop::collection::vec(any_response(), 1..12)) {
        let mut wire = Vec::new();
        for r in &resps {
            r.encode(&mut wire);
        }
        let got = decode_chunked(&wire, &[1], FrameDecoder::next_response);
        prop_assert_eq!(got, resps);
    }

    #[test]
    fn single_request_payload_round_trips(req in any_request()) {
        // Payload-level symmetry, independent of framing: encode, strip
        // the length prefix, decode.
        let mut wire = Vec::new();
        req.encode(&mut wire);
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(wire.len(), 4 + len);
        prop_assert_eq!(Request::decode(&wire[4..]), Ok(req));
    }

    #[test]
    fn garbage_never_panics_the_decoder(
        junk in prop::collection::vec(any::<u8>(), 0..257),
        chunks in prop::collection::vec(1usize..17, 0..8),
    ) {
        // Arbitrary bytes may decode (by coincidence), return Ok(None),
        // or error — but must never panic, and after the first error the
        // decoder must stay poisoned.
        let mut dec = FrameDecoder::new();
        let mut at = 0;
        let mut i = 0;
        let mut failed = false;
        while at < junk.len() {
            let step = if chunks.is_empty() {
                junk.len()
            } else {
                chunks[i % chunks.len()]
            };
            i += 1;
            let end = (at + step).min(junk.len());
            dec.feed(&junk[at..end]);
            at = end;
            loop {
                match dec.next_request() {
                    Ok(Some(_)) => prop_assert!(!failed, "frame decoded after poison"),
                    Ok(None) => break,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            prop_assert!(dec.next_request().is_err(), "poison must be sticky");
        }
    }
}
