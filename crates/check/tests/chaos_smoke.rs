//! Bounded chaos smoke: a representative slice of the full sweep that
//! runs on every `cargo test` (the full matrix is the binary's job; CI
//! runs it with more seeds in the chaos-smoke workflow job).

use optiql_check::{run_target, sweep, targets, CheckConfig, SweepEvent};

fn smoke_cfg() -> CheckConfig {
    CheckConfig {
        threads: 4,
        ops_per_thread: 400,
        key_space: 128,
        clustered: false,
        chaos: true,
    }
}

/// One target per family, two seeds each, checked in-process.
#[test]
fn representative_targets_linearize_under_chaos() {
    let picks = [
        "btree-optiql",
        "btree-mcs-rw",
        "art-optiql",
        "art-pthread",
        "optreg-optiql-aor",
        "lockreg-mcs",
        "sharded-btree-optiql",
        "batched-art-optiql",
    ];
    let all = targets();
    let selected: Vec<_> = all
        .into_iter()
        .filter(|t| picks.contains(&t.name))
        .collect();
    assert_eq!(selected.len(), picks.len(), "a pick went missing");

    let mut cells = 0;
    let failures = sweep(&selected, &[0, 1], &smoke_cfg(), |ev| {
        if let SweepEvent::Pass { report, .. } = ev {
            cells += 1;
            assert!(report.summary.events > 0, "recorder saw nothing");
        }
    });
    for f in &failures {
        eprintln!("{f}");
    }
    assert!(failures.is_empty(), "{} smoke cells failed", failures.len());
    assert_eq!(cells, picks.len() * 2);
}

/// The clustered key shape keeps ART prefix paths splitting and
/// collapsing; both trees must stay linearizable under it.
#[test]
fn clustered_keys_linearize_on_both_trees() {
    let cfg = CheckConfig {
        clustered: true,
        ..smoke_cfg()
    };
    let all = targets();
    for name in ["btree-optiql", "art-optiql", "art-optlock-backoff"] {
        let t = all.iter().find(|t| t.name == name).unwrap();
        for seed in [0, 1] {
            if let Err(f) = run_target(t, seed, &cfg) {
                panic!("{f}");
            }
        }
    }
}

/// The sharded-affine targets: workers pinned to their shard's core
/// (degrading to unpinned on single-core hosts) while the chaos layer
/// perturbs schedules — the bench driver's placement must not hide or
/// introduce linearizability violations, under both key shapes (uniform
/// dense, and the clustered radix-4 spread that keeps ART prefixes
/// churning).
#[test]
fn sharded_affine_targets_linearize_under_chaos() {
    let all = targets();
    for name in ["sharded-btree-affine", "sharded-art-affine"] {
        let t = all.iter().find(|t| t.name == name).unwrap();
        assert!(t.pin_workers, "{name} must request worker pinning");
        for clustered in [false, true] {
            let cfg = CheckConfig {
                clustered,
                ..smoke_cfg()
            };
            for seed in [0, 1] {
                if let Err(f) = run_target(t, seed, &cfg) {
                    panic!("clustered={clustered}: {f}");
                }
            }
        }
    }
}

/// Chaos off must also pass (the recorder alone perturbs very little,
/// so this doubles as a plain stress pass) and must leave the chaos
/// layer disabled for whoever runs next.
#[test]
fn sweep_without_chaos_is_clean() {
    let cfg = CheckConfig {
        chaos: false,
        ..smoke_cfg()
    };
    let all = targets();
    let t = all.iter().find(|t| t.name == "btree-optiql").unwrap();
    run_target(t, 3, &cfg).expect("chaos-off cell failed");
    assert!(!optiql_check::chaos::enabled());
}
