//! Pinned chaos seeds: regression cells that must keep their verdict.
//!
//! The PR 4 ART bug (missing parent re-validation after locking the
//! child during OLC coupling) is kept alive behind the
//! `bug-pr4-revert` feature as a permanent sensitivity check for this
//! harness:
//!
//! * on main (fix present), the pinned cell passes;
//! * with the fix backed out (`--features bug-pr4-revert`), the same
//!   sweep must detect the bug.
//!
//! Both run the `optiql-check` binary as a subprocess: the reverted bug
//! does not merely lose updates, it descends with a stale depth and can
//! corrupt the heap (SIGSEGV/SIGABRT observed) or wedge the tree — all
//! of which count as detection, and none of which should take the test
//! runner down with it.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The pinned cell: found by sweeping `--target art-opt --seeds 10` with
/// the fix reverted; seed 7 on `art-optlock-backoff` produced a lost
/// insert (`insert -> None` twice in a row with no remove between).
const PINNED: &[&str] = &[
    "--target",
    "art-optlock-backoff",
    "--seed",
    "7",
    "--threads",
    "8",
    "--ops",
    "1500",
    "--keys",
    "128",
    "--clustered",
    "--quiet",
];

fn run_checker(args: &[&str], timeout: Duration) -> Outcome {
    let mut child: Child = Command::new(env!("CARGO_BIN_EXE_optiql-check"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn optiql-check");
    let start = Instant::now();
    loop {
        match child.try_wait().expect("wait on optiql-check") {
            Some(status) if status.success() => return Outcome::Clean,
            Some(status) => return Outcome::Detected(format!("{status}")),
            None if start.elapsed() > timeout => {
                let _ = child.kill();
                let _ = child.wait();
                return Outcome::Detected("hung past timeout".into());
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

enum Outcome {
    /// Exit 0 within the timeout: every cell linearizable.
    Clean,
    /// Non-zero exit (violation, abort, segfault) or hang: the harness
    /// flagged the run.
    Detected(String),
}

/// On main the pinned cell — and the seeds around it — stay green.
#[cfg(not(feature = "bug-pr4-revert"))]
#[test]
fn pinned_pr4_cell_passes_with_fix_present() {
    match run_checker(PINNED, Duration::from_secs(120)) {
        Outcome::Clean => {}
        Outcome::Detected(how) => panic!(
            "pinned PR 4 cell failed with the fix present ({how}); \
             either the fix regressed or the harness grew a false positive"
        ),
    }
}

/// With the fix backed out, the harness must catch the bug. The exact
/// interleaving is schedule-dependent even under seeded chaos, so the
/// detection sweep covers the pinned seed's neighborhood (12 seeds
/// across the optimistic ART targets — locally this flags 2-5 cells
/// per run and never zero).
#[cfg(feature = "bug-pr4-revert")]
#[test]
fn checker_catches_pr4_bug_when_fix_reverted() {
    let sweep = [
        "--target",
        "art-opt",
        "--seeds",
        "12",
        "--threads",
        "8",
        "--ops",
        "1500",
        "--keys",
        "128",
        "--clustered",
        "--quiet",
    ];
    match run_checker(&sweep, Duration::from_secs(300)) {
        Outcome::Detected(_) => {}
        Outcome::Clean => panic!(
            "fix is reverted (bug-pr4-revert) but the chaos sweep found \
             nothing; the harness lost its sensitivity to the PR 4 bug"
        ),
    }
}
