//! `scan_count` under concurrent structural modification.
//!
//! Scans here are not serializable snapshots ("every returned pair
//! existed at some point during the scan"), but they still owe hard
//! bounds. With a *stable* key set that no writer ever touches and a
//! disjoint *volatile* set that writers continuously insert and remove
//! — every volatile flip forcing splits, collapses and merges through
//! the tiny-node trees — any `scan_count(start, limit)` must satisfy,
//! against a [`ModelIndex`] holding exactly the stable keys:
//!
//! * **lower**: at least `min(stable >= start, limit)` — stable keys can
//!   never be missed, because a key's position in key-order is fixed and
//!   both scans visit key ranges monotonically (B+-tree) or restart
//!   wholesale on validation failure (ART);
//! * **upper**: at most `min(stable + |volatile|, limit)` — nothing is
//!   ever double-counted and only those keys ever exist.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use optiql_index_api::model::ModelIndex;
use optiql_index_api::ConcurrentIndex;

/// Even keys in `0..2*STABLE` are stable; odd keys are volatile.
const STABLE: u64 = 60;
const VOLATILE: u64 = 60;
const SCAN_ROUNDS: usize = 400;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn scan_bounds_hold<I: ConcurrentIndex + Send + Sync + 'static>(index: I, label: &str) {
    optiql_check::chaos::configure(11);
    let index = Arc::new(index);
    let model = ModelIndex::new();
    for i in 0..STABLE {
        index.insert(2 * i, i);
        model.insert(2 * i, i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                optiql_check::chaos::register_thread(w + 1);
                let mut s = 0x1234_5678u64 ^ w;
                while !stop.load(Ordering::Relaxed) {
                    let r = splitmix(&mut s);
                    let k = 2 * (r % VOLATILE) + 1;
                    if r & (1 << 40) == 0 {
                        index.insert(k, r);
                    } else {
                        index.remove(k);
                    }
                }
            })
        })
        .collect();

    optiql_check::chaos::register_thread(0);
    let mut s = 0xFACEu64;
    for round in 0..SCAN_ROUNDS {
        let r = splitmix(&mut s);
        let start = r % (2 * STABLE + 2);
        let limit = if r & 1 == 0 {
            1000
        } else {
            1 + (r >> 8) as usize % 20
        };
        let got = index.scan_count(start, limit);
        let stable_ge = model.scan_count(start, usize::MAX);
        let lower = stable_ge.min(limit);
        let upper = (stable_ge + VOLATILE as usize).min(limit);
        assert!(
            got >= lower && got <= upper,
            "{label} round {round}: scan_count({start}, {limit}) = {got}, \
             expected within [{lower}, {upper}] (stable>={stable_ge})"
        );
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    optiql_check::chaos::disable();

    // Quiesced double-check: volatile churn stopped, so the scan must
    // count every stable key exactly (bounded only by live volatiles).
    let total = index.scan_count(0, usize::MAX);
    assert!(total >= STABLE as usize && total <= (STABLE + VOLATILE) as usize);
}

// Tiny nodes so the volatile churn splits and collapses constantly.
type TinyBTreeOptiQL = optiql_btree::BPlusTree<optiql::OptLock, optiql::OptiQL, 4, 4>;
type TinyBTreeMcsRw = optiql_btree::BPlusTree<optiql::McsRwLock, optiql::McsRwLock, 4, 4>;

#[test]
fn btree_optiql_scan_bounds_under_splits() {
    scan_bounds_hold(TinyBTreeOptiQL::new(), "btree-optiql");
}

#[test]
fn btree_pessimistic_scan_bounds_under_splits() {
    scan_bounds_hold(TinyBTreeMcsRw::new(), "btree-mcs-rw");
}

#[test]
fn art_optiql_scan_bounds_under_splits() {
    scan_bounds_hold(optiql_art::ArtTree::<optiql::OptiQL>::new(), "art-optiql");
}

#[test]
fn art_pessimistic_scan_bounds_under_splits() {
    scan_bounds_hold(
        optiql_art::ArtTree::<optiql::McsRwLock>::new(),
        "art-mcs-rw",
    );
}

/// Regression: the pessimistic ART scan used to take `r_lock` on every
/// visited node and never release it (harmless for optimistic locks,
/// which hold nothing — a leaked shared hold plus a leaked queue node
/// for MCS-RW/pthread). The very next writer then blocked forever. Run
/// scan-then-remove on a worker and require it to finish.
#[test]
fn pessimistic_art_scan_releases_its_locks() {
    fn scan_then_write<L: optiql::IndexLock>(name: &str) {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let t = optiql_art::ArtTree::<L>::new();
            for k in 0u64..128 {
                t.insert(k, k);
            }
            for k in 0u64..128 {
                t.scan_count(k, 8);
            }
            for k in 0u64..128 {
                t.remove(k);
            }
            let _ = tx.send(t.len());
        });
        match rx.recv_timeout(std::time::Duration::from_secs(60)) {
            Ok(len) => assert_eq!(len, 0),
            Err(_) => panic!("{name}: writer blocked after scans — scan leaked a lock"),
        }
    }
    scan_then_write::<optiql::McsRwLock>("mcs-rw");
    scan_then_write::<optiql::PthreadRwLock>("pthread");
}
