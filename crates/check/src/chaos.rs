//! The chaos layer: seed-replayable schedule perturbation.
//!
//! Two cooperating pieces:
//!
//! * **Lock-layer injection** — `optiql` is built with its `chaos`
//!   feature here, so every `stats`-event site inside the locks and
//!   trees (acquire, handover, opportunistic-read admission, validation
//!   failure, OLC restart, AOR window close, batch pipeline round) calls
//!   [`optiql::chaos::perturb`]. That is where the known races lived;
//!   perturbing *there* stretches exactly the windows a preempting
//!   scheduler would have to hit by luck.
//! * **[`ChaosIndex`]** — an operation-level wrapper that jitters before
//!   and after each whole index call, shifting how worker threads'
//!   operation streams interleave (coarse-grained phase, vs. the
//!   fine-grained lock-layer phase).
//!
//! Both draw from the same per-thread SplitMix64 streams seeded from
//! `(run seed, worker slot)` via [`optiql::chaos`], so one `--seed`
//! value pins the entire perturbation schedule.

use std::ops::Bound;

use optiql_index_api::{ConcurrentIndex, IndexKey, IndexStats, RangeIter};

pub use optiql::chaos::{configure, disable, enabled, register_thread};

/// Operation-level chaos wrapper: jitters the calling thread before and
/// after every forwarded operation (when chaos is enabled — see
/// [`configure`]). Transparent otherwise. Key-generic: the jitter class
/// derives from the key's [`IndexKey::route_hint`], so byte-string runs
/// get the same seed-stable perturbation schedule as integer ones.
pub struct ChaosIndex<I> {
    inner: I,
}

impl<I> ChaosIndex<I> {
    /// Wrap `inner`.
    pub fn new(inner: I) -> Self {
        ChaosIndex { inner }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    #[inline]
    fn around<T>(&self, class: u64, f: impl FnOnce(&I) -> T) -> T {
        optiql::chaos::jitter(class);
        let out = f(&self.inner);
        optiql::chaos::jitter(class ^ 0x5555_5555_5555_5555);
        out
    }
}

#[inline]
fn bound_hint<K: IndexKey>(b: &Bound<K>) -> u64 {
    match b {
        Bound::Included(k) | Bound::Excluded(k) => k.route_hint(),
        Bound::Unbounded => 0,
    }
}

impl<K: IndexKey, I: ConcurrentIndex<K>> ConcurrentIndex<K> for ChaosIndex<I> {
    fn insert(&self, k: K, v: u64) -> Option<u64> {
        self.around(k.route_hint().wrapping_add(1), |i| i.insert(k, v))
    }
    fn update(&self, k: K, v: u64) -> Option<u64> {
        self.around(k.route_hint().wrapping_add(2), |i| i.update(k, v))
    }
    fn lookup(&self, k: K) -> Option<u64> {
        self.around(k.route_hint().wrapping_add(3), |i| i.lookup(k))
    }
    fn remove(&self, k: K) -> Option<u64> {
        self.around(k.route_hint().wrapping_add(4), |i| i.remove(k))
    }
    fn scan_count(&self, start: K, limit: usize) -> usize {
        self.around(start.route_hint().wrapping_add(5), |i| {
            i.scan_count(start, limit)
        })
    }
    /// Streaming chaos: jitter when the iterator is opened, then once per
    /// yielded entry — stretching the windows *between* per-chunk
    /// revalidations, which is exactly where a scan races structural
    /// changes.
    fn range(&self, start: Bound<K>, end: Bound<K>) -> RangeIter<'_, K> {
        let class = bound_hint(&start).wrapping_add(6);
        optiql::chaos::jitter(class);
        let inner = self.inner.range(start, end);
        RangeIter::new(inner.inspect(move |_| optiql::chaos::jitter(class ^ 0x5555_5555_5555_5555)))
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn index_stats(&self) -> IndexStats {
        self.inner.index_stats()
    }
    fn reclaim_handle(&self) -> Option<optiql_index_api::ReclaimHandle> {
        self.inner.reclaim_handle()
    }
    fn multi_lookup(&self, keys: &[K]) -> Vec<Option<u64>> {
        self.around(keys.len() as u64, |i| i.multi_lookup(keys))
    }
    fn multi_insert(&self, pairs: &[(K, u64)]) -> Vec<Option<u64>> {
        self.around(pairs.len() as u64, |i| i.multi_insert(pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql_index_api::model::ModelIndex;

    #[test]
    fn chaos_wrapper_is_transparent() {
        configure(7);
        register_thread(0);
        let c = ChaosIndex::new(ModelIndex::new());
        assert_eq!(c.insert(1, 10), None);
        assert_eq!(c.lookup(1), Some(10));
        assert_eq!(c.update(1, 11), Some(10));
        assert_eq!(c.multi_insert(&[(2, 20), (2, 21)]), vec![None, Some(20)]);
        assert_eq!(c.multi_lookup(&[1, 2, 3]), vec![Some(11), Some(21), None]);
        assert_eq!(c.scan_count(0, 10), 2);
        assert_eq!(c.remove(2), Some(21));
        assert_eq!(c.len(), 1);
        disable();
    }
}
