//! `optiql-check` CLI: sweep the lock × index matrix under seeded chaos
//! and check every recorded history for linearizability.
//!
//! ```text
//! cargo run -p optiql-check                       # full sweep, default seeds
//! cargo run -p optiql-check -- --list             # print the target matrix
//! cargo run -p optiql-check -- --seed 42          # one seed across all targets
//! cargo run -p optiql-check -- --target art --seeds 8
//! cargo run -p optiql-check -- --target btree-optiql --seed 7 \
//!     --threads 8 --ops 2000 --keys 256           # replay one cell, exactly
//! ```
//!
//! Exit status is non-zero iff any cell fails; a failing cell prints the
//! checker's counterexample and the verbatim replay command, then is
//! immediately re-run on the same seed to confirm reproducibility.

use std::process::ExitCode;

use optiql_check::{sweep, targets, CheckConfig, SweepEvent};

struct Args {
    cfg: CheckConfig,
    seeds: Vec<u64>,
    target_filter: Option<String>,
    list: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: optiql-check [options]\n\
         \n\
         options:\n\
           --seed N        check exactly seed N (repeatable)\n\
           --seeds N       check seeds 0..N (default 3)\n\
           --target S      only targets whose name contains S\n\
           --threads N     worker threads per run (default 4)\n\
           --ops N         operations per worker (default 1000)\n\
           --keys N        key space size (default 128)\n\
           --clustered     spread key bits across byte positions (ART\n\
                           prefix-split churn; see driver::spread_key)\n\
           --no-chaos      disable schedule perturbation\n\
           --list          print the target matrix and exit\n\
           --quiet         only print failures and the final summary"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: CheckConfig::default(),
        seeds: Vec::new(),
        target_filter: None,
        list: false,
        quiet: false,
    };
    let mut seed_range: Option<u64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {name} needs a numeric argument");
                usage()
            })
        };
        match a.as_str() {
            "--seed" => args.seeds.push(num("--seed")),
            "--seeds" => seed_range = Some(num("--seeds")),
            "--target" => {
                args.target_filter = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--threads" => args.cfg.threads = num("--threads") as usize,
            "--ops" => args.cfg.ops_per_thread = num("--ops") as usize,
            "--keys" => args.cfg.key_space = num("--keys"),
            "--clustered" => args.cfg.clustered = true,
            "--no-chaos" => args.cfg.chaos = false,
            "--list" => args.list = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other}");
                usage()
            }
        }
    }
    if args.seeds.is_empty() {
        args.seeds = (0..seed_range.unwrap_or(3)).collect();
    } else if let Some(n) = seed_range {
        args.seeds.extend(0..n);
        args.seeds.sort_unstable();
        args.seeds.dedup();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let all = targets();
    let selected: Vec<_> = all
        .into_iter()
        .filter(|t| match args.target_filter.as_deref() {
            Some(f) => t.name.contains(f),
            None => true,
        })
        .collect();

    if args.list {
        println!("{} targets:", selected.len());
        for t in &selected {
            println!("  {:<24} group={:<8} batch={}", t.name, t.group, t.batch);
        }
        return ExitCode::SUCCESS;
    }
    if selected.is_empty() {
        eprintln!(
            "error: no target matches {:?}; try --list",
            args.target_filter.as_deref().unwrap_or("")
        );
        return ExitCode::from(2);
    }

    println!(
        "sweeping {} targets x {} seeds (threads={} ops={} keys={} clustered={} chaos={})",
        selected.len(),
        args.seeds.len(),
        args.cfg.threads,
        args.cfg.ops_per_thread,
        args.cfg.key_space,
        args.cfg.clustered,
        args.cfg.chaos,
    );

    let mut cells = 0usize;
    let failures = sweep(&selected, &args.seeds, &args.cfg, |ev| match ev {
        SweepEvent::Pass {
            target,
            seed,
            report,
        } => {
            cells += 1;
            if !args.quiet {
                println!(
                    "  ok  {target:<24} seed={seed:<4} {} events / {} keys (max {}/key)",
                    report.summary.events, report.summary.keys, report.summary.max_ops_per_key
                );
            }
        }
        SweepEvent::Fail { failure } => {
            cells += 1;
            println!("{failure}");
        }
        SweepEvent::Replay {
            target,
            seed,
            reproduced,
        } => {
            println!(
                "  replay {target} seed={seed}: {}",
                if reproduced {
                    "reproduced"
                } else {
                    "NOT reproduced (schedule-dependent; re-run with more seeds)"
                }
            );
        }
    });

    if failures.is_empty() {
        println!("all {cells} cells linearizable");
        ExitCode::SUCCESS
    } else {
        println!("{} of {cells} cells FAILED", failures.len());
        ExitCode::FAILURE
    }
}
