//! The sweep driver: every lock, every index, one seeded harness.
//!
//! A [`Target`] is a named constructor for some [`ConcurrentIndex`]
//! under test. [`targets`] enumerates the full matrix:
//!
//! * both trees (tiny-node B+-tree and ART) under each of the nine
//!   [`IndexLock`](optiql::IndexLock) implementations,
//! * [`OptRegister`] under the same nine (isolating the lock protocol
//!   from tree structure),
//! * [`LockRegister`] under the five writer-only locks (MCS, TTS,
//!   TTS-Backoff, Ticket, Ticket-Split),
//! * the sharded facade, and the batched `multi_*` paths,
//! * streaming-scan cells (`stream-*`) whose scan arm drives the lazy
//!   [`ConcurrentIndex::range`] iterator instead of `scan_count`, so
//!   per-leaf/per-chunk OLC revalidation races structural churn under
//!   the same seeded perturbation — including two byte-keyed cells
//!   (`stream-keyed-*`) that drop live iterators over [`Bytes`] trees
//!   whose keys straddle the inline/pointer slot boundary,
//! * crash-replay cells (`crash-*`): phase one runs through a
//!   wal-logged wrapper and is stopped at a seeded tick (with a
//!   checkpoint-by-scan fired mid-churn at half that tick), the wal is
//!   recovered into a fresh instance, and phase two plus a full-keyspace
//!   lookup sweep extend the *same* recorded history — the Wing–Gong
//!   checker over the stitched pre-crash + post-recovery history
//!   certifies recovery lost nothing and invented nothing.
//!
//! [`run_target`] runs one `(target, seed)` cell: workers execute
//! deterministic op scripts derived from `(seed, worker slot)` through a
//! [`ThreadRecorder`]-over-[`ChaosIndex`] stack while the seeded chaos
//! layer perturbs lock-level schedules; the merged history then goes to
//! the Wing–Gong checker. Everything a run did is reconstructible from
//! its seed — [`Failure`] carries exactly that, and [`sweep`] re-runs a
//! failing seed verbatim to demonstrate replay.

use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use optiql_index_api::{Bytes, ConcurrentIndex, RangeIter};
use optiql_wal::{DurableIndex, FsyncPolicy, Wal, WalConfig};

use crate::chaos::ChaosIndex;
use crate::history::{Recorder, ThreadRecorder};
use crate::linearize::{check_logs, CheckSummary, Violation};
use crate::register::{LockRegister, OptRegister};

/// Key capacity of the register targets; sweeps must keep
/// `key_space <= REGISTER_CAP`.
pub const REGISTER_CAP: usize = 4096;

/// Workload shape for one run. The same config + seed reproduces the
/// same per-worker op scripts and the same chaos schedule.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Worker threads.
    pub threads: usize,
    /// Operations issued per worker.
    pub ops_per_thread: usize,
    /// Keys are drawn uniformly from `0..key_space`. Sized so per-key
    /// histories stay far below [`crate::linearize::MAX_OPS_PER_KEY`].
    pub key_space: u64,
    /// Spread each drawn key's bits across byte positions (see
    /// [`spread_key`]) so the ART sees a sparse multi-level radix
    /// structure whose compressed prefixes split and collapse
    /// continuously, instead of a dense last-byte-only cluster that goes
    /// structurally quiet after warmup.
    pub clustered: bool,
    /// Enable the seeded chaos layer (disable to measure the recorder
    /// alone or to bisect whether a failure needs perturbation).
    pub chaos: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            threads: 4,
            ops_per_thread: 1000,
            key_space: 128,
            clustered: false,
            chaos: true,
        }
    }
}

/// One named index-under-test.
pub struct Target {
    /// Stable name, usable with the CLI's `--target` substring filter.
    pub name: &'static str,
    /// Coarse family: `btree`, `art`, `optreg`, `lockreg`, `sharded`,
    /// `batched`.
    pub group: &'static str,
    /// Batch size for `multi_*` issue; 1 means scalar ops.
    pub batch: usize,
    /// Pin each worker to a shard's core (best-effort, via
    /// [`optiql_sharded::ShardAffinity`]) before it runs its script —
    /// the placement the affine bench driver uses. On a single-core host
    /// the pin degrades to a no-op; the target still runs.
    pub pin_workers: bool,
    /// Drive the scan arm through the streaming `range` iterator instead
    /// of `scan_count`: the iterator is opened, partially drained, and
    /// dropped mid-stream half the time — the lifecycle a server-side
    /// paginated SCAN produces.
    pub stream_scans: bool,
    /// Run the crash-replay schedule (see [`run_crash_target`]): log
    /// phase one through a wal, stop it at a seeded tick, recover into a
    /// fresh instance, and check the stitched two-phase history.
    pub crash: bool,
    make: fn() -> Arc<dyn ConcurrentIndex>,
}

impl Target {
    /// Construct a fresh instance of the index under test.
    pub fn build(&self) -> Arc<dyn ConcurrentIndex> {
        (self.make)()
    }
}

// Tiny nodes (fanout 4) keep structural modifications constant under the
// small checkable keyspace: 128 keys split a 4-entry leaf tree dozens of
// levels-and-times over, which is the whole point.
type TinyTree<IL, LL> = optiql_btree::BPlusTree<IL, LL, 4, 4>;

fn mk_btree<LL: optiql::IndexLock>() -> Arc<dyn ConcurrentIndex> {
    Arc::new(TinyTree::<optiql::OptLock, LL>::new())
}
fn mk_btree_pess<L: optiql::IndexLock>() -> Arc<dyn ConcurrentIndex> {
    Arc::new(TinyTree::<L, L>::new())
}
fn mk_art<L: optiql::IndexLock>() -> Arc<dyn ConcurrentIndex> {
    Arc::new(optiql_art::ArtTree::<L>::new())
}
fn mk_optreg<L: optiql::IndexLock>() -> Arc<dyn ConcurrentIndex> {
    Arc::new(OptRegister::<L>::new(REGISTER_CAP))
}
fn mk_lockreg<L: optiql::ExclusiveLock>() -> Arc<dyn ConcurrentIndex> {
    Arc::new(LockRegister::<L>::new(REGISTER_CAP))
}
/// Order-preserving injection of the checker's `u64` keyspace into byte
/// strings, shaped to land on both sides of the inline/pointer slot
/// boundary: `[len][big-endian bytes, leading zeros trimmed]` is 1–3
/// bytes for the small chaos keyspaces (inline-eligible), and every
/// third key grows a long tail that forces a heap pointer slot. The
/// length byte keeps numeric order (fewer bytes ⇒ smaller value) and
/// makes the short forms prefix-free, so appending the tail preserves
/// strict order too.
fn byte_key(k: u64) -> Bytes {
    const TAIL: &[u8] = b"-0123456789abcdef";
    let be = k.to_be_bytes();
    let skip = (k.leading_zeros() / 8) as usize;
    let n = 8 - skip.min(8);
    let mut buf = [0u8; 9 + TAIL.len()];
    buf[0] = n as u8;
    buf[1..1 + n].copy_from_slice(&be[8 - n..]);
    let mut len = 1 + n;
    if k % 3 == 0 {
        buf[len..len + TAIL.len()].copy_from_slice(TAIL);
        len += TAIL.len();
    }
    Bytes::from(&buf[..len])
}

/// Invert [`byte_key`] (the tail, when present, is simply ignored).
fn decode_byte_key(b: &Bytes) -> u64 {
    let raw = b.as_bytes();
    let n = raw[0] as usize;
    raw[1..1 + n].iter().fold(0u64, |v, &x| v << 8 | x as u64)
}

/// `u64`-keyed view of a byte-keyed index through [`byte_key`]: the
/// recorder and checker keep speaking integers while every operation
/// underneath exercises the byte-key fast path (inline slots, prefix
/// truncation, escape-coded radix digits) against the same scripts and
/// chaos schedules as the integer cells.
struct ByteKeyed<I>(I);

impl<I: ConcurrentIndex<Bytes>> ConcurrentIndex for ByteKeyed<I> {
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.0.insert(byte_key(k), v)
    }
    fn update(&self, k: u64, v: u64) -> Option<u64> {
        self.0.update(byte_key(k), v)
    }
    fn lookup(&self, k: u64) -> Option<u64> {
        self.0.lookup(byte_key(k))
    }
    fn remove(&self, k: u64) -> Option<u64> {
        self.0.remove(byte_key(k))
    }
    fn scan_count(&self, start: u64, limit: usize) -> usize {
        self.0.scan_count(byte_key(start), limit)
    }
    fn range(&self, start: Bound<u64>, end: Bound<u64>) -> RangeIter<'_, u64> {
        let m = |b: Bound<u64>| match b {
            Bound::Included(k) => Bound::Included(byte_key(k)),
            Bound::Excluded(k) => Bound::Excluded(byte_key(k)),
            Bound::Unbounded => Bound::Unbounded,
        };
        RangeIter::new(
            self.0
                .range(m(start), m(end))
                .map(|(k, v)| (decode_byte_key(&k), v)),
        )
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn index_stats(&self) -> optiql::olc::IndexStats {
        self.0.index_stats()
    }
    fn multi_lookup(&self, keys: &[u64]) -> Vec<Option<u64>> {
        let keys: Vec<Bytes> = keys.iter().map(|&k| byte_key(k)).collect();
        self.0.multi_lookup(&keys)
    }
    fn multi_insert(&self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        let pairs: Vec<(Bytes, u64)> = pairs.iter().map(|&(k, v)| (byte_key(k), v)).collect();
        self.0.multi_insert(&pairs)
    }
}

type TinyTreeBytes = optiql_btree::BPlusTree<optiql::OptLock, optiql::OptiQL, 4, 4, Bytes>;

fn mk_keyed_btree() -> Arc<dyn ConcurrentIndex> {
    Arc::new(ByteKeyed(TinyTreeBytes::new()))
}
fn mk_keyed_art() -> Arc<dyn ConcurrentIndex> {
    Arc::new(ByteKeyed(
        optiql_art::ArtTree::<optiql::OptiQL, Bytes>::new(),
    ))
}

// 4-key blocks: the default block granularity (64Ki keys, sized for
// bench keyspaces) would drop the checker's whole 128-key space into one
// shard; 2 block bits stripe it as 32 blocks over all four shards.
const SHARD_BLOCK_BITS: u32 = 2;

fn mk_sharded_btree() -> Arc<dyn ConcurrentIndex> {
    Arc::new(optiql_sharded::ShardedIndex::with_config(
        4,
        SHARD_BLOCK_BITS,
        |_| TinyTree::<optiql::OptLock, optiql::OptiQL>::new(),
    ))
}
fn mk_sharded_art() -> Arc<dyn ConcurrentIndex> {
    Arc::new(optiql_sharded::ShardedIndex::with_config(
        4,
        SHARD_BLOCK_BITS,
        |_| optiql_art::ArtTree::<optiql::OptiQL>::new(),
    ))
}

/// The full target matrix.
pub fn targets() -> Vec<Target> {
    macro_rules! t {
        ($name:literal, $group:literal, $batch:expr, $make:expr) => {
            t!($name, $group, $batch, $make, false, false)
        };
        ($name:literal, $group:literal, $batch:expr, $make:expr, $pin:expr) => {
            t!($name, $group, $batch, $make, $pin, false)
        };
        ($name:literal, $group:literal, $batch:expr, $make:expr, $pin:expr, $stream:expr) => {
            t!($name, $group, $batch, $make, $pin, $stream, false)
        };
        ($name:literal, $group:literal, $batch:expr, $make:expr, $pin:expr, $stream:expr, $crash:expr) => {
            Target {
                name: $name,
                group: $group,
                batch: $batch,
                pin_workers: $pin,
                stream_scans: $stream,
                crash: $crash,
                make: $make,
            }
        };
    }
    use ::optiql::*;
    vec![
        // B+-tree: each optimistic leaf lock over OptLock inners, plus
        // the two pessimistic all-the-way-down configurations.
        t!("btree-optlock", "btree", 1, mk_btree::<OptLock>),
        t!(
            "btree-optlock-backoff",
            "btree",
            1,
            mk_btree::<OptLockBackoff>
        ),
        t!("btree-optiql", "btree", 1, mk_btree::<OptiQL>),
        t!("btree-optiql-nor", "btree", 1, mk_btree::<OptiQLNor>),
        t!("btree-optiql-aor", "btree", 1, mk_btree::<OptiQLAor>),
        t!("btree-opticlh", "btree", 1, mk_btree::<OptiCLH>),
        t!("btree-opticlh-nor", "btree", 1, mk_btree::<OptiCLHNor>),
        t!("btree-mcs-rw", "btree", 1, mk_btree_pess::<McsRwLock>),
        t!("btree-pthread", "btree", 1, mk_btree_pess::<PthreadRwLock>),
        // ART under all nine index locks.
        t!("art-optlock", "art", 1, mk_art::<OptLock>),
        t!("art-optlock-backoff", "art", 1, mk_art::<OptLockBackoff>),
        t!("art-optiql", "art", 1, mk_art::<OptiQL>),
        t!("art-optiql-nor", "art", 1, mk_art::<OptiQLNor>),
        t!("art-optiql-aor", "art", 1, mk_art::<OptiQLAor>),
        t!("art-opticlh", "art", 1, mk_art::<OptiCLH>),
        t!("art-opticlh-nor", "art", 1, mk_art::<OptiCLHNor>),
        t!("art-mcs-rw", "art", 1, mk_art::<McsRwLock>),
        t!("art-pthread", "art", 1, mk_art::<PthreadRwLock>),
        // Register arrays: the lock protocol in isolation.
        t!("optreg-optlock", "optreg", 1, mk_optreg::<OptLock>),
        t!(
            "optreg-optlock-backoff",
            "optreg",
            1,
            mk_optreg::<OptLockBackoff>
        ),
        t!("optreg-optiql", "optreg", 1, mk_optreg::<OptiQL>),
        t!("optreg-optiql-nor", "optreg", 1, mk_optreg::<OptiQLNor>),
        t!("optreg-optiql-aor", "optreg", 1, mk_optreg::<OptiQLAor>),
        t!("optreg-opticlh", "optreg", 1, mk_optreg::<OptiCLH>),
        t!("optreg-opticlh-nor", "optreg", 1, mk_optreg::<OptiCLHNor>),
        t!("optreg-mcs-rw", "optreg", 1, mk_optreg::<McsRwLock>),
        t!("optreg-pthread", "optreg", 1, mk_optreg::<PthreadRwLock>),
        // Writer-only locks, reachable by no index: register arrays make
        // "every lock" literal.
        t!("lockreg-mcs", "lockreg", 1, mk_lockreg::<McsLock>),
        t!("lockreg-tts", "lockreg", 1, mk_lockreg::<TtsLock>),
        t!(
            "lockreg-tts-backoff",
            "lockreg",
            1,
            mk_lockreg::<TtsBackoff>
        ),
        t!("lockreg-ticket", "lockreg", 1, mk_lockreg::<TicketLock>),
        t!(
            "lockreg-ticket-split",
            "lockreg",
            1,
            mk_lockreg::<TicketLockSplit>
        ),
        // The sharded facade over both trees, and the same trees with
        // workers pinned shard-affine (the bench driver's placement):
        // chaos perturbation must not surface schedules that core
        // pinning alone can hide, and vice versa.
        t!("sharded-btree-optiql", "sharded", 1, mk_sharded_btree),
        t!("sharded-art-optiql", "sharded", 1, mk_sharded_art),
        t!("sharded-btree-affine", "sharded", 1, mk_sharded_btree, true),
        t!("sharded-art-affine", "sharded", 1, mk_sharded_art, true),
        // Batched multi_* paths (group prefetch pipeline).
        t!("batched-btree-optiql", "batched", 8, mk_btree::<OptiQL>),
        t!("batched-art-optiql", "batched", 8, mk_art::<OptiQL>),
        t!("batched-sharded-btree", "batched", 8, mk_sharded_btree),
        t!("batched-sharded-affine", "batched", 8, mk_sharded_art, true),
        // Streaming-scan cells: the scan arm opens the lazy range
        // iterator (partially drained, sometimes dropped mid-stream)
        // against the same mutation script, on both trees, their
        // pessimistic baselines, and the merged sharded fan-out.
        t!(
            "stream-btree-optiql",
            "stream",
            1,
            mk_btree::<OptiQL>,
            false,
            true
        ),
        t!(
            "stream-btree-mcs-rw",
            "stream",
            1,
            mk_btree_pess::<McsRwLock>,
            false,
            true
        ),
        t!(
            "stream-art-optiql",
            "stream",
            1,
            mk_art::<OptiQL>,
            false,
            true
        ),
        t!(
            "stream-art-mcs-rw",
            "stream",
            1,
            mk_art::<McsRwLock>,
            false,
            true
        ),
        t!(
            "stream-sharded-btree",
            "stream",
            1,
            mk_sharded_btree,
            false,
            true
        ),
        t!(
            "stream-sharded-art",
            "stream",
            1,
            mk_sharded_art,
            false,
            true
        ),
        // Byte-key streaming cells: the same iterator lifecycle (opened,
        // partially drained, dropped mid-stream) over [`Bytes`]-keyed
        // trees, so prefix-truncation maintenance and inline/pointer slot
        // reclamation race live iterators under chaos.
        t!(
            "stream-keyed-btree",
            "stream",
            1,
            mk_keyed_btree,
            false,
            true
        ),
        t!("stream-keyed-art", "stream", 1, mk_keyed_art, false, true),
        // Crash-replay cells: phase one is wal-logged and stopped at a
        // seeded tick with a checkpoint racing the churn; recovery
        // replays into a fresh instance, phase two and a full-keyspace
        // sweep extend the same history, and the checker certifies the
        // stitched pre-crash + post-recovery run. Both trees, the
        // sharded facade (wal shards mirror index shards), and the
        // byte-keyed tree (recovery re-enters keys through the
        // `from_encoded` path the server uses).
        t!(
            "crash-btree-optiql",
            "crash",
            1,
            mk_btree::<OptiQL>,
            false,
            false,
            true
        ),
        t!(
            "crash-art-optiql",
            "crash",
            1,
            mk_art::<OptiQL>,
            false,
            false,
            true
        ),
        t!(
            "crash-sharded-btree",
            "crash",
            1,
            mk_sharded_btree,
            false,
            false,
            true
        ),
        t!(
            "crash-keyed-btree",
            "crash",
            1,
            mk_keyed_btree,
            false,
            false,
            true
        ),
    ]
}

/// A failed `(target, seed)` cell: everything needed to replay it.
#[derive(Debug)]
pub struct Failure {
    /// Name of the failing target.
    pub target: &'static str,
    /// Seed of the failing run.
    pub seed: u64,
    /// Config of the failing run.
    pub cfg: CheckConfig,
    /// The checker's counterexample.
    pub violation: Box<Violation>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FAIL {} seed={} (threads={} ops={} keys={} clustered={} chaos={})",
            self.target,
            self.seed,
            self.cfg.threads,
            self.cfg.ops_per_thread,
            self.cfg.key_space,
            self.cfg.clustered,
            self.cfg.chaos,
        )?;
        write!(f, "{}", self.violation)?;
        write!(
            f,
            "replay: cargo run -p optiql-check -- --target {} --seed {} \
             --threads {} --ops {} --keys {}{}{}",
            self.target,
            self.seed,
            self.cfg.threads,
            self.cfg.ops_per_thread,
            self.cfg.key_space,
            if self.cfg.clustered {
                " --clustered"
            } else {
                ""
            },
            if self.cfg.chaos { "" } else { " --no-chaos" },
        )
    }
}

/// A passed `(target, seed)` cell.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Checker aggregates for the run.
    pub summary: CheckSummary,
    /// Total ticks the recorder issued (2 per recorded event).
    pub ticks: u64,
}

// The chaos configuration is process-global (one seed, one generation),
// so concurrent run_target calls — e.g. `cargo test` running two
// #[test]s in parallel — would perturb each other's schedules and break
// seed determinism. One run at a time, process-wide.
static RUN_GATE: Mutex<()> = Mutex::new(());

/// Injectively spread `k`'s bits two-per-byte across the key's byte
/// positions, producing a sparse radix-4 trie shape: 128 dense indices
/// become keys diverging at bytes 7, 6, 5 and 4 of the big-endian
/// encoding. Under a mixed insert/remove workload the ART's compressed
/// paths for these keys split and collapse continuously — the structural
/// churn the dense mapping (divergence only in the last byte) settles
/// out of after warmup.
pub fn spread_key(k: u64) -> u64 {
    let mut key = 0u64;
    for byte in 0..8 {
        key |= ((k >> (2 * byte)) & 0x3) << (8 * byte);
    }
    key
}

/// SplitMix64: the workload generator's only randomness. Deterministic
/// per `(seed, worker slot)`, independent of thread interleaving.
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One worker's deterministic op script: ~40% lookups, ~30% inserts,
/// ~15% updates, ~14% removes, ~1% scans, with `multi_*` buffering when
/// `batch > 1`. Values are globally unique (`slot << 40 | op index`) so
/// the checker can distinguish every write. With `stream` set, the scan
/// arm opens the lazy `range` iterator instead of calling `scan_count`,
/// draining 1–8 entries and dropping the iterator early half the time.
/// A set `stop` flag ends the script between ops — the crash driver's
/// simulated power cut, always on an operation boundary so every
/// recorded event also finished its wal append.
fn run_script<I: ConcurrentIndex>(
    ix: &I,
    slot: usize,
    seed: u64,
    batch: usize,
    stream: bool,
    cfg: &CheckConfig,
    stop: Option<&AtomicBool>,
) {
    let mut state =
        seed ^ (slot as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    let mut lookups: Vec<u64> = Vec::new();
    let mut inserts: Vec<(u64, u64)> = Vec::new();
    for i in 0..cfg.ops_per_thread {
        if let Some(flag) = stop {
            if flag.load(Ordering::Acquire) {
                break;
            }
        }
        let r = splitmix(&mut state);
        let mut key = (r >> 32) % cfg.key_space;
        if cfg.clustered {
            key = spread_key(key);
        }
        let v = ((slot as u64) << 40) | i as u64;
        match r % 100 {
            0..=39 => {
                if batch > 1 {
                    lookups.push(key);
                    if lookups.len() >= batch {
                        ix.multi_lookup(&lookups);
                        lookups.clear();
                    }
                } else {
                    ix.lookup(key);
                }
            }
            40..=69 => {
                if batch > 1 {
                    inserts.push((key, v));
                    if inserts.len() >= batch {
                        ix.multi_insert(&inserts);
                        inserts.clear();
                    }
                } else {
                    ix.insert(key, v);
                }
            }
            70..=84 => {
                ix.update(key, v);
            }
            85..=98 => {
                ix.remove(key);
            }
            _ => {
                // Unrecorded; exercises range traversal concurrently
                // with structural modifications, and perturbs timing.
                if stream {
                    let take = (r >> 8) as usize % 8 + 1;
                    let start = if r & 1 << 16 == 0 {
                        std::ops::Bound::Included(key)
                    } else {
                        std::ops::Bound::Excluded(key)
                    };
                    // `take` cuts the stream short half the time on
                    // average: dropping a live iterator mid-leaf is the
                    // paginated-SCAN lifecycle and must leave no state
                    // behind (no held locks, no leaked pins).
                    for kv in ix.range(start, std::ops::Bound::Unbounded).take(take) {
                        std::hint::black_box(kv);
                    }
                } else {
                    ix.scan_count(key, 8);
                }
            }
        }
    }
    if !lookups.is_empty() {
        ix.multi_lookup(&lookups);
    }
    if !inserts.is_empty() {
        ix.multi_insert(&inserts);
    }
}

/// Run one `(target, seed)` cell and check the history it records.
pub fn run_target(t: &Target, seed: u64, cfg: &CheckConfig) -> Result<RunReport, Failure> {
    assert!(cfg.threads >= 1, "need at least one worker");
    assert!(
        cfg.key_space >= 1 && cfg.key_space as usize <= REGISTER_CAP,
        "key_space must be in 1..={REGISTER_CAP}"
    );
    assert!(
        !cfg.clustered || cfg.key_space <= 1 << 16,
        "spread_key covers 16 index bits"
    );
    if t.crash {
        return run_crash_target(t, seed, cfg);
    }
    let _gate = RUN_GATE.lock().unwrap_or_else(|e| e.into_inner());
    if cfg.chaos {
        crate::chaos::configure(seed);
    } else {
        crate::chaos::disable();
    }

    // Spread keys overflow the register targets' direct-mapped capacity;
    // clustering only changes radix structure anyway, which registers
    // don't have. Dense keys there, deterministically.
    let cfg = CheckConfig {
        clustered: cfg.clustered && !matches!(t.group, "optreg" | "lockreg"),
        ..cfg.clone()
    };
    let cfg = &cfg;

    let index = t.build();
    let chaosed = Arc::new(ChaosIndex::new(index));
    let recorder = Recorder::new();
    let barrier = Arc::new(Barrier::new(cfg.threads));

    let logs: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|slot| {
                let chaosed = Arc::clone(&chaosed);
                let recorder = Arc::clone(&recorder);
                let barrier = Arc::clone(&barrier);
                let batch = t.batch;
                let pin_workers = t.pin_workers;
                let stream = t.stream_scans;
                s.spawn(move || {
                    crate::chaos::register_thread(slot as u64);
                    if pin_workers {
                        // Same placement the affine bench driver uses:
                        // worker -> first owned shard -> that shard's
                        // core. Best effort; single-core hosts skip it.
                        let aff = optiql_sharded::ShardAffinity::probe(4);
                        let owned = aff.shards_of_worker(slot, cfg.threads);
                        aff.pin_to_shard(owned[0]);
                    }
                    let tr = ThreadRecorder::new(chaosed, recorder, slot as u32);
                    barrier.wait();
                    run_script(&tr, slot, seed, batch, stream, cfg, None);
                    tr.into_log()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    crate::chaos::disable();
    let ticks = recorder.now();
    match check_logs(logs) {
        Ok(summary) => Ok(RunReport { summary, ticks }),
        Err(violation) => Err(Failure {
            target: t.name,
            seed,
            cfg: cfg.clone(),
            violation,
        }),
    }
}

/// Run one crash-replay cell: the `CrashReplay` schedule for targets
/// with [`Target::crash`] set (dispatched from [`run_target`]).
///
/// 1. **Phase one (pre-crash)**: workers run their chaos-perturbed
///    scripts through `ThreadRecorder → ChaosIndex → DurableIndex →
///    index`, so every mutation is redo-logged exactly as the server
///    stack logs it. A controller thread watches the recorder's tick
///    clock: at a seeded *checkpoint tick* it runs checkpoint-by-scan
///    against the live churn, and at a seeded *crash tick* (in the
///    middle half of the run) it raises the stop flag. Workers stop on
///    operation boundaries — the recorded history and the log agree at
///    the cut, which is exactly what fsync-before-ack guarantees a real
///    crash (the subprocess SIGKILL test covers mid-append cuts).
/// 2. **Recovery**: the wal directory is reopened and replayed into a
///    *fresh* instance of the same target, checkpoint first, log tail
///    on top.
/// 3. **Phase two (post-recovery)**: new workers (distinct recorder
///    thread ids and chaos slots, half-length scripts) hammer the
///    recovered index under the same seed's chaos schedule, then a
///    final sweep thread looks up every key in the keyspace so each
///    key's recovered value is certified, not just the ones phase two
///    happened to touch.
///
/// The stitched phase-one + phase-two + sweep history goes through the
/// same Wing–Gong checker as every other cell. A write recovery lost
/// surfaces as a stale lookup no linearization can explain; a phantom
/// surfaces as a value nobody wrote.
fn run_crash_target(t: &Target, seed: u64, cfg: &CheckConfig) -> Result<RunReport, Failure> {
    let _gate = RUN_GATE.lock().unwrap_or_else(|e| e.into_inner());
    if cfg.chaos {
        crate::chaos::configure(seed);
    } else {
        crate::chaos::disable();
    }

    let dir = std::env::temp_dir().join(format!(
        "optiql-check-crash-{}-{seed:x}-{}",
        t.name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_cfg = || WalConfig {
        shards: 4,
        block_bits: SHARD_BLOCK_BITS,
        policy: FsyncPolicy::Group,
        ..WalConfig::new(&dir)
    };

    // Both crash points are pure functions of the seed. Two ticks per
    // recorded op bounds the run's tick budget; the crash lands in its
    // middle half, the checkpoint halfway to the crash.
    let mut rng = seed ^ 0xC4A5_4C4A_5C4A_54C4;
    let est_ticks = (cfg.threads * cfg.ops_per_thread * 2) as u64;
    let crash_tick = est_ticks / 4 + splitmix(&mut rng) % (est_ticks / 2).max(1);
    let ckpt_tick = crash_tick / 2;

    let recorder = Recorder::new();
    let stop = AtomicBool::new(false);
    let done = AtomicUsize::new(0);

    // Phase one: chaos over the wal-logged wrapper over the index.
    let wal = Arc::new(Wal::open(wal_cfg()).expect("open wal for crash cell"));
    let raw = t.build();
    let chaosed = Arc::new(ChaosIndex::new(DurableIndex::new(
        Arc::clone(&raw),
        Arc::clone(&wal),
    )));
    let barrier = Arc::new(Barrier::new(cfg.threads));
    let mut logs: Vec<Vec<crate::history::HistEvent>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|slot| {
                let chaosed = Arc::clone(&chaosed);
                let recorder = Arc::clone(&recorder);
                let barrier = Arc::clone(&barrier);
                let batch = t.batch;
                let (stop, done) = (&stop, &done);
                s.spawn(move || {
                    crate::chaos::register_thread(slot as u64);
                    let tr = ThreadRecorder::new(chaosed, recorder, slot as u32);
                    barrier.wait();
                    run_script(&tr, slot, seed, batch, false, cfg, Some(stop));
                    done.fetch_add(1, Ordering::Release);
                    tr.into_log()
                })
            })
            .collect();
        // The controller: checkpoint mid-churn, then pull the plug.
        s.spawn(|| {
            let mut ckpt_done = false;
            loop {
                if done.load(Ordering::Acquire) == cfg.threads {
                    break;
                }
                let now = recorder.now();
                if !ckpt_done && now >= ckpt_tick {
                    wal.checkpoint::<u64, _>(&*raw)
                        .expect("checkpoint under churn");
                    ckpt_done = true;
                }
                if now >= crash_tick {
                    stop.store(true, Ordering::Release);
                    break;
                }
                std::thread::yield_now();
            }
        });
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    drop(chaosed);
    drop(raw);
    drop(wal);

    // Recovery: reopen the logs, replay into a fresh instance. Nothing
    // here may be torn — phase one cut on op boundaries only (the
    // subprocess kill test owns mid-append tails).
    let wal2 = Arc::new(Wal::open(wal_cfg()).expect("reopen wal after crash"));
    assert!(
        wal2.mount_report().iter().all(|m| m.torn.is_none()),
        "op-boundary crash left a torn frame: wal append is buggy"
    );
    let fresh = t.build();
    wal2.recover_into::<u64, _>(&*fresh)
        .expect("recover crash cell");
    drop(wal2);

    // Phase two: fresh workers (new recorder threads, new chaos slots,
    // half-length scripts) extend the same history over the recovered
    // index — no wal this time; recovery fidelity is the property.
    let cfg2 = CheckConfig {
        ops_per_thread: (cfg.ops_per_thread / 2).max(1),
        ..cfg.clone()
    };
    let chaosed2 = Arc::new(ChaosIndex::new(fresh));
    let barrier2 = Arc::new(Barrier::new(cfg.threads));
    logs.extend(std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|slot| {
                let chaosed2 = Arc::clone(&chaosed2);
                let recorder = Arc::clone(&recorder);
                let barrier2 = Arc::clone(&barrier2);
                let batch = t.batch;
                let cfg2 = &cfg2;
                s.spawn(move || {
                    let slot = cfg2.threads + slot;
                    crate::chaos::register_thread(slot as u64);
                    let tr = ThreadRecorder::new(chaosed2, recorder, slot as u32);
                    barrier2.wait();
                    run_script(&tr, slot, seed, batch, false, cfg2, None);
                    tr.into_log()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    }));

    // Final sweep: one recorded lookup per key, so *every* key's
    // recovered value must be explainable by the stitched history, not
    // only the keys phase two happened to revisit.
    let sweeper = ThreadRecorder::new(
        Arc::clone(&chaosed2),
        Arc::clone(&recorder),
        (2 * cfg.threads) as u32,
    );
    for k in 0..cfg.key_space {
        let key = if cfg.clustered { spread_key(k) } else { k };
        sweeper.lookup(key);
    }
    logs.push(sweeper.into_log());

    crate::chaos::disable();
    let _ = std::fs::remove_dir_all(&dir);
    let ticks = recorder.now();
    match check_logs(logs) {
        Ok(summary) => Ok(RunReport { summary, ticks }),
        Err(violation) => Err(Failure {
            target: t.name,
            seed,
            cfg: cfg.clone(),
            violation,
        }),
    }
}

/// Sweep `targets × seeds`. On a failure, the failing seed is re-run
/// verbatim (same target, same seed, same config) to demonstrate
/// deterministic replay; both the original and the replay outcome are
/// reported through `progress`.
///
/// Returns all failures (original runs only — replays are advisory).
pub fn sweep(
    targets: &[Target],
    seeds: &[u64],
    cfg: &CheckConfig,
    mut progress: impl FnMut(SweepEvent<'_>),
) -> Vec<Failure> {
    let mut failures = Vec::new();
    for t in targets {
        for &seed in seeds {
            match run_target(t, seed, cfg) {
                Ok(report) => progress(SweepEvent::Pass {
                    target: t.name,
                    seed,
                    report,
                }),
                Err(failure) => {
                    progress(SweepEvent::Fail { failure: &failure });
                    let replay = run_target(t, seed, cfg);
                    progress(SweepEvent::Replay {
                        target: t.name,
                        seed,
                        reproduced: replay.is_err(),
                    });
                    failures.push(failure);
                }
            }
        }
    }
    failures
}

/// Progress callbacks from [`sweep`].
pub enum SweepEvent<'a> {
    /// A cell passed.
    Pass {
        /// Target name.
        target: &'static str,
        /// Seed checked.
        seed: u64,
        /// Checker aggregates.
        report: RunReport,
    },
    /// A cell failed; the violation is attached.
    Fail {
        /// The failure (also returned from [`sweep`]).
        failure: &'a Failure,
    },
    /// The verbatim re-run of a failing cell finished.
    Replay {
        /// Target name.
        target: &'static str,
        /// Seed replayed.
        seed: u64,
        /// Whether the replay failed again.
        reproduced: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_names_are_unique_and_groups_known() {
        let ts = targets();
        let mut names: Vec<&str> = ts.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ts.len(), "duplicate target name");
        for t in &ts {
            assert!(
                ["btree", "art", "optreg", "lockreg", "sharded", "batched", "stream", "crash"]
                    .contains(&t.group),
                "unknown group {} on {}",
                t.group,
                t.name
            );
            assert!(t.batch >= 1);
        }
        // "All ten locks": 9 index locks + 5 writer-only locks appear.
        assert_eq!(ts.iter().filter(|t| t.group == "btree").count(), 9);
        assert_eq!(ts.iter().filter(|t| t.group == "art").count(), 9);
        assert_eq!(ts.iter().filter(|t| t.group == "optreg").count(), 9);
        assert_eq!(ts.iter().filter(|t| t.group == "lockreg").count(), 5);
        // Facade coverage: plain + affine over both trees, and the
        // batched paths including one sharded-affine cell.
        assert_eq!(ts.iter().filter(|t| t.group == "sharded").count(), 4);
        assert_eq!(ts.iter().filter(|t| t.group == "batched").count(), 4);
        assert_eq!(ts.iter().filter(|t| t.pin_workers).count(), 3);
        for t in ts.iter().filter(|t| t.pin_workers) {
            assert!(
                t.name.contains("affine"),
                "pinned target {} must say so in its name",
                t.name
            );
        }
        // Streaming-scan cells: both trees, both pessimistic baselines,
        // both sharded fan-outs, and the byte-keyed pair; every one
        // named for what it does.
        assert_eq!(ts.iter().filter(|t| t.group == "stream").count(), 8);
        for t in &ts {
            assert_eq!(
                t.stream_scans,
                t.group == "stream",
                "stream_scans out of sync with group on {}",
                t.name
            );
            if t.stream_scans {
                assert!(t.name.starts_with("stream-"));
            }
        }
        // Crash-replay cells: both trees, the sharded facade, and the
        // byte-keyed recovery path — and the whole matrix clears the
        // 50-cell bar the recovery tier calls for.
        assert_eq!(ts.iter().filter(|t| t.group == "crash").count(), 4);
        for t in &ts {
            assert_eq!(
                t.crash,
                t.group == "crash",
                "crash out of sync with group on {}",
                t.name
            );
            if t.crash {
                assert!(t.name.starts_with("crash-"));
            }
        }
        assert!(ts.len() >= 50, "chaos matrix shrank below 50 cells");
    }

    #[test]
    fn byte_key_injection_is_order_preserving_and_invertible() {
        let mut prev = byte_key(0);
        assert_eq!(decode_byte_key(&prev), 0);
        for k in 1..2_000u64 {
            let b = byte_key(k);
            assert!(prev < b, "order broken at {k}");
            assert_eq!(decode_byte_key(&b), k);
            prev = b;
        }
        for ks in [255, 256, 65_535, 65_536, u32::MAX as u64, u64::MAX].windows(2) {
            assert!(byte_key(ks[0]) < byte_key(ks[1]));
        }
        // Both slot representations appear: short keys inline, the
        // tailed ones spill to heap pointer slots.
        assert!(byte_key(1).as_bytes().len() <= 7);
        assert!(byte_key(3).as_bytes().len() > 7);
    }

    #[test]
    fn scripts_are_seed_deterministic() {
        // Two single-threaded runs of the same seed against the model
        // index must record identical histories (modulo tick values).
        let cfg = CheckConfig {
            threads: 1,
            ops_per_thread: 200,
            key_space: 16,
            clustered: false,
            chaos: false,
        };
        let run = || {
            let rec = Recorder::new();
            let tr = ThreadRecorder::new(
                optiql_index_api::model::ModelIndex::new(),
                Arc::clone(&rec),
                0,
            );
            run_script(&tr, 0, 99, 1, false, &cfg, None);
            tr.into_log()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!((x.key, x.op, x.out), (y.key, y.op, y.out));
        }
    }

    #[test]
    fn model_index_passes_a_cell() {
        // The reference implementation must sail through the harness.
        let t = Target {
            name: "model",
            group: "sharded",
            batch: 1,
            pin_workers: false,
            stream_scans: true,
            crash: false,
            make: || Arc::new(optiql_index_api::model::ModelIndex::new()),
        };
        let cfg = CheckConfig {
            threads: 3,
            ops_per_thread: 300,
            key_space: 32,
            clustered: true,
            chaos: true,
        };
        let report = run_target(&t, 7, &cfg).expect("model index is linearizable");
        assert!(report.summary.events > 0);
        assert!(report.summary.keys > 0);
        assert!(report.summary.max_ops_per_key <= crate::linearize::MAX_OPS_PER_KEY);
    }

    #[test]
    fn crash_replay_cell_recovers_and_passes() {
        let ts = targets();
        let t = ts
            .iter()
            .find(|t| t.name == "crash-btree-optiql")
            .expect("crash cell exists");
        let cfg = CheckConfig {
            threads: 3,
            ops_per_thread: 400,
            key_space: 64,
            clustered: false,
            chaos: true,
        };
        let report = run_target(t, 11, &cfg).expect("recovery history is linearizable");
        // Phase one + phase two + the full-keyspace sweep all recorded.
        assert!(report.summary.events as u64 > cfg.key_space);
        assert_eq!(report.summary.keys as u64, cfg.key_space);
    }
}
