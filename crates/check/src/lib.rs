//! # optiql-check — linearizability checking and seeded chaos schedules
//!
//! The workspace's correctness harness: run every lock and every index
//! under deterministic, seed-replayable schedule perturbation, record
//! complete invoke/return histories, and verify them against the
//! sequential register specification with a Wing–Gong linearizability
//! checker.
//!
//! The pipeline, end to end:
//!
//! ```text
//!   seed ──► chaos schedule (per-thread SplitMix64 streams)
//!             │ yields/spins at lock events + around index ops
//!   workers ─► ThreadRecorder ─► ChaosIndex ─► index under test
//!             │ invoke/return tick windows, per-thread epochs
//!   join ────► partition_by_key ─► check_key (Wing–Gong + memoization)
//!             │
//!   pass ───► CheckSummary        fail ──► Violation + replay command
//! ```
//!
//! Quick start:
//!
//! ```
//! use optiql_check::{run_target, targets, CheckConfig};
//!
//! let cfg = CheckConfig {
//!     threads: 2,
//!     ops_per_thread: 150,
//!     key_space: 32,
//!     clustered: false,
//!     chaos: true,
//! };
//! let ts = targets();
//! let t = ts.iter().find(|t| t.name == "btree-optiql").unwrap();
//! let report = run_target(t, 42, &cfg).expect("linearizable");
//! assert!(report.summary.events > 0);
//! ```
//!
//! The binary sweeps the whole matrix: `cargo run -p optiql-check`, or
//! `cargo run -p optiql-check -- --seed N --target btree-optiql` to
//! replay one cell. See `TESTING.md` at the repo root.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod driver;
pub mod history;
pub mod linearize;
pub mod register;

pub use chaos::ChaosIndex;
pub use driver::{
    run_target, sweep, targets, CheckConfig, Failure, RunReport, SweepEvent, Target, REGISTER_CAP,
};
pub use history::{partition_by_key, HistEvent, Op, Recorder, ThreadRecorder};
pub use linearize::{check_key, check_logs, CheckSummary, Violation, MAX_OPS_PER_KEY};
pub use register::{LockRegister, OptRegister};
