//! Lock-protected register arrays: the smallest structure that turns
//! *any* lock in the workspace into a checkable [`ConcurrentIndex`].
//!
//! The trees only exercise the nine [`IndexLock`] implementations; the
//! writer-only locks (MCS, TTS, TTS-Backoff, Ticket, Ticket-Split) have
//! no index to live in. [`LockRegister`] gives every [`ExclusiveLock`] a
//! home — one lock + one `(present, value)` cell per key — so the
//! linearizability driver sweeps the entire lock family, not just the
//! index-capable subset.
//!
//! [`OptRegister`] is the same array for [`IndexLock`] types, but read
//! with the paper's protocol: optimistic `r_lock`/`r_unlock` lookups
//! (seqlock-style, validation discards torn reads) and writes through
//! `x_lock_adjustable` … `x_finish_adjustable` — a direct miniature of
//! Algorithm 4 including the AOR admission window, at a site where a
//! torn or mis-fenced implementation shows up as a per-key
//! linearizability violation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use optiql::{ExclusiveLock, IndexLock};
use optiql_index_api::ConcurrentIndex;

struct Slot<L> {
    lock: L,
    present: AtomicBool,
    value: AtomicU64,
}

impl<L: Default> Default for Slot<L> {
    fn default() -> Self {
        Slot {
            lock: L::default(),
            present: AtomicBool::new(false),
            value: AtomicU64::new(0),
        }
    }
}

fn make_slots<L: Default>(capacity: usize) -> Box<[CachePadded<Slot<L>>]> {
    (0..capacity.max(1))
        .map(|_| CachePadded::new(Slot::default()))
        .collect()
}

macro_rules! register_common {
    () => {
        /// Number of addressable keys.
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        #[inline]
        fn slot(&self, k: u64) -> &Slot<L> {
            assert!(
                (k as usize) < self.slots.len(),
                "key {k} out of register capacity {}",
                self.slots.len()
            );
            &self.slots[k as usize]
        }

        fn count_from(&self, start: u64, limit: usize) -> usize {
            // Unlocked relaxed sweep: scan_count is covered by the
            // dedicated bounds tests, not the per-key checker.
            self.slots
                .iter()
                .skip(start as usize)
                .filter(|s| s.present.load(Ordering::Relaxed))
                .take(limit)
                .count()
        }

        fn range_items(
            &self,
            start: ::std::ops::Bound<u64>,
            end: ::std::ops::Bound<u64>,
        ) -> Vec<(u64, u64)> {
            // Same relaxed sweep as `count_from`, materialized: registers
            // exist to check per-key lock protocols, not scan protocols,
            // so their "stream" is one ascending pass over the array.
            self.slots
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u64, s))
                .filter(|(k, _)| {
                    optiql_index_api::key_above_start(k, &start)
                        && optiql_index_api::key_below_end(k, &end)
                })
                .filter(|(_, s)| s.present.load(Ordering::Relaxed))
                .map(|(k, s)| (k, s.value.load(Ordering::Relaxed)))
                .collect()
        }
    };
}

/// One lock and one register cell per key; every operation holds the
/// key's lock exclusively. Works for any [`ExclusiveLock`].
pub struct LockRegister<L: ExclusiveLock> {
    slots: Box<[CachePadded<Slot<L>>]>,
}

impl<L: ExclusiveLock> LockRegister<L> {
    /// A register array addressing keys `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        LockRegister {
            slots: make_slots(capacity),
        }
    }

    register_common!();

    /// Run `f` on `(present, value)` of `k`'s cell under its lock,
    /// returning the previous value.
    fn locked<T>(&self, k: u64, f: impl FnOnce(&Slot<L>) -> T) -> T {
        let s = self.slot(k);
        let t = s.lock.x_lock();
        let out = f(s);
        s.lock.x_unlock(t);
        out
    }

    fn read_cell(s: &Slot<L>) -> Option<u64> {
        s.present
            .load(Ordering::Relaxed)
            .then(|| s.value.load(Ordering::Relaxed))
    }
}

impl<L: ExclusiveLock> ConcurrentIndex for LockRegister<L> {
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.locked(k, |s| {
            let prev = Self::read_cell(s);
            s.value.store(v, Ordering::Relaxed);
            s.present.store(true, Ordering::Relaxed);
            prev
        })
    }
    fn update(&self, k: u64, v: u64) -> Option<u64> {
        self.locked(k, |s| {
            let prev = Self::read_cell(s);
            if prev.is_some() {
                s.value.store(v, Ordering::Relaxed);
            }
            prev
        })
    }
    fn lookup(&self, k: u64) -> Option<u64> {
        self.locked(k, Self::read_cell)
    }
    fn remove(&self, k: u64) -> Option<u64> {
        self.locked(k, |s| {
            let prev = Self::read_cell(s);
            s.present.store(false, Ordering::Relaxed);
            prev
        })
    }
    fn scan_count(&self, start: u64, limit: usize) -> usize {
        self.count_from(start, limit)
    }
    fn range(
        &self,
        start: std::ops::Bound<u64>,
        end: std::ops::Bound<u64>,
    ) -> optiql_index_api::RangeIter<'_> {
        optiql_index_api::RangeIter::new(self.range_items(start, end).into_iter())
    }
    fn len(&self) -> usize {
        self.count_from(0, usize::MAX)
    }
}

/// The register array read with the paper's index-locking protocol:
/// optimistic (or pessimistic-shared) lookups, AOR-windowed writes.
pub struct OptRegister<L: IndexLock> {
    slots: Box<[CachePadded<Slot<L>>]>,
}

impl<L: IndexLock> OptRegister<L> {
    /// A register array addressing keys `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        OptRegister {
            slots: make_slots(capacity),
        }
    }

    register_common!();

    /// Write path (Algorithm 4 in miniature): acquire with the AOR
    /// window open, "locate the target" (read the previous state), close
    /// the window, then modify.
    fn write(&self, k: u64, f: impl FnOnce(&Slot<L>, Option<u64>)) -> Option<u64> {
        let s = self.slot(k);
        let t = s.lock.x_lock_adjustable();
        let prev = s
            .present
            .load(Ordering::Relaxed)
            .then(|| s.value.load(Ordering::Relaxed));
        s.lock.x_finish_adjustable(t);
        f(s, prev);
        s.lock.x_unlock(t);
        prev
    }
}

impl<L: IndexLock> ConcurrentIndex for OptRegister<L> {
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.write(k, |s, _| {
            s.value.store(v, Ordering::Relaxed);
            s.present.store(true, Ordering::Relaxed);
        })
    }
    fn update(&self, k: u64, v: u64) -> Option<u64> {
        self.write(k, |s, prev| {
            if prev.is_some() {
                s.value.store(v, Ordering::Relaxed);
            }
        })
    }
    fn lookup(&self, k: u64) -> Option<u64> {
        let s = self.slot(k);
        loop {
            let Some(ver) = s.lock.r_lock() else {
                std::hint::spin_loop();
                continue;
            };
            let present = s.present.load(Ordering::Relaxed);
            let value = s.value.load(Ordering::Relaxed);
            if s.lock.r_unlock(ver) {
                return present.then_some(value);
            }
        }
    }
    fn remove(&self, k: u64) -> Option<u64> {
        self.write(k, |s, _| {
            s.present.store(false, Ordering::Relaxed);
        })
    }
    fn scan_count(&self, start: u64, limit: usize) -> usize {
        self.count_from(start, limit)
    }
    fn range(
        &self,
        start: std::ops::Bound<u64>,
        end: std::ops::Bound<u64>,
    ) -> optiql_index_api::RangeIter<'_> {
        optiql_index_api::RangeIter::new(self.range_items(start, end).into_iter())
    }
    fn len(&self) -> usize {
        self.count_from(0, usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_register_round_trips() {
        let r: LockRegister<optiql::McsLock> = LockRegister::new(8);
        assert_eq!(r.capacity(), 8);
        assert_eq!(r.insert(3, 30), None);
        assert_eq!(r.insert(3, 31), Some(30));
        assert_eq!(r.update(4, 40), None, "update never inserts");
        assert_eq!(r.lookup(3), Some(31));
        assert_eq!(r.len(), 1);
        assert_eq!(r.scan_count(0, 10), 1);
        assert_eq!(r.scan_count(4, 10), 0);
        assert_eq!(r.remove(3), Some(31));
        assert_eq!(r.remove(3), None);
    }

    #[test]
    fn opt_register_round_trips() {
        let r: OptRegister<optiql::OptiQLAor> = OptRegister::new(8);
        assert_eq!(r.insert(1, 10), None);
        assert_eq!(r.lookup(1), Some(10));
        assert_eq!(r.update(1, 11), Some(10));
        assert_eq!(r.lookup(1), Some(11));
        assert_eq!(r.remove(1), Some(11));
        assert_eq!(r.lookup(1), None);
        assert_eq!(r.update(1, 12), None);
        assert_eq!(r.lookup(1), None, "failed update must not write");
    }

    #[test]
    #[should_panic(expected = "out of register capacity")]
    fn out_of_capacity_keys_panic() {
        let r: LockRegister<optiql::TtsLock> = LockRegister::new(4);
        r.insert(4, 0);
    }
}
