//! Invoke/return history recording for [`ConcurrentIndex`] operations.
//!
//! Linearizability checking needs, for every completed operation, the
//! *real-time window* `[invoke, return]` within which its linearization
//! point must fall. This module produces those windows with as little
//! probe effect as the property allows:
//!
//! * **One global tick counter** ([`Recorder`]) stamps invocations and
//!   returns. A single `fetch_add` per boundary is the minimum that
//!   still yields a sound real-time order: ticks are unique and two
//!   non-overlapping operations always observe `a.ret < b.invoke`.
//! * **Per-thread epochs**: each worker owns its own
//!   [`ThreadRecorder`], so log appends touch only thread-local memory
//!   (the `Mutex` inside exists solely to satisfy the trait's `&self`
//!   signature — it is never contended). Logs are merged after the
//!   workers join.
//! * **Per-key partitioning**: [`partition_by_key`] splits the merged
//!   log into independent single-register histories, which is what keeps
//!   checking cheap — the Wing–Gong search runs per key over dozens of
//!   events, never over the full run.
//!
//! `scan_count` and `len` are deliberately *not* recorded: they are not
//! per-key register operations, so the checker cannot judge them (the
//! dedicated scan-bounds tests cover them instead). They still execute —
//! and still perturb the schedule — when a workload issues them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use optiql_index_api::ConcurrentIndex;

/// A recorded operation kind, with the value argument where there is one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `insert(key, v)` — upsert; returns the previous value.
    Insert(u64),
    /// `update(key, v)` — write only if present; returns the previous
    /// value (`None` means "was absent, did nothing").
    Update(u64),
    /// `remove(key)` — returns the removed value.
    Remove,
    /// `lookup(key)` — returns the current value.
    Lookup,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Insert(v) => write!(f, "insert({v})"),
            Op::Update(v) => write!(f, "update({v})"),
            Op::Remove => write!(f, "remove"),
            Op::Lookup => write!(f, "lookup"),
        }
    }
}

/// One completed operation: what ran, what it observed, and the tick
/// window it ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistEvent {
    /// Worker slot that issued the operation.
    pub thread: u32,
    /// Key the operation targeted.
    pub key: u64,
    /// Operation kind and argument.
    pub op: Op,
    /// The `Option<u64>` the index returned.
    pub out: Option<u64>,
    /// Global tick taken immediately before the call.
    pub invoke: u64,
    /// Global tick taken immediately after the return.
    pub ret: u64,
}

impl std::fmt::Display for HistEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>6}..{:<6}] t{} key {} {} -> {:?}",
            self.invoke, self.ret, self.thread, self.key, self.op, self.out
        )
    }
}

/// The shared tick source for one recorded run.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
}

impl Recorder {
    /// A fresh recorder with the clock at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Recorder::default())
    }

    /// Next unique tick. `SeqCst` so the tick cannot be reordered with
    /// the operation it brackets.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Ticks issued so far.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }
}

/// A per-worker recording wrapper: every [`ConcurrentIndex`] call on it
/// is forwarded to `inner` and logged with its invoke/return ticks.
///
/// One instance per worker thread; call [`into_log`](Self::into_log)
/// after joining to harvest that worker's epoch of events.
pub struct ThreadRecorder<I> {
    inner: I,
    recorder: Arc<Recorder>,
    thread: u32,
    log: Mutex<Vec<HistEvent>>,
}

impl<I: ConcurrentIndex> ThreadRecorder<I> {
    /// Wrap `inner` for worker `thread`, stamping ticks from `recorder`.
    pub fn new(inner: I, recorder: Arc<Recorder>, thread: u32) -> Self {
        ThreadRecorder {
            inner,
            recorder,
            thread,
            log: Mutex::new(Vec::new()),
        }
    }

    /// This worker's recorded epoch, in issue order.
    pub fn into_log(self) -> Vec<HistEvent> {
        self.log.into_inner().unwrap()
    }

    #[inline]
    fn record(&self, key: u64, op: Op, out: Option<u64>, invoke: u64, ret: u64) {
        self.log.lock().unwrap().push(HistEvent {
            thread: self.thread,
            key,
            op,
            out,
            invoke,
            ret,
        });
    }

    #[inline]
    fn run_one(&self, key: u64, op: Op, f: impl FnOnce(&I) -> Option<u64>) -> Option<u64> {
        let invoke = self.recorder.tick();
        let out = f(&self.inner);
        let ret = self.recorder.tick();
        self.record(key, op, out, invoke, ret);
        out
    }
}

impl<I: ConcurrentIndex> ConcurrentIndex for ThreadRecorder<I> {
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.run_one(k, Op::Insert(v), |i| i.insert(k, v))
    }
    fn update(&self, k: u64, v: u64) -> Option<u64> {
        self.run_one(k, Op::Update(v), |i| i.update(k, v))
    }
    fn lookup(&self, k: u64) -> Option<u64> {
        self.run_one(k, Op::Lookup, |i| i.lookup(k))
    }
    fn remove(&self, k: u64) -> Option<u64> {
        self.run_one(k, Op::Remove, |i| i.remove(k))
    }
    /// Not recorded (not a per-key register op); still forwarded.
    fn scan_count(&self, start: u64, limit: usize) -> usize {
        self.inner.scan_count(start, limit)
    }
    /// Not recorded, like `scan_count`: the per-key checker cannot judge
    /// multi-key reads, and the differential range tests cover them. The
    /// stream still executes — and still perturbs the schedule — when a
    /// chaos workload drives it.
    fn range(
        &self,
        start: std::ops::Bound<u64>,
        end: std::ops::Bound<u64>,
    ) -> optiql_index_api::RangeIter<'_> {
        self.inner.range(start, end)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn index_stats(&self) -> optiql_index_api::IndexStats {
        self.inner.index_stats()
    }
    fn reclaim_handle(&self) -> Option<optiql_index_api::ReclaimHandle> {
        self.inner.reclaim_handle()
    }
    /// Each constituent lookup is recorded with the whole batch's tick
    /// window: its linearization point provably lies inside the batch's
    /// execution, so the wider window is sound (never rejects a correct
    /// run) while still ordering the batch against non-overlapping ops.
    fn multi_lookup(&self, keys: &[u64]) -> Vec<Option<u64>> {
        let invoke = self.recorder.tick();
        let out = self.inner.multi_lookup(keys);
        let ret = self.recorder.tick();
        for (&k, &o) in keys.iter().zip(out.iter()) {
            self.record(k, Op::Lookup, o, invoke, ret);
        }
        out
    }
    /// As [`multi_lookup`](Self::multi_lookup): per-element events
    /// sharing the batch window. Duplicate keys inside one batch yield
    /// same-window events whose observed results force the checker to
    /// order them correctly.
    fn multi_insert(&self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        let invoke = self.recorder.tick();
        let out = self.inner.multi_insert(pairs);
        let ret = self.recorder.tick();
        for (&(k, v), &o) in pairs.iter().zip(out.iter()) {
            self.record(k, Op::Insert(v), o, invoke, ret);
        }
        out
    }
}

/// Merge per-thread epochs and split them into per-key histories, each
/// sorted by invoke tick (the order the checker expects).
pub fn partition_by_key(logs: Vec<Vec<HistEvent>>) -> Vec<(u64, Vec<HistEvent>)> {
    let mut map: std::collections::HashMap<u64, Vec<HistEvent>> = std::collections::HashMap::new();
    for log in logs {
        for e in log {
            map.entry(e.key).or_default().push(e);
        }
    }
    let mut keys: Vec<(u64, Vec<HistEvent>)> = map.into_iter().collect();
    for (_, h) in keys.iter_mut() {
        h.sort_by_key(|e| e.invoke);
    }
    keys.sort_by_key(|(k, _)| *k);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql_index_api::model::ModelIndex;

    #[test]
    fn windows_nest_and_ticks_are_unique() {
        let rec = Recorder::new();
        let tr = ThreadRecorder::new(ModelIndex::new(), Arc::clone(&rec), 0);
        assert_eq!(tr.insert(1, 10), None);
        assert_eq!(tr.lookup(1), Some(10));
        assert_eq!(tr.remove(1), Some(10));
        assert_eq!(tr.update(1, 11), None);
        let log = tr.into_log();
        assert_eq!(log.len(), 4);
        let mut ticks: Vec<u64> = log.iter().flat_map(|e| [e.invoke, e.ret]).collect();
        ticks.sort_unstable();
        ticks.dedup();
        assert_eq!(ticks.len(), 8, "every tick unique");
        for w in log.windows(2) {
            assert!(w[0].ret < w[1].invoke, "same-thread ops never overlap");
        }
    }

    #[test]
    fn multi_ops_share_one_window() {
        let rec = Recorder::new();
        let tr = ThreadRecorder::new(ModelIndex::new(), Arc::clone(&rec), 3);
        tr.multi_insert(&[(1, 10), (2, 20), (1, 11)]);
        let got = tr.multi_lookup(&[2, 1]);
        assert_eq!(got, vec![Some(20), Some(11)]);
        let log = tr.into_log();
        assert_eq!(log.len(), 5);
        assert!(log[..3].iter().all(|e| e.invoke == log[0].invoke));
        assert!(log[3..].iter().all(|e| e.invoke == log[3].invoke));
        assert_eq!(log[2].out, Some(10), "in-batch duplicate saw first write");
    }

    #[test]
    fn partition_groups_and_sorts() {
        let rec = Recorder::new();
        let a = ThreadRecorder::new(ModelIndex::new(), Arc::clone(&rec), 0);
        a.insert(7, 1);
        a.insert(9, 2);
        a.lookup(7);
        let log_a = a.into_log();
        let keys = partition_by_key(vec![log_a]);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0, 7);
        assert_eq!(keys[0].1.len(), 2);
        assert!(keys[0].1[0].invoke < keys[0].1[1].invoke);
        assert_eq!(keys[1].0, 9);
    }
}
