//! Wing–Gong-style linearizability checking over per-key register
//! histories.
//!
//! Every recorded key is an independent register whose sequential
//! specification is tiny — all four operations return the *previous*
//! value and deterministically produce the next state:
//!
//! | op          | returns    | next state                        |
//! |-------------|------------|-----------------------------------|
//! | `insert(v)` | prev       | `Some(v)`                         |
//! | `update(v)` | prev       | `Some(v)` if present, else absent |
//! | `remove`    | prev       | `None`                            |
//! | `lookup`    | prev/state | unchanged                         |
//!
//! The checker is the classical Wing & Gong (1993) search: repeatedly
//! pick a *minimal* pending operation (one no other pending operation
//! returned before), check its observed result against the register
//! state, apply it, and recurse; backtrack when stuck. Memoizing on
//! `(completed-set, state)` — Lowe's optimization — keeps the search
//! polynomial in practice for register histories. Per-key partitioning
//! bounds each search to the handful of events that touched that key.
//!
//! A failed search produces a [`Violation`]: the longest linearizable
//! prefix the search found and the window of pending operations none of
//! which can linearize next — exactly the evidence a human needs to see
//! *which* overlap is impossible.

use std::collections::HashSet;

use crate::history::{HistEvent, Op};

/// Maximum operations per key the search supports (the completed set is
/// a `u128` bitmask). Drivers size their key spaces to stay well below
/// this; exceeding it is a configuration error, not a soundness hole.
pub const MAX_OPS_PER_KEY: usize = 128;

/// Sequential register semantics: expected return is always the state
/// before the op; returns the state after.
#[inline]
fn next_state(op: Op, state: Option<u64>) -> Option<u64> {
    match op {
        Op::Insert(v) => Some(v),
        Op::Update(v) => state.map(|_| v),
        Op::Remove => None,
        Op::Lookup => state,
    }
}

/// Evidence that one key's history admits no linearization.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The key whose history is not linearizable.
    pub key: u64,
    /// Total operations recorded for the key.
    pub total_ops: usize,
    /// The longest linearizable prefix found, in linearization order.
    pub linearized: Vec<HistEvent>,
    /// Register state after that prefix.
    pub state: Option<u64>,
    /// Pending operations at the stuck point (the violating window),
    /// sorted by invoke tick.
    pub window: Vec<HistEvent>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "linearizability violation on key {}: no order explains the history",
            self.key
        )?;
        writeln!(
            f,
            "  longest linearizable prefix: {}/{} ops, register = {:?}",
            self.linearized.len(),
            self.total_ops,
            self.state
        )?;
        if !self.linearized.is_empty() {
            writeln!(f, "  linearized prefix (in linearization order):")?;
            let skip = self.linearized.len().saturating_sub(8);
            if skip > 0 {
                writeln!(f, "    ... {skip} earlier ops elided ...")?;
            }
            for e in &self.linearized[skip..] {
                writeln!(f, "    {e}")?;
            }
        }
        writeln!(
            f,
            "  stuck window ({} pending ops, none can linearize next):",
            self.window.len()
        )?;
        for e in &self.window {
            writeln!(f, "    {e}")?;
        }
        Ok(())
    }
}

/// Aggregate result of checking one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Distinct keys checked.
    pub keys: usize,
    /// Total operations across all keys.
    pub events: usize,
    /// Largest single-key history seen.
    pub max_ops_per_key: usize,
}

/// Check one key's history (sorted by invoke tick) for linearizability.
pub fn check_key(key: u64, history: &[HistEvent]) -> Result<(), Box<Violation>> {
    let n = history.len();
    assert!(
        n <= MAX_OPS_PER_KEY,
        "key {key}: {n} ops exceed MAX_OPS_PER_KEY={MAX_OPS_PER_KEY}; \
         enlarge the key space or shorten the run"
    );
    if n == 0 {
        return Ok(());
    }
    let full: u128 = if n == MAX_OPS_PER_KEY {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };

    // Iterative DFS with an explicit stack of (done-mask, state, path).
    // `path` is only materialized for the best prefix seen, to keep the
    // hot search allocation-free.
    let mut memo: HashSet<(u128, Option<u64>)> = HashSet::new();
    let mut best_done: u128 = 0;
    let mut best_state: Option<u64> = None;
    let mut best_path: Vec<usize> = Vec::new();

    // Stack frames: the current path as indices, rebuilt incrementally.
    // frame = (done, state, next candidate index to try).
    let mut path: Vec<usize> = Vec::new();
    let mut stack: Vec<(u128, Option<u64>, usize)> = vec![(0, None, 0)];
    memo.insert((0, None));

    while let Some(&mut (done, state, ref mut cursor)) = stack.last_mut() {
        if done == full {
            return Ok(());
        }
        // Minimal ops: invoke tick strictly before the earliest return
        // among pending ops (ticks are unique, and an op's own return
        // cannot precede its invoke, so this is exactly "no pending op
        // returned before I was invoked").
        let min_ret = (0..n)
            .filter(|i| done & (1u128 << i) == 0)
            .map(|i| history[i].ret)
            .min()
            .expect("not full, so something is pending");

        let mut advanced = false;
        while *cursor < n {
            let i = *cursor;
            *cursor += 1;
            if done & (1u128 << i) != 0 {
                continue;
            }
            let e = &history[i];
            if e.invoke > min_ret {
                continue; // not minimal: another pending op returned first
            }
            if e.out != state {
                continue; // observed result contradicts the register
            }
            let ndone = done | (1u128 << i);
            let nstate = next_state(e.op, state);
            if !memo.insert((ndone, nstate)) {
                continue; // already explored an equivalent configuration
            }
            if ndone.count_ones() > best_done.count_ones() {
                best_done = ndone;
                best_state = nstate;
                best_path = path.clone();
                best_path.push(i);
            }
            path.push(i);
            stack.push((ndone, nstate, 0));
            advanced = true;
            break;
        }
        if !advanced {
            stack.pop();
            path.pop();
        }
    }

    let linearized: Vec<HistEvent> = best_path.iter().map(|&i| history[i]).collect();
    let mut window: Vec<HistEvent> = (0..n)
        .filter(|i| best_done & (1u128 << i) == 0)
        .map(|i| history[i])
        .collect();
    window.sort_by_key(|e| e.invoke);
    // The full pending set can be large; the violation is visible in the
    // earliest overlapping cluster, so cap what we carry around.
    window.truncate(16);
    Err(Box::new(Violation {
        key,
        total_ops: n,
        linearized,
        state: best_state,
        window,
    }))
}

/// Check a whole run: partition per-thread logs by key and run the
/// Wing–Gong search on every key. Returns the first violation found
/// (keys are checked in ascending order for determinism).
pub fn check_logs(logs: Vec<Vec<HistEvent>>) -> Result<CheckSummary, Box<Violation>> {
    let keys = crate::history::partition_by_key(logs);
    let mut summary = CheckSummary::default();
    for (key, history) in &keys {
        summary.keys += 1;
        summary.events += history.len();
        summary.max_ops_per_key = summary.max_ops_per_key.max(history.len());
        check_key(*key, history)?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u32, op: Op, out: Option<u64>, invoke: u64, ret: u64) -> HistEvent {
        HistEvent {
            thread,
            key: 0,
            op,
            out,
            invoke,
            ret,
        }
    }

    #[test]
    fn sequential_history_linearizes() {
        let h = vec![
            ev(0, Op::Insert(1), None, 0, 1),
            ev(0, Op::Lookup, Some(1), 2, 3),
            ev(0, Op::Update(2), Some(1), 4, 5),
            ev(0, Op::Remove, Some(2), 6, 7),
            ev(0, Op::Lookup, None, 8, 9),
            ev(0, Op::Update(9), None, 10, 11),
        ];
        assert!(check_key(0, &h).is_ok());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // t0: insert(5) over [0,10]; t1: lookup -> Some(5) over [1,2].
        // The lookup returned before the insert did, but they overlap, so
        // insert-then-lookup is a valid linearization.
        let h = vec![
            ev(0, Op::Insert(5), None, 0, 10),
            ev(1, Op::Lookup, Some(5), 1, 2),
        ];
        assert!(check_key(0, &h).is_ok());
    }

    #[test]
    fn stale_read_after_return_is_a_violation() {
        // insert(5) completed strictly before the lookup began, yet the
        // lookup observed the initial None: not linearizable.
        let h = vec![
            ev(0, Op::Insert(5), None, 0, 1),
            ev(1, Op::Lookup, None, 2, 3),
        ];
        let v = check_key(7, &h).unwrap_err();
        assert_eq!(v.key, 7);
        assert_eq!(v.total_ops, 2);
        assert_eq!(v.linearized.len(), 1, "the insert linearizes, then stuck");
        let text = v.to_string();
        assert!(text.contains("violation on key 7"), "{text}");
        assert!(text.contains("lookup"), "{text}");
    }

    #[test]
    fn lost_update_is_a_violation() {
        // Two non-overlapping inserts, then a lookup that still sees the
        // first value: the second write was lost.
        let h = vec![
            ev(0, Op::Insert(1), None, 0, 1),
            ev(1, Op::Insert(2), Some(1), 2, 3),
            ev(0, Op::Lookup, Some(1), 4, 5),
        ];
        assert!(check_key(0, &h).is_err());
    }

    #[test]
    fn duplicate_observation_is_a_violation() {
        // Both removes claim to have removed the same value — one of
        // them must have seen None.
        let h = vec![
            ev(0, Op::Insert(9), None, 0, 1),
            ev(1, Op::Remove, Some(9), 2, 10),
            ev(2, Op::Remove, Some(9), 3, 11),
        ];
        assert!(check_key(0, &h).is_err());
    }

    #[test]
    fn update_on_absent_key_does_not_write() {
        // update on an absent register returns None and must NOT set the
        // value — a following lookup still sees None.
        let h = vec![
            ev(0, Op::Update(4), None, 0, 1),
            ev(0, Op::Lookup, None, 2, 3),
        ];
        assert!(check_key(0, &h).is_ok());
        // If the index wrongly inserted, the lookup would see Some(4) —
        // and the checker must reject that.
        let bad = vec![
            ev(0, Op::Update(4), None, 0, 1),
            ev(0, Op::Lookup, Some(4), 2, 3),
        ];
        assert!(check_key(0, &bad).is_err());
    }

    #[test]
    fn same_window_batch_duplicates_order_by_observation() {
        // Two inserts from one batch share a window; observations force
        // insert(10) before insert(11).
        let h = vec![
            ev(0, Op::Insert(10), None, 0, 5),
            ev(0, Op::Insert(11), Some(10), 0, 5),
            ev(1, Op::Lookup, Some(11), 6, 7),
        ];
        assert!(check_key(0, &h).is_ok());
    }

    #[test]
    fn deep_overlap_still_linearizes_fast() {
        // 60 concurrent lookups overlapping one insert: stresses the
        // memoized search (identical states collapse immediately).
        let mut h = vec![ev(0, Op::Insert(1), None, 0, 1000)];
        for i in 0..60 {
            h.push(ev(1 + i, Op::Lookup, None, 1 + i as u64, 1001 + i as u64));
        }
        h.sort_by_key(|e| e.invoke);
        assert!(check_key(0, &h).is_ok());
    }

    #[test]
    fn check_logs_aggregates_and_reports_first_key() {
        let good = vec![ev(0, Op::Insert(1), None, 0, 1)];
        let mut bad = vec![
            ev(0, Op::Insert(5), None, 10, 11),
            ev(1, Op::Lookup, None, 12, 13),
        ];
        for e in &mut bad {
            e.key = 42;
        }
        let err = check_logs(vec![good.clone(), bad]).unwrap_err();
        assert_eq!(err.key, 42);
        let ok = check_logs(vec![good]).unwrap();
        assert_eq!(ok.keys, 1);
        assert_eq!(ok.events, 1);
        assert_eq!(ok.max_ops_per_key, 1);
    }
}
