//! Zero-cost gating of the `stats` subsystem: in default builds every
//! recording site is a no-op and the registry stays empty; with
//! `--features stats` the same workload moves real counters. Both halves
//! run the identical lock workload so the gating itself is the only
//! variable.

use optiql::stats::{self, Event, Snapshot};
use optiql::{ExclusiveLock, IndexLock, OptLock, OptiQL, OptiQLNor};

/// A workload touching every reader path outcome plus writer queueing.
fn exercise_locks() {
    let ql = OptiQL::new();
    let nor = OptiQLNor::new();
    let ol = OptLock::new();

    for _ in 0..10 {
        // Free-word admissions + validations.
        let v = ql.r_lock().unwrap();
        assert!(ql.r_unlock(v));
        let v = ol.r_lock().unwrap();
        assert!(ol.r_unlock(v));

        // Rejections while exclusively held, then stale validation failure.
        let stale = nor.r_lock().unwrap();
        let t = nor.x_lock();
        assert!(nor.r_lock().is_none());
        nor.x_unlock(t);
        assert!(!nor.r_unlock(stale));

        // Upgrade success and failure.
        let v = ol.r_lock().unwrap();
        let t = ol.try_upgrade(v).unwrap();
        ol.x_unlock(t);
        assert!(ol.try_upgrade(v).is_none());
    }
}

#[cfg(not(feature = "stats"))]
#[test]
fn without_the_feature_nothing_is_recorded() {
    exercise_locks();
    // Recording compiled to no-ops: the snapshot is identical to the
    // default even though hundreds of events just "happened".
    assert_eq!(stats::snapshot(), Snapshot::default());
    assert_eq!(stats::snapshot().total(), 0);
    // record/reset are harmless no-ops, not panics.
    stats::record(Event::ExAcquire);
    stats::reset();
    assert_eq!(stats::snapshot(), Snapshot::default());
}

#[cfg(feature = "stats")]
#[test]
fn with_the_feature_the_same_workload_moves_counters() {
    stats::reset();
    let before = stats::snapshot();
    exercise_locks();
    let d = stats::snapshot().since(&before);
    // 10 iterations × 3 free-word reads (ql, ol, nor-stale-begin)…
    assert!(d.get(Event::ReadAdmit) >= 30, "{d}");
    // …10 rejections while nor was held…
    assert!(d.get(Event::ReadReject) >= 10, "{d}");
    // …20 successful validations, 10 stale failures…
    assert!(d.get(Event::ReadValidateOk) >= 20, "{d}");
    assert!(d.get(Event::ReadValidateFail) >= 10, "{d}");
    // …and 10 upgrade successes + 10 failures, 10 plain writer acquires.
    assert!(d.get(Event::UpgradeOk) >= 10, "{d}");
    assert!(d.get(Event::UpgradeFail) >= 10, "{d}");
    assert!(d.get(Event::ExAcquire) >= 10, "{d}");
    // Single-threaded: nobody ever queued or handed over.
    assert_eq!(d.get(Event::ExQueueWait), 0, "{d}");
    // Derived success rate matches the counted events.
    let ok = d.get(Event::ReadValidateOk) as f64;
    let fails = (d.get(Event::ReadValidateFail) + d.get(Event::ReadReject)) as f64;
    assert!((d.reader_success_rate() - ok / (ok + fails)).abs() < 1e-12);
}

#[test]
fn enabled_flag_matches_build_configuration() {
    assert_eq!(stats::ENABLED, cfg!(feature = "stats"));
    // Snapshot math is feature-independent.
    let s = Snapshot::default();
    assert_eq!(s.read_attempts(), 0);
    assert_eq!(s.since(&s), s);
}
