//! Cross-lock semantic tests: every lock claiming `IndexLock` must satisfy
//! the same observable contract, and the queue-based ones must satisfy the
//! MCS-RW reader-chaining and fairness scenarios the paper relies on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use optiql::{
    read_critical, ExclusiveLock, IndexLock, McsRwLock, OptLock, OptLockBackoff, OptiCLH,
    OptiCLHNor, OptiQL, OptiQLAor, OptiQLNor, PthreadRwLock, XGuard,
};

/// The common contract every IndexLock must satisfy single-threadedly.
fn contract<L: IndexLock>() {
    let l = L::default();
    // Fresh lock: a read begins and validates.
    let v = l.r_lock().expect("fresh lock admits readers");
    assert!(l.recheck(v));
    assert!(l.r_unlock(v));
    // Write cycle.
    let t = l.x_lock();
    l.x_unlock(t);
    // Reads validate again afterwards.
    let v2 = l.r_lock().unwrap();
    assert!(l.r_unlock(v2));
    // For optimistic locks the old snapshot must now fail; pessimistic
    // locks "validate" trivially (they re-acquire) — both are conforming.
    if !L::PESSIMISTIC {
        assert!(!l.recheck(v), "stale snapshot must not recheck");
    }
    // Guards compose with every lock.
    {
        let _g = XGuard::lock(&l);
    }
    let out = read_critical(&l, || 42);
    assert_eq!(out, 42);
}

#[test]
fn all_index_locks_satisfy_the_contract() {
    contract::<OptLock>();
    contract::<OptLockBackoff>();
    contract::<OptiQL>();
    contract::<OptiQLNor>();
    contract::<OptiQLAor>();
    contract::<OptiCLH>();
    contract::<OptiCLHNor>();
    contract::<McsRwLock>();
    contract::<PthreadRwLock>();
}

/// Exclusive exclusion holds for every lock (split increments would tear).
fn exclusion<L: ExclusiveLock>() {
    let l = Arc::new(L::default());
    let c = Arc::new(AtomicU64::new(0));
    let hs: Vec<_> = (0..4)
        .map(|_| {
            let l = Arc::clone(&l);
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let t = l.x_lock();
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                    l.x_unlock(t);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(c.load(Ordering::Relaxed), 20_000, "{}", L::NAME);
}

#[test]
fn all_locks_provide_mutual_exclusion() {
    exclusion::<OptLock>();
    exclusion::<OptLockBackoff>();
    exclusion::<OptiQL>();
    exclusion::<OptiQLNor>();
    exclusion::<OptiQLAor>();
    exclusion::<OptiCLH>();
    exclusion::<OptiCLHNor>();
    exclusion::<McsRwLock>();
    exclusion::<PthreadRwLock>();
    exclusion::<optiql::McsLock>();
    exclusion::<optiql::TtsLock>();
    exclusion::<optiql::TtsBackoff>();
    exclusion::<optiql::TicketLock>();
    exclusion::<optiql::TicketLockSplit>();
}

#[test]
fn mcs_rw_readers_chain_behind_a_blocked_reader() {
    // Scenario from the M&S fair-RW algorithm: W holds; R1 queues (blocked);
    // R2 queues behind R1 and must be chained awake when R1 is granted —
    // both readers end up active simultaneously.
    let l = Arc::new(McsRwLock::new());
    let active_readers = Arc::new(AtomicU64::new(0));
    let both_seen = Arc::new(AtomicBool::new(false));

    let w = l.x_lock();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let l = Arc::clone(&l);
            let active = Arc::clone(&active_readers);
            let both = Arc::clone(&both_seen);
            let h = std::thread::spawn(move || {
                let v = l.r_lock().unwrap();
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                if now == 2 {
                    both.store(true, Ordering::SeqCst);
                }
                // Hold the shared lock until both readers overlapped (or a
                // generous timeout on slow hosts).
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while !both.load(Ordering::SeqCst) && std::time::Instant::now() < deadline {
                    std::thread::yield_now();
                }
                active.fetch_sub(1, Ordering::SeqCst);
                l.r_unlock(v);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            h
        })
        .collect();
    // Both readers are queued behind the writer now; release it.
    l.x_unlock(w);
    for h in readers {
        h.join().unwrap();
    }
    assert!(
        both_seen.load(Ordering::SeqCst),
        "chained readers must overlap after the writer releases"
    );
    assert!(!l.is_busy());
}

#[test]
fn mcs_rw_writer_waits_for_all_active_readers() {
    let l = Arc::new(McsRwLock::new());
    let r1 = l.r_lock().unwrap();
    let r2 = l.r_lock().unwrap();
    let write_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let l = Arc::clone(&l);
        let d = Arc::clone(&write_done);
        std::thread::spawn(move || {
            let t = l.x_lock();
            d.store(true, Ordering::SeqCst);
            l.x_unlock(t);
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        !write_done.load(Ordering::SeqCst),
        "writer must block while readers are active"
    );
    l.r_unlock(r1);
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        !write_done.load(Ordering::SeqCst),
        "one reader still active: writer must keep waiting"
    );
    l.r_unlock(r2);
    writer.join().unwrap();
    assert!(write_done.load(Ordering::SeqCst));
}

#[test]
fn queue_locks_grant_fifo_under_staggered_arrival() {
    fn fifo<L: ExclusiveLock>() {
        let l = Arc::new(L::default());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t0 = l.x_lock();
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                let order = Arc::clone(&order);
                let h = std::thread::spawn(move || {
                    let t = l.x_lock();
                    order.lock().push(i);
                    l.x_unlock(t);
                });
                std::thread::sleep(std::time::Duration::from_millis(25));
                h
            })
            .collect();
        l.x_unlock(t0);
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(&*order.lock(), &[0, 1, 2, 3], "{} must be FIFO", L::NAME);
    }
    fifo::<optiql::McsLock>();
    fifo::<OptiQL>();
    fifo::<OptiQLNor>();
    fifo::<OptiCLH>();
    fifo::<optiql::TicketLock>();
}

#[test]
fn opportunistic_read_never_validates_across_two_critical_sections() {
    // The §5.3 ABA scenario: a writer repeatedly increments a counter; a
    // reader that snapshots during one handover window must never validate
    // after a *different* critical section completed.
    let l = Arc::new(OptiQL::new());
    let c = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for _ in 0..2 {
        let (l, c, stop) = (Arc::clone(&l), Arc::clone(&c), Arc::clone(&stop));
        writers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let t = l.x_lock();
                c.fetch_add(1, Ordering::Relaxed);
                l.x_unlock(t);
            }
        }));
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(400);
    while std::time::Instant::now() < deadline {
        if let Some(v) = l.r_lock() {
            let before = c.load(Ordering::Relaxed);
            std::thread::yield_now(); // give writers room to run CSes
            let after = c.load(Ordering::Relaxed);
            if l.r_unlock(v) {
                assert_eq!(
                    before, after,
                    "validated read overlapped a critical section (ABA)"
                );
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}
