//! Cross-lock semantic tests: every lock claiming `IndexLock` must satisfy
//! the same observable contract, and the queue-based ones must satisfy the
//! MCS-RW reader-chaining and fairness scenarios the paper relies on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use optiql::{
    read_critical, ExclusiveLock, IndexLock, McsRwLock, OptLock, OptLockBackoff, OptiCLH,
    OptiCLHNor, OptiQL, OptiQLAor, OptiQLNor, PthreadRwLock, XGuard,
};

/// The common contract every IndexLock must satisfy single-threadedly.
fn contract<L: IndexLock>() {
    let l = L::default();
    // Fresh lock: a read begins and validates.
    let v = l.r_lock().expect("fresh lock admits readers");
    assert!(l.recheck(v));
    assert!(l.r_unlock(v));
    // Write cycle.
    let t = l.x_lock();
    l.x_unlock(t);
    // Reads validate again afterwards.
    let v2 = l.r_lock().unwrap();
    assert!(l.r_unlock(v2));
    // For optimistic locks the old snapshot must now fail; pessimistic
    // locks "validate" trivially (they re-acquire) — both are conforming.
    if !L::PESSIMISTIC {
        assert!(!l.recheck(v), "stale snapshot must not recheck");
    }
    // Guards compose with every lock.
    {
        let _g = XGuard::lock(&l);
    }
    let out = read_critical(&l, || 42);
    assert_eq!(out, 42);
}

#[test]
fn all_index_locks_satisfy_the_contract() {
    contract::<OptLock>();
    contract::<OptLockBackoff>();
    contract::<OptiQL>();
    contract::<OptiQLNor>();
    contract::<OptiQLAor>();
    contract::<OptiCLH>();
    contract::<OptiCLHNor>();
    contract::<McsRwLock>();
    contract::<PthreadRwLock>();
}

/// Exclusive exclusion holds for every lock (split increments would tear).
fn exclusion<L: ExclusiveLock>() {
    let l = Arc::new(L::default());
    let c = Arc::new(AtomicU64::new(0));
    let hs: Vec<_> = (0..4)
        .map(|_| {
            let l = Arc::clone(&l);
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let t = l.x_lock();
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                    l.x_unlock(t);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(c.load(Ordering::Relaxed), 20_000, "{}", L::NAME);
}

#[test]
fn all_locks_provide_mutual_exclusion() {
    exclusion::<OptLock>();
    exclusion::<OptLockBackoff>();
    exclusion::<OptiQL>();
    exclusion::<OptiQLNor>();
    exclusion::<OptiQLAor>();
    exclusion::<OptiCLH>();
    exclusion::<OptiCLHNor>();
    exclusion::<McsRwLock>();
    exclusion::<PthreadRwLock>();
    exclusion::<optiql::McsLock>();
    exclusion::<optiql::TtsLock>();
    exclusion::<optiql::TtsBackoff>();
    exclusion::<optiql::TicketLock>();
    exclusion::<optiql::TicketLockSplit>();
}

#[test]
fn mcs_rw_readers_chain_behind_a_blocked_reader() {
    // Scenario from the M&S fair-RW algorithm: W holds; R1 queues (blocked);
    // R2 queues behind R1 and must be chained awake when R1 is granted —
    // both readers end up active simultaneously.
    let l = Arc::new(McsRwLock::new());
    let active_readers = Arc::new(AtomicU64::new(0));
    let both_seen = Arc::new(AtomicBool::new(false));

    let w = l.x_lock();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let l = Arc::clone(&l);
            let active = Arc::clone(&active_readers);
            let both = Arc::clone(&both_seen);
            let h = std::thread::spawn(move || {
                let v = l.r_lock().unwrap();
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                if now == 2 {
                    both.store(true, Ordering::SeqCst);
                }
                // Hold the shared lock until both readers overlapped (or a
                // generous timeout on slow hosts).
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while !both.load(Ordering::SeqCst) && std::time::Instant::now() < deadline {
                    std::thread::yield_now();
                }
                active.fetch_sub(1, Ordering::SeqCst);
                l.r_unlock(v);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            h
        })
        .collect();
    // Both readers are queued behind the writer now; release it.
    l.x_unlock(w);
    for h in readers {
        h.join().unwrap();
    }
    assert!(
        both_seen.load(Ordering::SeqCst),
        "chained readers must overlap after the writer releases"
    );
    assert!(!l.is_busy());
}

#[test]
fn mcs_rw_writer_waits_for_all_active_readers() {
    let l = Arc::new(McsRwLock::new());
    let r1 = l.r_lock().unwrap();
    let r2 = l.r_lock().unwrap();
    let write_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let l = Arc::clone(&l);
        let d = Arc::clone(&write_done);
        std::thread::spawn(move || {
            let t = l.x_lock();
            d.store(true, Ordering::SeqCst);
            l.x_unlock(t);
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        !write_done.load(Ordering::SeqCst),
        "writer must block while readers are active"
    );
    l.r_unlock(r1);
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        !write_done.load(Ordering::SeqCst),
        "one reader still active: writer must keep waiting"
    );
    l.r_unlock(r2);
    writer.join().unwrap();
    assert!(write_done.load(Ordering::SeqCst));
}

#[test]
fn queue_locks_grant_fifo_under_staggered_arrival() {
    fn fifo<L: ExclusiveLock>() {
        let l = Arc::new(L::default());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t0 = l.x_lock();
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                let order = Arc::clone(&order);
                let h = std::thread::spawn(move || {
                    let t = l.x_lock();
                    order.lock().push(i);
                    l.x_unlock(t);
                });
                std::thread::sleep(std::time::Duration::from_millis(25));
                h
            })
            .collect();
        l.x_unlock(t0);
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(&*order.lock(), &[0, 1, 2, 3], "{} must be FIFO", L::NAME);
    }
    fifo::<optiql::McsLock>();
    fifo::<OptiQL>();
    fifo::<OptiQLNor>();
    fifo::<OptiCLH>();
    fifo::<optiql::TicketLock>();
}

/// Drive one writer handover deterministically with barriers: T2 queues
/// behind the main thread, main releases into the handover, and every
/// window observation happens at a barrier-pinned protocol step — no
/// sleeps, no timing assumptions.
///
/// Returns (snapshot taken during the handover, whether a reader was
/// admitted during the handover, whether that snapshot validated before
/// the granted writer closed the window / released).
fn run_handover<const OPPORTUNISTIC: bool>(
    l: &Arc<optiql::OptiQLCore<OPPORTUNISTIC>>,
) -> (Option<u64>, bool) {
    use optiql::word::{is_locked, word_id};
    use std::sync::Barrier;

    let id1 = optiql::qnode::alloc();
    let qn1 = optiql::qnode::to_ptr(id1);
    // Step 0: main acquires on the fast path.
    assert!(!l.acquire_ex_with(id1, qn1), "fast path while free");

    // granted: T2 owns the lock. checked: main inspected the window.
    let granted = Arc::new(Barrier::new(2));
    let checked = Arc::new(Barrier::new(2));
    let t2 = {
        let (l, granted, checked) = (Arc::clone(l), Arc::clone(&granted), Arc::clone(&checked));
        std::thread::spawn(move || {
            let id2 = optiql::qnode::alloc();
            let qn2 = optiql::qnode::to_ptr(id2);
            // Step 1: queue behind main; blocks until main releases.
            assert!(l.acquire_ex_with(id2, qn2), "must queue behind holder");
            granted.wait(); // step 3 reached: we own the lock, window still open
            checked.wait(); // step 4 done: main has sampled the open window
            l.close_opread_window();
            l.release_ex_with(id2, qn2);
            optiql::qnode::free(id2);
        })
    };

    // Step 2: wait (on the protocol state itself, not on time) until T2
    // has swapped into the tail, then release into the handover.
    loop {
        let w = l.raw();
        if is_locked(w) && word_id(w) != id1 {
            break; // T2 is the tail: enqueued
        }
        std::thread::yield_now();
    }
    // While T2 is queued (pre-handover) no reader may enter.
    assert!(l.acquire_sh().is_none(), "locked, window closed: reject");
    l.release_ex_with(id1, qn1);
    optiql::qnode::free(id1);

    granted.wait();
    // Deterministic window observation: T2 holds the lock and is parked at
    // the barrier, so the word cannot change under us.
    let snap = l.acquire_sh();
    let validated = snap.is_some_and(|v| l.release_sh(v));
    checked.wait();
    t2.join().unwrap();
    (snap, validated)
}

#[test]
fn optiql_admits_readers_during_handover_window_deterministic() {
    use optiql::word::{is_locked, is_opread};
    let l = Arc::new(optiql::OptiQLCore::<true>::new());
    let (snap, validated) = run_handover(&l);
    let snap = snap.expect("OptiQL handover window must admit readers");
    assert!(
        is_locked(snap) && is_opread(snap),
        "window state is LOCKED|OPREAD"
    );
    assert!(validated, "reader fully inside the window validates");
    // After the protocol finished (two exclusive rounds), reads see v=2.
    assert_eq!(l.acquire_sh().unwrap(), 2);
}

#[test]
fn optiql_nor_rejects_readers_during_handover_deterministic() {
    let l = Arc::new(optiql::OptiQLCore::<false>::new());
    let (snap, _) = run_handover(&l);
    assert!(
        snap.is_none(),
        "OptiQL-NOR must keep readers out through the whole handover"
    );
    assert_eq!(l.acquire_sh().unwrap(), 2);
}

#[test]
fn reader_overlapping_writer_modification_fails_release_sh() {
    // Barrier-sequenced torn-read scenario: the reader snapshots, the
    // writer then runs a full critical section, and only afterwards does
    // the reader validate — release_sh must fail, for both admission
    // paths (free word and opportunistic window).
    use std::sync::Barrier;
    let l = Arc::new(OptiQL::new());
    let snapped = Arc::new(Barrier::new(2));
    let wrote = Arc::new(Barrier::new(2));
    let writer = {
        let (l, snapped, wrote) = (Arc::clone(&l), Arc::clone(&snapped), Arc::clone(&wrote));
        std::thread::spawn(move || {
            snapped.wait(); // reader holds its snapshot
            let t = l.x_lock();
            l.x_unlock(t);
            wrote.wait(); // modification round complete
        })
    };
    let v = l.acquire_sh().expect("free lock admits");
    snapped.wait();
    wrote.wait();
    assert!(
        !l.release_sh(v),
        "snapshot spanning a writer's critical section must not validate"
    );
    assert!(!l.recheck(v), "recheck agrees with release_sh");
    writer.join().unwrap();
}

#[test]
fn opportunistic_read_never_validates_across_two_critical_sections() {
    // The §5.3 ABA scenario: a writer repeatedly increments a counter; a
    // reader that snapshots during one handover window must never validate
    // after a *different* critical section completed.
    let l = Arc::new(OptiQL::new());
    let c = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for _ in 0..2 {
        let (l, c, stop) = (Arc::clone(&l), Arc::clone(&c), Arc::clone(&stop));
        writers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let t = l.x_lock();
                c.fetch_add(1, Ordering::Relaxed);
                l.x_unlock(t);
            }
        }));
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(400);
    while std::time::Instant::now() < deadline {
        if let Some(v) = l.r_lock() {
            let before = c.load(Ordering::Relaxed);
            std::thread::yield_now(); // give writers room to run CSes
            let after = c.load(Ordering::Relaxed);
            if l.r_unlock(v) {
                assert_eq!(
                    before, after,
                    "validated read overlapped a critical section (ABA)"
                );
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}
