//! Property tests for the 8-byte lock-word bit layout (paper Figure 3a).
//!
//! The word packs two status bits, a 10-bit queue node ID and a 52-bit
//! version; every helper in `optiql::word` must preserve its own field and
//! leave the others untouched for *all* inputs, not just the unit-test
//! corner cases.

use proptest::prelude::*;

use optiql::word::{
    bump_version, is_locked, is_opread, locked_word, readable, word_id, word_version,
    ID_FIELD_MASK, ID_SHIFT, LOCKED, MAX_QNODES, OPREAD, STATUS_MASK, VERSION_MASK,
};

/// Any valid queue node ID (10 bits).
fn any_id() -> impl Strategy<Value = u16> {
    (0..MAX_QNODES as u64).prop_map(|v| v as u16)
}

/// Any valid version (52 bits), weighted toward the wraparound boundary.
fn any_version() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0..=VERSION_MASK,
        1 => (VERSION_MASK - 64)..=VERSION_MASK,
        1 => 0u64..64,
    ]
}

proptest! {
    #[test]
    fn locked_word_roundtrips_id(id in any_id()) {
        let w = locked_word(id);
        prop_assert!(is_locked(w));
        prop_assert!(!is_opread(w));
        prop_assert_eq!(word_id(w), id);
        prop_assert_eq!(word_version(w), 0);
    }

    #[test]
    fn field_extraction_is_independent(
        id in any_id(),
        version in any_version(),
        locked in any::<bool>(),
        opread in any::<bool>(),
    ) {
        // Assemble a word from arbitrary field values; each extractor must
        // see exactly its own field.
        let mut w = ((id as u64) << ID_SHIFT) | version;
        if locked {
            w |= LOCKED;
        }
        if opread {
            w |= OPREAD;
        }
        prop_assert_eq!(word_id(w), id);
        prop_assert_eq!(word_version(w), version);
        prop_assert_eq!(is_locked(w), locked);
        prop_assert_eq!(is_opread(w), opread);
    }

    #[test]
    fn bump_version_stays_in_field_and_increments_mod_2_52(v in any_version()) {
        let b = bump_version(v);
        prop_assert_eq!(b & !VERSION_MASK, 0, "bump left the version field");
        if v == VERSION_MASK {
            prop_assert_eq!(b, 0, "52-bit wraparound");
        } else {
            prop_assert_eq!(b, v + 1);
        }
    }

    #[test]
    fn bump_version_never_produces_status_or_id_bits(v in any::<u64>()) {
        // Even garbage inputs (e.g. a full word passed by mistake) cannot
        // make the bumped version spill outside the version field.
        let b = bump_version(v);
        prop_assert_eq!(b & (STATUS_MASK | ID_FIELD_MASK), 0);
    }

    #[test]
    fn readable_iff_not_exclusively_locked(
        id in any_id(),
        version in any_version(),
        locked in any::<bool>(),
        opread in any::<bool>(),
    ) {
        let mut w = ((id as u64) << ID_SHIFT) | version;
        if locked {
            w |= LOCKED;
        }
        if opread {
            w |= OPREAD;
        }
        // Paper Alg 2 l.3: admitted unless status is exactly LOCKED —
        // free words and open handover windows (LOCKED|OPREAD) both admit.
        prop_assert_eq!(readable(w), !locked || opread);
    }

    #[test]
    fn version_chain_from_any_start_never_revisits_early(
        start in any_version(),
        steps in 1usize..512,
    ) {
        // Bumping repeatedly walks the 2^52 cycle: within any short window
        // all versions are distinct (this is what makes optimistic
        // validation sound between nearby critical sections).
        let mut v = start;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..steps {
            prop_assert!(seen.insert(v), "version repeated within the window");
            v = bump_version(v);
        }
    }
}
