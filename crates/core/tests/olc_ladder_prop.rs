//! Property-based state-machine coverage for the [`RestartLoop`]
//! escalation ladder (free → spin → backoff → yield).
//!
//! A shadow model replays arbitrary `Pause`/`Reset` command sequences
//! and checks, after every command:
//!
//! * the phase is a pure function of attempts-since-reset, with the
//!   documented budget boundaries (`FREE_ATTEMPTS`, `SPIN_BUDGET`,
//!   `BACKOFF_BUDGET`);
//! * escalation is **monotone** between resets — the ladder never steps
//!   down on its own;
//! * `reset` restores the bottom rung exactly (attempts 0, phase Free);
//! * the [`SharedIndexStats`] accounting matches the model: every pause
//!   beyond the free attempt counts one restart, every yield-phase pause
//!   counts one scheduler escalation, and `reset` never erases history.

use proptest::prelude::*;

use optiql::olc::{RestartPhase, SharedIndexStats, BACKOFF_BUDGET, FREE_ATTEMPTS, SPIN_BUDGET};
use optiql::{stats::Event, RestartLoop};

#[derive(Debug, Clone, Copy)]
enum Cmd {
    Pause,
    Reset,
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    // Pause-heavy so runs regularly climb past BACKOFF_BUDGET into the
    // yield rung instead of resetting right back down.
    prop_oneof![
        5 => Just(Cmd::Pause),
        1 => Just(Cmd::Reset),
    ]
}

fn rank(p: RestartPhase) -> u32 {
    match p {
        RestartPhase::Free => 0,
        RestartPhase::Spin => 1,
        RestartPhase::Backoff => 2,
        RestartPhase::Yield => 3,
    }
}

fn expected_phase(attempts: u32) -> RestartPhase {
    if attempts <= FREE_ATTEMPTS {
        RestartPhase::Free
    } else if attempts <= SPIN_BUDGET {
        RestartPhase::Spin
    } else if attempts <= BACKOFF_BUDGET {
        RestartPhase::Backoff
    } else {
        RestartPhase::Yield
    }
}

proptest! {
    #[test]
    fn ladder_matches_shadow_model(cmds in proptest::collection::vec(cmd_strategy(), 1..200)) {
        let stats = SharedIndexStats::new();
        let mut rs = RestartLoop::new(&stats, Event::IndexRestartBtree);

        let mut attempts: u32 = 0; // since last reset
        let mut restarts: u64 = 0; // cumulative, never reset
        let mut escalations: u64 = 0;
        let mut last_rank = 0;

        prop_assert_eq!(rs.phase(), RestartPhase::Free);
        prop_assert_eq!(rs.attempts(), 0);

        for cmd in &cmds {
            match cmd {
                Cmd::Pause => {
                    rs.pause();
                    attempts += 1;
                    let want = expected_phase(attempts);
                    if want != RestartPhase::Free {
                        restarts += 1;
                    }
                    if want == RestartPhase::Yield {
                        escalations += 1;
                    }
                    prop_assert_eq!(rs.phase(), want, "attempts={}", attempts);
                    // Monotone escalation between resets.
                    prop_assert!(
                        rank(rs.phase()) >= last_rank,
                        "ladder stepped down without reset: {} -> {}",
                        last_rank,
                        rank(rs.phase())
                    );
                    last_rank = rank(rs.phase());
                }
                Cmd::Reset => {
                    rs.reset();
                    attempts = 0;
                    last_rank = 0;
                    prop_assert_eq!(rs.phase(), RestartPhase::Free);
                }
            }
            prop_assert_eq!(rs.attempts(), attempts);
            let snap = stats.snapshot();
            prop_assert_eq!(snap.restarts, restarts);
            prop_assert_eq!(snap.escalations, escalations);
        }
    }

    #[test]
    fn budgets_partition_every_attempt_count(attempts in 0u32..64) {
        // Boundary sanity independent of the command machine: exactly one
        // rung claims each attempt count, in ladder order.
        let want = expected_phase(attempts);
        let budgets = [
            (RestartPhase::Free, attempts <= FREE_ATTEMPTS),
            (RestartPhase::Spin, attempts > FREE_ATTEMPTS && attempts <= SPIN_BUDGET),
            (RestartPhase::Backoff, attempts > SPIN_BUDGET && attempts <= BACKOFF_BUDGET),
            (RestartPhase::Yield, attempts > BACKOFF_BUDGET),
        ];
        for (phase, claims) in budgets {
            prop_assert_eq!(claims, phase == want);
        }
    }
}

/// Reset-on-success in context: drive a loop deep into the yield rung,
/// reset it, and require the next pause to behave like a fresh loop's.
#[test]
fn reset_restores_fresh_loop_pacing() {
    let stats = SharedIndexStats::new();
    let mut rs = RestartLoop::new(&stats, Event::IndexRestartBtree);
    for _ in 0..16 {
        rs.pause();
    }
    assert_eq!(rs.phase(), RestartPhase::Yield);
    let deep = stats.snapshot();

    rs.reset();
    assert_eq!(rs.attempts(), 0);
    assert_eq!(rs.phase(), RestartPhase::Free);
    assert_eq!(stats.snapshot(), deep, "reset must not rewrite history");

    rs.pause();
    assert_eq!(
        rs.phase(),
        RestartPhase::Free,
        "first post-reset try is free"
    );
    assert_eq!(
        stats.snapshot().restarts,
        deep.restarts,
        "free attempt after reset must not count a restart"
    );
}
