//! RAII guard drop paths and the adjustable-opportunistic-read (AOR)
//! window lifecycle (§7.4), driven deterministically with barriers.
//!
//! The in-crate guard tests cover the happy paths; these integration
//! tests pin down the corner cases the index write protocols rely on:
//! early drops, drop-after-upgrade, and the AOR window staying open
//! until `x_finish_aor` — including the abort path where a writer
//! unlocks without ever finishing.

use std::sync::{Arc, Barrier};

use optiql::word::{is_locked, is_opread};
use optiql::{AdjustableOpRead, IndexLock, OptLock, OptiQL, OptiQLAor, OptiQLNor, XGuard};

#[test]
fn early_drop_releases_before_scope_end() {
    let l = OptiQL::new();
    let g = XGuard::lock(&l);
    assert!(l.is_locked_ex());
    drop(g);
    // Still inside the scope: the lock must already be free and usable.
    assert!(!l.is_locked_ex());
    let v = l.r_lock().expect("released by early drop");
    assert!(l.r_unlock(v));
}

#[test]
fn explicit_unlock_then_drop_releases_once() {
    // `unlock` consumes the token; the subsequent implicit drop must not
    // release again (a double x_unlock would corrupt the version).
    let l = OptiQL::new();
    let v0 = l.r_lock().unwrap();
    XGuard::lock(&l).unlock();
    let v1 = l.r_lock().unwrap();
    assert_eq!(v1, v0 + 1, "exactly one release round");
}

#[test]
fn dropped_upgrade_guard_releases() {
    let l = OptLock::new();
    let v = l.r_lock().unwrap();
    {
        let _g = XGuard::upgrade(&l, v).expect("fresh snapshot upgrades");
        assert!(l.is_locked_ex());
    }
    assert!(!l.is_locked_ex());
    // The write round bumped the version, so the old snapshot is stale.
    assert!(!l.recheck(v));
}

#[test]
fn guard_composes_with_every_lock_drop_path() {
    fn check<L: IndexLock>() {
        let l = L::default();
        {
            let _g = XGuard::lock(&l);
        }
        // Dropped guard left the lock fully usable.
        let v = l.r_lock().expect("free after guard drop");
        assert!(l.r_unlock(v));
    }
    check::<OptiQL>();
    check::<OptiQLNor>();
    check::<OptiQLAor>();
    check::<OptLock>();
    check::<optiql::OptiCLH>();
    check::<optiql::McsRwLock>();
    check::<optiql::PthreadRwLock>();
}

#[test]
fn aor_fast_path_token_needs_no_window_close() {
    // Uncontended x_lock_aor takes the fast path: no handover happened,
    // so there is no window and x_finish_aor is a no-op.
    let l = OptiQL::new();
    let t = l.x_lock_aor();
    assert!(l.is_locked_ex());
    assert!(
        l.r_lock().is_none(),
        "fast-path AOR write admits no readers"
    );
    l.x_finish_aor(t);
    assert!(l.r_lock().is_none(), "finish changes nothing on fast path");
    l.x_unlock_aor(t);
    assert!(!l.is_locked_ex());
    assert_eq!(l.r_lock().unwrap(), 1);
}

/// Queued AOR path, barrier-sequenced: the granted writer's window must
/// stay open across the grant until it calls `x_finish_aor`, and close at
/// exactly that point.
#[test]
fn aor_window_stays_open_until_finish() {
    let l = Arc::new(OptiQL::new());
    let id1 = optiql::qnode::alloc();
    let qn1 = optiql::qnode::to_ptr(id1);
    assert!(!l.acquire_ex_with(id1, qn1));

    let granted = Arc::new(Barrier::new(2));
    let observed = Arc::new(Barrier::new(2));
    let finished = Arc::new(Barrier::new(2));
    let drained = Arc::new(Barrier::new(2));
    let t2 = {
        let l = Arc::clone(&l);
        let (granted, observed, finished, drained) = (
            Arc::clone(&granted),
            Arc::clone(&observed),
            Arc::clone(&finished),
            Arc::clone(&drained),
        );
        std::thread::spawn(move || {
            let t = l.x_lock_aor(); // queues behind main, grant opens window
            granted.wait();
            observed.wait(); // main sampled the open window
            l.x_finish_aor(t); // AOR search done: close the window
            finished.wait();
            drained.wait(); // main confirmed the closed state
            l.x_unlock_aor(t);
        })
    };

    // Wait on protocol state until T2 is queued, then hand over.
    loop {
        let w = l.raw();
        if is_locked(w) && optiql::word::word_id(w) != id1 {
            break;
        }
        std::thread::yield_now();
    }
    l.release_ex_with(id1, qn1);
    optiql::qnode::free(id1);

    granted.wait();
    // T2 owns the lock, parked at the barrier, window open: deterministic.
    let snap = l.acquire_sh().expect("AOR window admits readers");
    assert!(is_locked(snap) && is_opread(snap));
    assert!(l.release_sh(snap), "reader inside the AOR window validates");
    observed.wait();
    finished.wait();
    // Window closed by x_finish_aor; T2 still holds the lock.
    assert!(
        l.acquire_sh().is_none(),
        "closed AOR window rejects readers"
    );
    assert!(!l.release_sh(snap), "window snapshot is dead after close");
    drained.wait();
    t2.join().unwrap();
    assert_eq!(l.acquire_sh().unwrap(), 2, "two completed write rounds");
}

#[test]
fn aor_abort_path_unlock_without_finish_closes_window() {
    // A writer that aborts its AOR search calls x_unlock_aor directly;
    // the abandoned window must be closed before release so later readers
    // cannot validate against the stale handover state. Single-threaded
    // fast path cannot open a window, so enact the queued state manually.
    let l = Arc::new(OptiQL::new());
    let id1 = optiql::qnode::alloc();
    let qn1 = optiql::qnode::to_ptr(id1);
    assert!(!l.acquire_ex_with(id1, qn1));

    let granted = Arc::new(Barrier::new(2));
    let t2 = {
        let l = Arc::clone(&l);
        let granted = Arc::clone(&granted);
        std::thread::spawn(move || {
            let t = l.x_lock_aor();
            granted.wait();
            // Abort: never call x_finish_aor.
            l.x_unlock_aor(t);
        })
    };
    loop {
        let w = l.raw();
        if is_locked(w) && optiql::word::word_id(w) != id1 {
            break;
        }
        std::thread::yield_now();
    }
    l.release_ex_with(id1, qn1);
    optiql::qnode::free(id1);
    granted.wait();
    t2.join().unwrap();
    // Fully released: free word, version 2, readers validate.
    assert!(!l.is_locked_ex());
    let v = l.acquire_sh().expect("free after aborted AOR unlock");
    assert_eq!(v, 2);
    assert!(l.release_sh(v));
}
