//! # OptiQL — robust optimistic locking for memory-optimized indexes
//!
//! A from-scratch Rust implementation of **OptiQL** (Shi, Yan & Wang,
//! SIGMOD 2024): an optimistic lock that extends the classic MCS queue lock
//! with optimistic and *opportunistic* read capabilities, achieving
//!
//! * **high performance** (D1): readers never write shared memory;
//! * **robustness** (D2): writers queue and spin locally, so throughput
//!   plateaus instead of collapsing under contention;
//! * **fairness** (D3): writers are granted in FIFO order;
//! * **compactness** (D4): the lock is a single 8-byte word;
//! * **index-locking amenability** (D5): readers keep the exact
//!   `acquire_sh`/`release_sh` interface of centralized optimistic locks.
//!
//! The crate also contains every baseline lock from the paper's evaluation
//! (centralized optimistic "OptLock", TTS, MCS, a fair queue-based
//! reader-writer MCS packed into 8 bytes, a pthread-style pessimistic
//! rwlock, ticket locks and backoff variants), the queue-node pool with
//! compact ID ↔ pointer translation, the unified [`traits::IndexLock`]
//! interface that the companion index crates (`optiql-btree`, `optiql-art`)
//! build their lock-coupling protocols on, and the shared OLC restart
//! protocol ([`olc`]: restart pacing, optimistic read guards, unified
//! per-index accounting) those crates drive their `'restart:` loops with.
//!
//! ## Quick start
//!
//! ```
//! use optiql::{OptiQL, IndexLock, ExclusiveLock};
//!
//! let lock = OptiQL::new();
//!
//! // Optimistic read: snapshot, read data, validate.
//! let v = lock.r_lock().expect("lock is free");
//! // ... read the protected data ...
//! assert!(lock.r_unlock(v), "no concurrent writer: validation passes");
//!
//! // Exclusive write: queue-based, FIFO among writers.
//! let token = lock.x_lock();
//! // ... modify the protected data ...
//! lock.x_unlock(token);
//!
//! // The version moved on, so the old snapshot no longer validates.
//! assert!(!lock.r_unlock(v));
//! ```
//!
//! ## Protecting data
//!
//! Optimistic readers run concurrently with writers and only detect the
//! conflict afterwards, so data protected by these locks must tolerate
//! concurrent reads. Store fields in atomic cells (`AtomicU64` etc.) and
//! access them with `Relaxed` ordering — that compiles to plain loads and
//! stores, and validation discards every inconsistent snapshot. The index
//! crates in this workspace follow exactly this pattern.
//!
//! ## Observability (`stats` feature)
//!
//! Every lock records admission, validation, queueing, handover and
//! upgrade events through [`stats`]. In default builds the recording
//! sites compile to no-ops; building with `--features stats` turns them
//! into relaxed increments on thread-local counter shards, readable via
//! [`stats::snapshot`] / resettable via [`stats::reset`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backoff;
pub mod chaos;
pub mod clh;
pub mod guard;
pub mod mcs;
pub mod mcs_rw;
pub mod olc;
pub mod optiql;
pub mod optlock;
pub mod pthread;
pub mod qnode;
pub mod spin;
pub mod stats;
pub mod ticket;
pub mod traits;
pub mod tts;
pub mod word;

pub use crate::clh::{OptiCLH, OptiCLHNor, OptiClhCore};
pub use crate::guard::{read_critical, try_read_critical, XGuard};
pub use crate::mcs::McsLock;
pub use crate::mcs_rw::McsRwLock;
pub use crate::olc::{IndexStats, OptimisticGuard, RestartLoop, SharedIndexStats};
pub use crate::optiql::{OptiQL, OptiQLAor, OptiQLCore, OptiQLNor};
pub use crate::optlock::{OptLock, OptLockBackoff};
pub use crate::pthread::PthreadRwLock;
pub use crate::ticket::{TicketLock, TicketLockSplit};
pub use crate::traits::{AdjustableOpRead, ExclusiveLock, IndexLock, WriteStrategy, WriteToken};
pub use crate::tts::{TtsBackoff, TtsLock};
