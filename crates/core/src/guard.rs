//! RAII and closure-based ergonomics on top of the raw lock protocols.
//!
//! The raw `IndexLock` interface mirrors the paper's C-style API (explicit
//! tokens and version snapshots) because that is what the index
//! lock-coupling protocols need. For application code, this module adds:
//!
//! * [`XGuard`] — RAII exclusive guard (unlocks on drop, panic-safe);
//! * [`read_critical`] — run a closure under optimistic read, retrying
//!   until it validates (the "read critical section" idiom of OLC \[26\]);
//! * [`try_read_critical`] — single-attempt variant.
//!
//! The closure passed to [`read_critical`] may observe torn intermediate
//! state (that is the nature of optimistic reads); its *return value* is
//! only surfaced once validation passes, and it must not perform side
//! effects that depend on consistency.

use crate::spin::Spinner;
use crate::traits::{IndexLock, WriteToken};

/// RAII exclusive guard: releases the lock when dropped.
pub struct XGuard<'a, L: IndexLock> {
    lock: &'a L,
    token: Option<WriteToken>,
}

impl<'a, L: IndexLock> XGuard<'a, L> {
    /// Blockingly acquire `lock` in exclusive mode.
    pub fn lock(lock: &'a L) -> Self {
        let token = lock.x_lock();
        XGuard {
            lock,
            token: Some(token),
        }
    }

    /// Try to upgrade a validated read snapshot into a guard.
    pub fn upgrade(lock: &'a L, snapshot: u64) -> Option<Self> {
        lock.try_upgrade(snapshot).map(|token| XGuard {
            lock,
            token: Some(token),
        })
    }

    /// Release explicitly (equivalent to drop, but reads naturally at call
    /// sites that want a visible unlock point).
    pub fn unlock(mut self) {
        if let Some(t) = self.token.take() {
            self.lock.x_unlock(t);
        }
    }

    /// The raw token (e.g. to inspect the queue node ID in tests).
    pub fn token(&self) -> WriteToken {
        self.token.expect("guard already released")
    }
}

impl<L: IndexLock> Drop for XGuard<'_, L> {
    fn drop(&mut self) {
        if let Some(t) = self.token.take() {
            self.lock.x_unlock(t);
        }
    }
}

/// Run `f` under an optimistic read of `lock`, retrying until the snapshot
/// validates. Returns `f`'s result from the first validated execution.
pub fn read_critical<L: IndexLock, T>(lock: &L, mut f: impl FnMut() -> T) -> T {
    let mut s = Spinner::new();
    loop {
        if let Some(out) = try_read_critical(lock, &mut f) {
            return out;
        }
        s.spin();
    }
}

/// Single-attempt optimistic read: `None` when the lock was held (without
/// an opportunistic-read window) or validation failed.
pub fn try_read_critical<L: IndexLock, T>(lock: &L, f: &mut impl FnMut() -> T) -> Option<T> {
    let v = lock.r_lock()?;
    let out = f();
    lock.r_unlock(v).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optiql::OptiQL;
    use crate::optlock::OptLock;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn guard_unlocks_on_drop() {
        let l = OptiQL::new();
        {
            let _g = XGuard::lock(&l);
            assert!(l.is_locked_ex());
        }
        assert!(!l.is_locked_ex());
    }

    #[test]
    fn guard_unlocks_on_panic() {
        let l = Arc::new(OptiQL::new());
        let l2 = Arc::clone(&l);
        let r = std::thread::spawn(move || {
            let _g = XGuard::lock(&*l2);
            panic!("boom");
        })
        .join();
        assert!(r.is_err());
        assert!(!l.is_locked_ex(), "panic must not leak the lock");
        // And the lock is still usable.
        XGuard::lock(&*l).unlock();
    }

    #[test]
    fn upgrade_guard_from_snapshot() {
        let l = OptLock::new();
        let v = l.r_lock().unwrap();
        let g = XGuard::upgrade(&l, v).expect("fresh snapshot upgrades");
        assert!(l.is_locked_ex());
        g.unlock();
        assert!(!l.is_locked_ex());
        assert!(XGuard::upgrade(&l, v).is_none(), "stale snapshot refused");
    }

    #[test]
    fn read_critical_returns_consistent_pairs() {
        let l = Arc::new(OptiQL::new());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let (l, a, b, stop) = (
                Arc::clone(&l),
                Arc::clone(&a),
                Arc::clone(&b),
                Arc::clone(&stop),
            );
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let g = XGuard::lock(&*l);
                    let v = a.load(Ordering::Relaxed) + 1;
                    a.store(v, Ordering::Relaxed);
                    b.store(v, Ordering::Relaxed);
                    g.unlock();
                    std::thread::yield_now();
                }
            })
        };
        for _ in 0..2_000 {
            let (x, y) = read_critical(&*l, || {
                (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed))
            });
            assert_eq!(x, y, "validated read saw torn pair");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn try_read_critical_fails_while_locked() {
        let l = OptiQL::new();
        let g = XGuard::lock(&l);
        assert!(try_read_critical(&l, &mut || 0).is_none());
        g.unlock();
        assert_eq!(try_read_critical(&l, &mut || 7), Some(7));
    }
}
