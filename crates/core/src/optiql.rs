//! OptiQL: the optimistic queuing lock (paper §4–5).
//!
//! OptiQL extends the MCS lock with optimistic read capabilities:
//!
//! 1. **Writer queue** — exclusive requesters form an MCS-style FIFO queue
//!    and spin locally, giving robustness under contention and fairness
//!    among writers (paper D2/D3).
//! 2. **Optimistic reads** — readers never write shared memory; they
//!    snapshot the 8-byte lock word and validate it after reading
//!    (Algorithm 2), exactly like centralized optimistic locks.
//! 3. **Opportunistic read** — because a queued lock is *always* in the
//!    locked state during handover, readers would starve whenever writers
//!    queue. During handover (after the holder finished its critical
//!    section, before the successor is granted) the data is consistent, so
//!    the releasing writer publishes `OPREAD | version` on the word and
//!    readers are admitted in that window (§5.3). The version must ride
//!    along to defeat the ABA scenario described in §5.3.
//!
//! The lock word layout is defined in [`crate::word`]; queue nodes are
//! translated from compact IDs by [`crate::qnode`] (§6.3).
//!
//! [`OptiQL`] enables opportunistic read; [`OptiQLNor`] (paper
//! "OptiQL-NOR") disables it, saving two atomics per handover at the cost
//! of starving readers whenever writers queue. [`OptiQL`] additionally
//! implements [`AdjustableOpRead`] ("AOR", §5.3): the caller may keep the
//! reader-admission window open until it has located its write target.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::qnode::{self, QNode};
use crate::spin::Spinner;
use crate::stats::{record, Event};
use crate::traits::{AdjustableOpRead, ExclusiveLock, IndexLock, WriteStrategy, WriteToken};
use crate::word::{
    bump_version, is_locked, locked_word, readable, word_id, word_version, INVALID_VERSION, OPREAD,
    VERSION_MASK,
};

/// Token flag: the opportunistic-read window is still open and must be
/// closed (with a `FETCH_AND`) before data modification / release.
const AOR_PENDING: u64 = 1 << 32;

/// Shared implementation; `OPPORTUNISTIC` selects OptiQL vs OptiQL-NOR.
pub struct OptiQLCore<const OPPORTUNISTIC: bool> {
    word: AtomicU64,
}

/// OptiQL with opportunistic read (the paper's headline configuration).
pub type OptiQL = OptiQLCore<true>;
/// OptiQL without opportunistic read (paper "OptiQL-NOR").
pub type OptiQLNor = OptiQLCore<false>;

impl<const OPPORTUNISTIC: bool> Default for OptiQLCore<OPPORTUNISTIC> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const OPPORTUNISTIC: bool> OptiQLCore<OPPORTUNISTIC> {
    /// New, unlocked, version 0.
    pub const fn new() -> Self {
        OptiQLCore {
            word: AtomicU64::new(0),
        }
    }

    /// Current raw lock word (diagnostic).
    #[inline]
    pub fn raw(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    // ---------------------------------------------------------------
    // Reader protocol (paper Algorithm 2) — identical to centralized
    // optimistic locks: no queue node, no address translation.
    // ---------------------------------------------------------------

    /// `acquire_sh`: snapshot the word; `None` when a writer holds the lock
    /// and opportunistic read is off.
    #[inline]
    pub fn acquire_sh(&self) -> Option<u64> {
        let v = self.word.load(Ordering::Acquire);
        if readable(v) {
            record(if is_locked(v) {
                Event::OpReadAdmit
            } else {
                Event::ReadAdmit
            });
            Some(v)
        } else {
            record(Event::ReadReject);
            None
        }
    }

    /// `release_sh`: validate that the word still equals the snapshot.
    /// The `Acquire` fence orders all data reads before the validation load.
    #[inline]
    pub fn release_sh(&self, v: u64) -> bool {
        fence(Ordering::Acquire);
        let ok = self.word.load(Ordering::Relaxed) == v;
        record(if ok {
            Event::ReadValidateOk
        } else {
            Event::ReadValidateFail
        });
        ok
    }

    // ---------------------------------------------------------------
    // Writer protocol (paper Algorithm 3).
    // ---------------------------------------------------------------

    /// `acquire_ex` with a caller-managed queue node. Returns `true` when
    /// the acquisition went through the queue (i.e. a predecessor handed
    /// the lock over), in which case the opportunistic-read window is open
    /// until [`Self::close_opread_window`] runs; the wrapped trait impls
    /// deal with this automatically.
    pub fn acquire_ex_with(&self, id: u16, qn: &QNode) -> bool {
        qn.reset();
        // Record ourselves as the latest requester: locked bit on,
        // opportunistic read off, version bits zeroed (Alg 3 l.2).
        let prev = self.word.swap(locked_word(id), Ordering::AcqRel);
        if !is_locked(prev) {
            // Lock was free: we hold it. Our release-version is the
            // previous word's version + 1 (Alg 3 l.4).
            qn.version
                .store(bump_version(word_version(prev)), Ordering::Relaxed);
            record(Event::ExAcquire);
            false
        } else {
            // Queue behind the predecessor and spin locally (Alg 3 l.7-9).
            record(Event::ExQueueWait);
            let pred = qnode::to_ptr(word_id(prev));
            pred.next
                .store(qn as *const QNode as *mut QNode, Ordering::Release);
            let mut s = Spinner::new();
            while qn.version.load(Ordering::Acquire) == INVALID_VERSION {
                s.spin();
            }
            record(Event::ExAcquire);
            true
        }
    }

    /// Close the opportunistic-read window after a queued handover
    /// (Alg 3 l.11): clear `OPREAD` and the version bits in one atomic.
    /// Readers that snapshotted the handover word will now fail validation.
    #[inline]
    pub fn close_opread_window(&self) {
        self.word
            .fetch_and(!(OPREAD | VERSION_MASK), Ordering::AcqRel);
        record(Event::OpReadWindowClose);
    }

    /// `release_ex` with the queue node used at acquire (Alg 3 l.13-23).
    pub fn release_ex_with(&self, id: u16, qn: &QNode) {
        let my_version = qn.version.load(Ordering::Relaxed);
        debug_assert_ne!(my_version, INVALID_VERSION);
        if qn.next.load(Ordering::Acquire).is_null() {
            // No known successor: publish the new version and unlock in one
            // CAS. The expected value pins both the locked bit and our own
            // queue node ID — if any requester swapped in since, this fails.
            if self
                .word
                .compare_exchange(
                    locked_word(id),
                    my_version,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
        }
        if OPPORTUNISTIC {
            // Handover window: data is consistent until the successor is
            // granted. Publish OPREAD + our version so readers can sneak
            // in; the version must ride along or a reader could pass
            // validation across two critical sections (ABA, §5.3).
            self.word.fetch_or(OPREAD | my_version, Ordering::Release);
        }
        // Wait for the successor to link itself (Alg 3 l.20-21).
        let mut s = Spinner::new();
        let mut next = qn.next.load(Ordering::Acquire);
        while next.is_null() {
            s.spin();
            next = qn.next.load(Ordering::Acquire);
        }
        // Grant: pass the incremented version (Alg 3 l.23).
        unsafe {
            (*next)
                .version
                .store(bump_version(my_version), Ordering::Release);
        }
        record(Event::ExHandover);
    }

    /// Upgrade a reader at snapshot `v` to a writer (§6.2, added for ART).
    ///
    /// Succeeds only when the word is completely free and unchanged; on
    /// success the word carries the provided queue node so later writers
    /// still queue behind us.
    pub fn try_upgrade_with(&self, v: u64, id: u16, qn: &QNode) -> bool {
        if v & crate::word::STATUS_MASK != 0 {
            // Never upgrade from an opportunistic-read snapshot: the word's
            // queue-node field belongs to the writer queue and swapping it
            // out would orphan the queued successor.
            record(Event::UpgradeFail);
            return false;
        }
        qn.reset();
        qn.version.store(bump_version(v), Ordering::Relaxed);
        let ok = self
            .word
            .compare_exchange(v, locked_word(id), Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        record(if ok {
            Event::UpgradeOk
        } else {
            Event::UpgradeFail
        });
        ok
    }
}

impl<const OPPORTUNISTIC: bool> ExclusiveLock for OptiQLCore<OPPORTUNISTIC> {
    const NAME: &'static str = if OPPORTUNISTIC {
        "OptiQL"
    } else {
        "OptiQL-NOR"
    };

    #[inline]
    fn x_lock(&self) -> WriteToken {
        let id = qnode::alloc();
        let queued = self.acquire_ex_with(id, qnode::to_ptr(id));
        if queued && OPPORTUNISTIC {
            self.close_opread_window();
        }
        WriteToken::from_qnode(id)
    }

    #[inline]
    fn x_unlock(&self, t: WriteToken) {
        // Tolerate an abandoned AOR window (e.g. the Algorithm 4 "parent
        // changed, release and retry" path): close it before releasing.
        if OPPORTUNISTIC && t.0 & AOR_PENDING != 0 {
            self.close_opread_window();
        }
        let id = t.qnode_id();
        self.release_ex_with(id, qnode::to_ptr(id));
        qnode::free(id);
    }
}

impl<const OPPORTUNISTIC: bool> IndexLock for OptiQLCore<OPPORTUNISTIC> {
    const PESSIMISTIC: bool = false;
    const STRATEGY: WriteStrategy = WriteStrategy::DirectLock;

    #[inline]
    fn r_lock(&self) -> Option<u64> {
        self.acquire_sh()
    }

    #[inline]
    fn r_unlock(&self, v: u64) -> bool {
        self.release_sh(v)
    }

    #[inline]
    fn recheck(&self, v: u64) -> bool {
        fence(Ordering::Acquire);
        let ok = self.word.load(Ordering::Relaxed) == v;
        record(if ok {
            Event::ReadValidateOk
        } else {
            Event::ReadValidateFail
        });
        ok
    }

    #[inline]
    fn try_upgrade(&self, v: u64) -> Option<WriteToken> {
        let id = qnode::alloc();
        if self.try_upgrade_with(v, id, qnode::to_ptr(id)) {
            Some(WriteToken::from_qnode(id))
        } else {
            qnode::free(id);
            None
        }
    }

    #[inline]
    fn is_locked_ex(&self) -> bool {
        is_locked(self.word.load(Ordering::Relaxed))
    }

    #[inline]
    fn x_lock_adjustable(&self) -> WriteToken {
        if OPPORTUNISTIC {
            let id = qnode::alloc();
            let queued = self.acquire_ex_with(id, qnode::to_ptr(id));
            if queued {
                WriteToken(id as u64 | AOR_PENDING)
            } else {
                WriteToken::from_qnode(id)
            }
        } else {
            self.x_lock()
        }
    }

    #[inline]
    fn x_finish_adjustable(&self, token: WriteToken) {
        if OPPORTUNISTIC && token.0 & AOR_PENDING != 0 {
            self.close_opread_window();
        }
    }
}

/// OptiQL with the adjustable-opportunistic-read *index strategy*
/// ("OptiQL-AOR", §7.4): identical lock, but index write paths keep the
/// reader-admission window open while they search for their target slot.
#[derive(Default)]
pub struct OptiQLAor {
    inner: OptiQL,
}

impl OptiQLAor {
    /// New, unlocked, version 0.
    pub const fn new() -> Self {
        OptiQLAor {
            inner: OptiQL::new(),
        }
    }
}

impl ExclusiveLock for OptiQLAor {
    const NAME: &'static str = "OptiQL-AOR";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        self.inner.x_lock()
    }

    #[inline]
    fn x_unlock(&self, t: WriteToken) {
        self.inner.x_unlock(t)
    }
}

impl IndexLock for OptiQLAor {
    const PESSIMISTIC: bool = false;
    const STRATEGY: WriteStrategy = WriteStrategy::DirectLockAor;

    #[inline]
    fn r_lock(&self) -> Option<u64> {
        self.inner.r_lock()
    }

    #[inline]
    fn r_unlock(&self, v: u64) -> bool {
        self.inner.r_unlock(v)
    }

    #[inline]
    fn recheck(&self, v: u64) -> bool {
        self.inner.recheck(v)
    }

    #[inline]
    fn try_upgrade(&self, v: u64) -> Option<WriteToken> {
        self.inner.try_upgrade(v)
    }

    #[inline]
    fn is_locked_ex(&self) -> bool {
        self.inner.is_locked_ex()
    }

    #[inline]
    fn x_lock_adjustable(&self) -> WriteToken {
        self.inner.x_lock_adjustable()
    }

    #[inline]
    fn x_finish_adjustable(&self, token: WriteToken) {
        self.inner.x_finish_adjustable(token)
    }
}

impl AdjustableOpRead for OptiQL {
    #[inline]
    fn x_lock_aor(&self) -> WriteToken {
        let id = qnode::alloc();
        let queued = self.acquire_ex_with(id, qnode::to_ptr(id));
        if queued {
            // Leave the opportunistic-read window open; the caller closes
            // it with `x_finish_aor` once it has found its write target.
            WriteToken(id as u64 | AOR_PENDING)
        } else {
            WriteToken::from_qnode(id)
        }
    }

    #[inline]
    fn x_finish_aor(&self, token: WriteToken) {
        if token.0 & AOR_PENDING != 0 {
            self.close_opread_window();
        }
    }
}

impl OptiQL {
    /// Unlock a token obtained from [`AdjustableOpRead::x_lock_aor`],
    /// closing the window first if the caller aborted without finishing.
    #[inline]
    pub fn x_unlock_aor(&self, token: WriteToken) {
        self.x_finish_aor(token);
        self.x_unlock(WriteToken::from_qnode(token.qnode_id()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn uncontended_write_cycle_bumps_version() {
        let l = OptiQL::new();
        let v0 = l.acquire_sh().unwrap();
        assert_eq!(v0, 0);
        let t = l.x_lock();
        assert!(l.is_locked_ex());
        assert!(
            l.acquire_sh().is_none(),
            "no opread while held, pre-release"
        );
        l.x_unlock(t);
        let v1 = l.acquire_sh().unwrap();
        assert_eq!(v1, 1, "version visible on word after release");
        assert!(l.release_sh(v1));
    }

    #[test]
    fn nor_variant_same_single_thread_semantics() {
        let l = OptiQLNor::new();
        let t = l.x_lock();
        assert!(l.acquire_sh().is_none());
        l.x_unlock(t);
        assert_eq!(l.acquire_sh().unwrap(), 1);
    }

    #[test]
    fn stale_reader_fails_validation() {
        let l = OptiQL::new();
        let v = l.acquire_sh().unwrap();
        let t = l.x_lock();
        l.x_unlock(t);
        assert!(!l.release_sh(v));
    }

    #[test]
    fn upgrade_from_free_word() {
        let l = OptiQL::new();
        let v = l.r_lock().unwrap();
        let t = l.try_upgrade(v).expect("upgrade from fresh snapshot");
        assert!(l.is_locked_ex());
        l.x_unlock(t);
        assert_eq!(l.r_lock().unwrap(), v + 1);
        // Stale snapshot cannot upgrade.
        assert!(l.try_upgrade(v).is_none());
    }

    #[test]
    fn upgrade_refused_from_opread_snapshot() {
        // Construct an opread-looking snapshot and ensure try_upgrade_with
        // refuses before even attempting a CAS.
        let l = OptiQL::new();
        let fake = crate::word::LOCKED | OPREAD | 5;
        let id = qnode::alloc();
        assert!(!l.try_upgrade_with(fake, id, qnode::to_ptr(id)));
        qnode::free(id);
    }

    #[test]
    fn writers_serialize_and_versions_count_rounds() {
        let l = Arc::new(OptiQL::new());
        let c = Arc::new(Counter::new(0));
        const THREADS: usize = 8;
        const ITERS: u64 = 5_000;
        let hs: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let t = l.x_lock();
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        // Every acquire/release round bumped the version exactly once.
        let final_v = l.acquire_sh().unwrap();
        assert_eq!(word_version(final_v), THREADS as u64 * ITERS);
        assert!(!l.is_locked_ex());
    }

    #[test]
    fn fifo_handover_among_writers() {
        let l = Arc::new(OptiQL::new());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t0 = l.x_lock();
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                let order = Arc::clone(&order);
                let h = std::thread::spawn(move || {
                    let t = l.x_lock();
                    order.lock().push(i);
                    l.x_unlock(t);
                });
                std::thread::sleep(std::time::Duration::from_millis(20));
                h
            })
            .collect();
        l.x_unlock(t0);
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(&*order.lock(), &[0, 1, 2, 3], "OptiQL grants writers FIFO");
    }

    #[test]
    fn opportunistic_read_window_admits_readers_between_writers() {
        // T1 holds the lock; T2 queues. When T1 releases, the word must
        // pass through a readable (LOCKED|OPREAD|version) state before T2
        // closes the window. We freeze that state by having T2 *not* be a
        // real thread: we enact the protocol steps manually.
        let l = OptiQL::new();
        let id1 = qnode::alloc();
        let id2 = qnode::alloc();
        let qn1 = qnode::to_ptr(id1);
        let qn2 = qnode::to_ptr(id2);

        // T1 acquires (fast path).
        assert!(!l.acquire_ex_with(id1, qn1));
        // T2 swaps itself in manually (first half of acquire_ex_with).
        qn2.reset();
        let prev = l.word.swap(locked_word(id2), Ordering::AcqRel);
        assert!(is_locked(prev));
        assert_eq!(word_id(prev), id1);
        qnode::to_ptr(word_id(prev))
            .next
            .store(qn2 as *const QNode as *mut QNode, Ordering::Release);

        // No reader admitted yet: locked, opread off.
        assert!(l.acquire_sh().is_none());

        // T1 releases: CAS fails (tail is id2), so it publishes the
        // opportunistic read window and grants T2.
        l.release_ex_with(id1, qn1);

        // The window is open: readers are admitted and can validate.
        let snap = l.acquire_sh().expect("opportunistic window admits readers");
        assert!(is_locked(snap) && crate::word::is_opread(snap));
        assert_eq!(word_version(snap), 1, "window carries the new version");
        assert!(l.release_sh(snap), "reader inside the window validates");

        // T2 (granted) closes the window — late readers must now fail.
        assert_ne!(qn2.version(), INVALID_VERSION, "T2 was granted");
        l.close_opread_window();
        assert!(l.acquire_sh().is_none(), "window closed");
        assert!(
            !l.release_sh(snap),
            "reader overlapping the new writer fails"
        );

        // T2 releases normally (no successor).
        l.release_ex_with(id2, qn2);
        assert_eq!(l.acquire_sh().unwrap(), 2);
        qnode::free(id1);
        qnode::free(id2);
    }

    #[test]
    fn nor_never_admits_readers_during_handover() {
        let l = OptiQLNor::new();
        let id1 = qnode::alloc();
        let id2 = qnode::alloc();
        let qn1 = qnode::to_ptr(id1);
        let qn2 = qnode::to_ptr(id2);
        assert!(!l.acquire_ex_with(id1, qn1));
        qn2.reset();
        let prev = l.word.swap(locked_word(id2), Ordering::AcqRel);
        qnode::to_ptr(word_id(prev))
            .next
            .store(qn2 as *const QNode as *mut QNode, Ordering::Release);
        l.release_ex_with(id1, qn1); // grants T2 without opening a window
        assert!(l.acquire_sh().is_none(), "NOR starves readers in handover");
        l.release_ex_with(id2, qn2);
        assert_eq!(l.acquire_sh().unwrap(), 2);
        qnode::free(id1);
        qnode::free(id2);
    }

    #[test]
    fn aor_keeps_window_open_until_finish() {
        let l = OptiQL::new();
        let id1 = qnode::alloc();
        let qn1 = qnode::to_ptr(id1);
        assert!(!l.acquire_ex_with(id1, qn1));

        // A queued AOR acquirer on another thread.
        std::thread::scope(|s| {
            let l2 = &l;
            s.spawn(move || {
                let t = l2.x_lock_aor();
                // Window must still be open right after a queued AOR grant.
                let snap = l2.acquire_sh().expect("AOR leaves the window open");
                assert!(l2.release_sh(snap));
                l2.x_finish_aor(t);
                assert!(l2.acquire_sh().is_none(), "finish closes the window");
                l2.x_unlock(WriteToken::from_qnode(t.qnode_id()));
            });
            // Give the AOR thread time to queue, then hand over.
            std::thread::sleep(std::time::Duration::from_millis(30));
            l.release_ex_with(id1, qn1);
            qnode::free(id1);
        });
        assert!(!l.is_locked_ex());
    }

    #[test]
    fn aor_abort_path_unlocks_cleanly() {
        // x_lock_aor followed by x_unlock_aor without finish (the Alg 4
        // "parent changed, release before retry" path) must not wedge.
        let l = Arc::new(OptiQL::new());
        let t0 = l.x_lock();
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            let t = l2.x_lock_aor(); // queued: AOR window will be open
            l2.x_unlock_aor(t); // abort without x_finish_aor
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        l.x_unlock(t0);
        h.join().unwrap();
        // Lock must be free and writable again.
        let t = l.x_lock();
        l.x_unlock(t);
        assert!(!l.is_locked_ex());
    }

    #[test]
    fn readers_never_observe_torn_data() {
        // Seqlock-style: a writer keeps two counters equal under the lock;
        // validated readers must always observe them equal.
        let l = Arc::new(OptiQL::new());
        let a = Arc::new(Counter::new(0));
        let b = Arc::new(Counter::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let wl = Arc::clone(&l);
        let (wa, wb) = (Arc::clone(&a), Arc::clone(&b));
        let wstop = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            while !wstop.load(Ordering::Relaxed) {
                let t = wl.x_lock();
                let v = wa.load(Ordering::Relaxed);
                wa.store(v + 1, Ordering::Relaxed);
                // A deliberately wide window between the two writes.
                for _ in 0..32 {
                    std::hint::spin_loop();
                }
                wb.store(v + 1, Ordering::Relaxed);
                wl.x_unlock(t);
                // Leave the lock free between rounds so optimistic readers
                // make progress even on a single hardware thread.
                std::thread::yield_now();
            }
        });

        let mut validated = 0u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while validated < 100 && std::time::Instant::now() < deadline {
            if let Some(v) = l.acquire_sh() {
                let x = a.load(Ordering::Relaxed);
                let y = b.load(Ordering::Relaxed);
                if l.release_sh(v) {
                    assert_eq!(x, y, "validated read observed torn state");
                    validated += 1;
                }
            } else {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert!(validated >= 100, "some reads must validate");
    }
}
