//! CLH queue lock and **OptiCLH** — the paper's stated future work
//! (§8: "Other queue-based locks, such as CLH \[9, 35\], could also be
//! adapted with optimistic reads, which we leave for future work").
//!
//! CLH differs from MCS in how the queue is maintained: a requester spins
//! on its *predecessor's* node (which it learned from the swap on the lock
//! word) instead of its own, so the releaser never has to wait for a
//! successor to link itself — release is wait-free. The price is that a
//! node's ownership migrates: the successor retires the predecessor's node
//! once granted, and a holder releasing with no successor retires its own.
//!
//! Classic CLH needs a pre-allocated dummy node per lock; this
//! implementation uses the free-word encoding (`LOCKED` bit unset ⇒ no
//! queue) to avoid that, so the per-lock footprint stays a single 8-byte
//! word and the global queue-node pool (§6.3) is shared exactly as for
//! OptiQL.
//!
//! [`OptiCLH`] extends CLH with the same optimistic-read word layout and
//! opportunistic-read handover window as OptiQL (§5), demonstrating that
//! the technique is not MCS-specific.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::qnode::{self, QNode};
use crate::spin::Spinner;
use crate::stats::{record, Event};
use crate::traits::{ExclusiveLock, IndexLock, WriteStrategy, WriteToken};
use crate::word::{
    bump_version, is_locked, locked_word, readable, word_id, word_version, INVALID_VERSION, OPREAD,
    STATUS_MASK, VERSION_MASK,
};

/// Store the holder's release-version in the queue node's spare fields
/// (`state` = low 32 bits, `class` = high 32 bits). Only the owner accesses
/// these, so relaxed ordering suffices.
#[inline]
fn stash_version(qn: &QNode, v: u64) {
    qn.state.store(v as u32, Ordering::Relaxed);
    qn.class.store((v >> 32) as u32, Ordering::Relaxed);
}

#[inline]
fn unstash_version(qn: &QNode) -> u64 {
    (qn.state.load(Ordering::Relaxed) as u64) | ((qn.class.load(Ordering::Relaxed) as u64) << 32)
}

/// CLH-style queue lock with optimistic readers; `OPPORTUNISTIC` toggles
/// the reader-admission window during handover.
pub struct OptiClhCore<const OPPORTUNISTIC: bool> {
    word: AtomicU64,
}

/// Optimistic CLH lock with opportunistic read.
pub type OptiCLH = OptiClhCore<true>;
/// Optimistic CLH lock without opportunistic read.
pub type OptiCLHNor = OptiClhCore<false>;

impl<const OPPORTUNISTIC: bool> Default for OptiClhCore<OPPORTUNISTIC> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const OPPORTUNISTIC: bool> OptiClhCore<OPPORTUNISTIC> {
    /// New, unlocked, version 0.
    pub const fn new() -> Self {
        OptiClhCore {
            word: AtomicU64::new(0),
        }
    }

    /// Current raw word (diagnostic).
    #[inline]
    pub fn raw(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    /// Acquire exclusively with a pool node. Returns the node ID that the
    /// caller must pass to [`Self::release_ex_id`] — note that under CLH
    /// this is always the ID the caller enqueued with, but the *pred*
    /// node is retired here as soon as the grant is observed.
    fn acquire_ex_id(&self) -> u16 {
        let id = qnode::alloc();
        let qn = qnode::to_ptr(id);
        qn.reset();
        let prev = self.word.swap(locked_word(id), Ordering::AcqRel);
        if !is_locked(prev) {
            // Free word: versions live on the word while unlocked.
            stash_version(qn, bump_version(word_version(prev)));
        } else {
            // Spin on the *predecessor's* node until it publishes its
            // release version, then retire it — CLH ownership migration.
            record(Event::ExQueueWait);
            let pred_id = word_id(prev);
            let pred = qnode::to_ptr(pred_id);
            let mut s = Spinner::new();
            let mut pv = pred.version.load(Ordering::Acquire);
            while pv == INVALID_VERSION {
                s.spin();
                pv = pred.version.load(Ordering::Acquire);
            }
            qnode::free(pred_id);
            stash_version(qn, bump_version(pv));
            if OPPORTUNISTIC {
                // Close the reader-admission window the predecessor opened.
                self.word
                    .fetch_and(!(OPREAD | VERSION_MASK), Ordering::AcqRel);
                record(Event::OpReadWindowClose);
            }
        }
        record(Event::ExAcquire);
        id
    }

    fn release_ex_id(&self, id: u16) {
        let qn = qnode::to_ptr(id);
        let my_version = unstash_version(qn);
        // No successor: publish the version and clear the queue in one CAS;
        // nobody can ever spin on our node, so retire it ourselves.
        if self
            .word
            .compare_exchange(
                locked_word(id),
                my_version,
                Ordering::Release,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            qnode::free(id);
            return;
        }
        // A successor swapped itself in and is spinning on our node.
        if OPPORTUNISTIC {
            // Opportunistic read window (§5.3): readers may sneak in until
            // the successor closes the window.
            self.word.fetch_or(OPREAD | my_version, Ordering::Release);
        }
        // Grant: publish our version on our node; the successor bumps it,
        // and retires this node. Release is wait-free — the CLH advantage.
        qn.version.store(my_version, Ordering::Release);
        record(Event::ExHandover);
    }
}

impl<const OPPORTUNISTIC: bool> ExclusiveLock for OptiClhCore<OPPORTUNISTIC> {
    const NAME: &'static str = if OPPORTUNISTIC {
        "OptiCLH"
    } else {
        "OptiCLH-NOR"
    };

    #[inline]
    fn x_lock(&self) -> WriteToken {
        WriteToken::from_qnode(self.acquire_ex_id())
    }

    #[inline]
    fn x_unlock(&self, t: WriteToken) {
        self.release_ex_id(t.qnode_id());
    }
}

impl<const OPPORTUNISTIC: bool> IndexLock for OptiClhCore<OPPORTUNISTIC> {
    const PESSIMISTIC: bool = false;
    const STRATEGY: WriteStrategy = WriteStrategy::DirectLock;

    #[inline]
    fn r_lock(&self) -> Option<u64> {
        let v = self.word.load(Ordering::Acquire);
        if readable(v) {
            record(if is_locked(v) {
                Event::OpReadAdmit
            } else {
                Event::ReadAdmit
            });
            Some(v)
        } else {
            record(Event::ReadReject);
            None
        }
    }

    #[inline]
    fn r_unlock(&self, v: u64) -> bool {
        fence(Ordering::Acquire);
        let ok = self.word.load(Ordering::Relaxed) == v;
        record(if ok {
            Event::ReadValidateOk
        } else {
            Event::ReadValidateFail
        });
        ok
    }

    #[inline]
    fn recheck(&self, v: u64) -> bool {
        fence(Ordering::Acquire);
        let ok = self.word.load(Ordering::Relaxed) == v;
        record(if ok {
            Event::ReadValidateOk
        } else {
            Event::ReadValidateFail
        });
        ok
    }

    #[inline]
    fn try_upgrade(&self, v: u64) -> Option<WriteToken> {
        if v & STATUS_MASK != 0 {
            record(Event::UpgradeFail);
            return None;
        }
        let id = qnode::alloc();
        let qn = qnode::to_ptr(id);
        qn.reset();
        stash_version(qn, bump_version(v));
        if self
            .word
            .compare_exchange(v, locked_word(id), Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            record(Event::UpgradeOk);
            Some(WriteToken::from_qnode(id))
        } else {
            qnode::free(id);
            record(Event::UpgradeFail);
            None
        }
    }

    #[inline]
    fn is_locked_ex(&self) -> bool {
        is_locked(self.word.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn uncontended_cycle_bumps_version() {
        let l = OptiCLH::new();
        assert_eq!(l.r_lock().unwrap(), 0);
        let t = l.x_lock();
        assert!(l.is_locked_ex());
        assert!(l.r_lock().is_none());
        l.x_unlock(t);
        assert_eq!(l.r_lock().unwrap(), 1);
    }

    #[test]
    fn stale_snapshot_fails_validation() {
        let l = OptiCLH::new();
        let v = l.r_lock().unwrap();
        let t = l.x_lock();
        l.x_unlock(t);
        assert!(!l.r_unlock(v));
    }

    #[test]
    fn upgrade_roundtrip() {
        let l = OptiCLH::new();
        let v = l.r_lock().unwrap();
        let t = l.try_upgrade(v).expect("upgrade");
        assert!(l.try_upgrade(v).is_none());
        l.x_unlock(t);
        assert_eq!(l.r_lock().unwrap(), v + 1);
    }

    #[test]
    fn writers_serialize_and_version_counts_rounds() {
        let l = Arc::new(OptiCLH::new());
        let c = Arc::new(Counter::new(0));
        const THREADS: u64 = 8;
        const ITERS: u64 = 5_000;
        let hs: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let t = l.x_lock();
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), THREADS * ITERS);
        assert_eq!(word_version(l.raw()), THREADS * ITERS);
        assert!(!l.is_locked_ex());
    }

    #[test]
    fn fifo_handover() {
        let l = Arc::new(OptiCLH::new());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t0 = l.x_lock();
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                let order = Arc::clone(&order);
                let h = std::thread::spawn(move || {
                    let t = l.x_lock();
                    order.lock().push(i);
                    l.x_unlock(t);
                });
                std::thread::sleep(std::time::Duration::from_millis(20));
                h
            })
            .collect();
        l.x_unlock(t0);
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(&*order.lock(), &[0, 1, 2, 3]);
    }

    #[test]
    fn qnodes_are_recycled_not_leaked() {
        // Ownership migrates in CLH; after heavy churn the pool must not
        // shrink (allowing for thread-local caches).
        let before = qnode::global_free_len();
        let l = Arc::new(OptiCLH::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        let t = l.x_lock();
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let after = qnode::global_free_len();
        assert!(
            after >= before.saturating_sub(64),
            "CLH leaked queue nodes: before={before} after={after}"
        );
    }

    #[test]
    fn opportunistic_window_opens_during_handover() {
        // T1 holds; T2 queues. After T1's release, until T2 closes the
        // window, readers must be admitted and validate.
        let l = Arc::new(OptiCLH::new());
        let admitted = Arc::new(Counter::new(0));
        let t0 = l.x_lock();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let (l, admitted, stop) = (Arc::clone(&l), Arc::clone(&admitted), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(v) = l.r_lock() {
                        if l.r_unlock(v) {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        };
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let t = l.x_lock();
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        l.x_unlock(t0);
        for h in writers {
            h.join().unwrap();
        }
        // With the writers done the lock is free; give the reader time to
        // validate at least once before stopping (single-CPU hosts may not
        // have scheduled it at all during the contended phase).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while admitted.load(Ordering::Relaxed) == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        // Readers validated at least sometimes (free windows + handover
        // windows both count; exact counts are host-dependent).
        assert!(admitted.load(Ordering::Relaxed) > 0);
        assert!(!l.is_locked_ex());
    }

    #[test]
    fn nor_variant_has_same_exclusive_semantics() {
        let l = OptiCLHNor::new();
        let t = l.x_lock();
        assert!(l.r_lock().is_none());
        l.x_unlock(t);
        assert_eq!(l.r_lock().unwrap(), 1);
    }

    #[test]
    fn version_stash_roundtrips_52_bits() {
        let id = qnode::alloc();
        let qn = qnode::to_ptr(id);
        for v in [0u64, 1, 0xFFFF_FFFF, VERSION_MASK, VERSION_MASK - 1] {
            stash_version(qn, v);
            assert_eq!(unstash_version(qn), v);
        }
        qnode::free(id);
    }
}
