//! Ticket lock (paper §8, Scott \[42\]).
//!
//! FIFO-fair like queue-based locks, but still *centralized*: every waiter
//! spins on the shared now-serving counter, so it remains vulnerable to
//! performance collapse under contention. Included as an extension baseline
//! to separate "fairness" from "local spinning" in the Figure 6 ablation.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::spin::Spinner;
use crate::stats::{record, Event};
use crate::traits::{ExclusiveLock, WriteToken};

/// Classic two-counter ticket lock packed in one 8-byte word.
#[derive(Default)]
pub struct TicketLock {
    /// Low 32 bits: now-serving. High 32 bits: next ticket.
    word: AtomicU64,
}

const TICKET_SHIFT: u32 = 32;
const SERVING_MASK: u64 = (1 << 32) - 1;

impl TicketLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        TicketLock {
            word: AtomicU64::new(0),
        }
    }

    /// True iff some thread currently holds the lock.
    pub fn is_locked(&self) -> bool {
        let w = self.word.load(Ordering::Relaxed);
        (w >> TICKET_SHIFT) != (w & SERVING_MASK)
    }

    /// Number of waiters (including the holder), diagnostic.
    pub fn queue_depth(&self) -> u32 {
        let w = self.word.load(Ordering::Relaxed);
        ((w >> TICKET_SHIFT) as u32).wrapping_sub((w & SERVING_MASK) as u32)
    }
}

impl ExclusiveLock for TicketLock {
    const NAME: &'static str = "Ticket";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        // Draw a ticket.
        let prev = self.word.fetch_add(1 << TICKET_SHIFT, Ordering::Relaxed);
        let my_ticket = (prev >> TICKET_SHIFT) as u32;
        // Wait until served.
        if (prev & SERVING_MASK) as u32 != my_ticket {
            record(Event::ExQueueWait);
        }
        let mut s = Spinner::new();
        while (self.word.load(Ordering::Acquire) & SERVING_MASK) as u32 != my_ticket {
            s.spin();
        }
        record(Event::ExAcquire);
        WriteToken::empty()
    }

    #[inline]
    fn x_unlock(&self, _t: WriteToken) {
        // Only the holder mutates now-serving, so a read-add-store pair on
        // the low half is race-free; use fetch_add for the atomic RMW on
        // the shared word (ticket counter lives in the untouched high half,
        // and now-serving wraps within 32 bits only after 2^32 handovers,
        // where the ticket counter wraps identically).
        self.word.fetch_add(1, Ordering::Release);
    }
}

/// A `u32 + u32` split-counter ticket lock variant that spins on a separate
/// cache line for now-serving (reduces, but does not eliminate, collapse).
#[derive(Default)]
pub struct TicketLockSplit {
    next: AtomicU32,
    serving: crossbeam_utils::CachePadded<AtomicU32>,
}

impl TicketLockSplit {
    /// New, unlocked.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExclusiveLock for TicketLockSplit {
    const NAME: &'static str = "Ticket-Split";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        let my_ticket = self.next.fetch_add(1, Ordering::Relaxed);
        if self.serving.load(Ordering::Relaxed) != my_ticket {
            record(Event::ExQueueWait);
        }
        let mut s = Spinner::new();
        while self.serving.load(Ordering::Acquire) != my_ticket {
            s.spin();
        }
        record(Event::ExAcquire);
        WriteToken::empty()
    }

    #[inline]
    fn x_unlock(&self, _t: WriteToken) {
        let cur = self.serving.load(Ordering::Relaxed);
        self.serving.store(cur.wrapping_add(1), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_cycles() {
        let l = TicketLock::new();
        for _ in 0..100 {
            let t = l.x_lock();
            assert!(l.is_locked());
            l.x_unlock(t);
            assert!(!l.is_locked());
        }
    }

    #[test]
    fn fifo_order_is_respected() {
        // Each thread appends its id under the lock several times; with a
        // FIFO lock and staggered arrival, the first acquisition order must
        // match arrival order. We verify mutual exclusion + progress here
        // (strict FIFO arrival timing is not observable portably).
        let l = Arc::new(TicketLock::new());
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let t = l.x_lock();
                        log.lock().push(i);
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.lock().len(), 4000);
        assert_eq!(l.queue_depth(), 0);
    }

    #[test]
    fn split_variant_excludes() {
        let l = Arc::new(TicketLockSplit::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..5000 {
                        let t = l.x_lock();
                        // Non-atomic-looking read-modify-write made of two
                        // relaxed halves: torn only if exclusion fails.
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20_000);
    }
}
