//! Lock-event observability: cfg-gated, thread-local sharded counters.
//!
//! The paper's evaluation (§7, Table 1) explains throughput differences
//! through *event* rates — how often readers are admitted or rejected,
//! how often validation fails, how often writers queue — not through
//! throughput alone. This module gives every lock implementation a place
//! to record those events with zero cost in default builds:
//!
//! * With the `stats` cargo feature **disabled** (the default),
//!   [`record`] is an empty `#[inline(always)]` function, so every
//!   recording site compiles away entirely and the lock hot paths are
//!   byte-identical to an uninstrumented build.
//! * With `stats` **enabled**, each thread owns a cache-line-friendly
//!   shard of relaxed atomic counters registered in a global registry;
//!   recording is one relaxed `fetch_add` on thread-local memory, so the
//!   probe effect stays small even under heavy contention.
//!
//! [`snapshot`] sums all shards (including those of exited threads);
//! [`reset`] zeroes them. Harness code brackets a benchmark run with
//! `reset()` … `snapshot()` and derives e.g. Table 1's reader-success
//! rates from real counters instead of ad-hoc bookkeeping.

/// Countable lock / index events.
///
/// The taxonomy follows the paper's discussion of where time goes under
/// contention: writer queueing (§4), handover (§5.3), opportunistic-read
/// admission (§5.3), validation failure (§3), upgrade failure (§6.2) and
/// index traversal restarts (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Event {
    /// An exclusive acquisition completed (fast path or queued).
    ExAcquire = 0,
    /// An exclusive acquisition had to wait behind another holder
    /// (queued in MCS/CLH terms, spun in TTS/OptLock terms).
    ExQueueWait,
    /// An exclusive release handed the lock directly to a queued
    /// successor instead of freeing the word.
    ExHandover,
    /// A reader was admitted on a free (unlocked) word, or acquired a
    /// pessimistic shared lock.
    ReadAdmit,
    /// A reader was admitted *during a handover window* — the
    /// `LOCKED|OPREAD` state of §5.3. OptiQL-specific robustness signal.
    OpReadAdmit,
    /// A reader was refused admission (word locked, no open window).
    ReadReject,
    /// An optimistic read (or recheck) validated successfully.
    ReadValidateOk,
    /// An optimistic read (or recheck) failed validation and must
    /// restart.
    ReadValidateFail,
    /// A reader-to-writer upgrade succeeded.
    UpgradeOk,
    /// A reader-to-writer upgrade was refused or lost the CAS.
    UpgradeFail,
    /// An opportunistic-read window was explicitly closed (includes AOR
    /// `x_finish_*` closes and abandoned-window cleanup).
    OpReadWindowClose,
    /// A B+-tree traversal restarted (validation failure or SMO race).
    IndexRestartBtree,
    /// An ART traversal restarted.
    IndexRestartArt,
    /// A queue-node allocation found the 1024-node pool exhausted.
    QnodeExhausted,
    /// A batched (`multi_*`) index call was issued (one event per batch,
    /// regardless of batch size).
    BatchIssued,
    /// One in-flight operation of a pipelined batch restarted from the
    /// root (failed validation / admission / upgrade).
    BatchOpRestart,
    /// One round-robin pass over a pipeline group (each pending op
    /// advanced one step, prefetching its next node before yielding).
    BatchPrefetchRound,
}

/// Number of distinct [`Event`] kinds.
pub const EVENT_COUNT: usize = 17;

/// Every event, in counter-index order (for iteration / display).
pub const ALL_EVENTS: [Event; EVENT_COUNT] = [
    Event::ExAcquire,
    Event::ExQueueWait,
    Event::ExHandover,
    Event::ReadAdmit,
    Event::OpReadAdmit,
    Event::ReadReject,
    Event::ReadValidateOk,
    Event::ReadValidateFail,
    Event::UpgradeOk,
    Event::UpgradeFail,
    Event::OpReadWindowClose,
    Event::IndexRestartBtree,
    Event::IndexRestartArt,
    Event::QnodeExhausted,
    Event::BatchIssued,
    Event::BatchOpRestart,
    Event::BatchPrefetchRound,
];

impl Event {
    /// Short stable label (used in snapshot displays and TSV output).
    pub const fn name(self) -> &'static str {
        match self {
            Event::ExAcquire => "ex_acquire",
            Event::ExQueueWait => "ex_queue_wait",
            Event::ExHandover => "ex_handover",
            Event::ReadAdmit => "read_admit",
            Event::OpReadAdmit => "opread_admit",
            Event::ReadReject => "read_reject",
            Event::ReadValidateOk => "read_validate_ok",
            Event::ReadValidateFail => "read_validate_fail",
            Event::UpgradeOk => "upgrade_ok",
            Event::UpgradeFail => "upgrade_fail",
            Event::OpReadWindowClose => "opread_window_close",
            Event::IndexRestartBtree => "btree_restart",
            Event::IndexRestartArt => "art_restart",
            Event::QnodeExhausted => "qnode_exhausted",
            Event::BatchIssued => "batch_issued",
            Event::BatchOpRestart => "batch_op_restart",
            Event::BatchPrefetchRound => "batch_prefetch_round",
        }
    }
}

/// `true` iff this build records events (the `stats` feature is on).
pub const ENABLED: bool = cfg!(feature = "stats");

/// An immutable sum of all counters at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; EVENT_COUNT],
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            counts: [0; EVENT_COUNT],
        }
    }
}

impl Snapshot {
    /// Count recorded for one event.
    #[inline]
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e as usize]
    }

    /// Sum of all counters (quick "anything recorded?" check).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Reader admission attempts: admitted (free word, window, or shared
    /// grant) plus rejected.
    pub fn read_attempts(&self) -> u64 {
        self.get(Event::ReadAdmit) + self.get(Event::OpReadAdmit) + self.get(Event::ReadReject)
    }

    /// Fraction of read attempts that were admitted *and* validated —
    /// the paper's Table 1 "reader success rate". Rejected admissions
    /// count as failures, matching the index behaviour where the caller
    /// restarts the traversal.
    pub fn reader_success_rate(&self) -> f64 {
        let failures = self.get(Event::ReadValidateFail) + self.get(Event::ReadReject);
        let ok = self.get(Event::ReadValidateOk);
        if ok + failures == 0 {
            0.0
        } else {
            ok as f64 / (ok + failures) as f64
        }
    }

    /// Per-event difference `self - earlier` (saturating), for deriving
    /// interval counts from two absolute snapshots.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for i in 0..EVENT_COUNT {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }
}

impl std::fmt::Display for Snapshot {
    /// One `name=count` pair per non-zero counter, space-separated;
    /// `(no events)` when empty.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut any = false;
        for e in ALL_EVENTS {
            let c = self.get(e);
            if c != 0 {
                if any {
                    write!(f, " ")?;
                }
                write!(f, "{}={c}", e.name())?;
                any = true;
            }
        }
        if !any {
            write!(f, "(no events)")?;
        }
        Ok(())
    }
}

#[cfg(feature = "stats")]
mod imp {
    use super::{Snapshot, EVENT_COUNT};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock};

    pub(super) struct Shard {
        counts: [AtomicU64; EVENT_COUNT],
    }

    impl Shard {
        fn new() -> Self {
            Shard {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
            }
        }
    }

    fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static SHARD: Arc<Shard> = {
            let s = Arc::new(Shard::new());
            registry().lock().push(Arc::clone(&s));
            s
        };
    }

    #[inline]
    pub(super) fn record(e: super::Event) {
        // try_with: recording from a thread whose TLS is being torn down
        // (e.g. a lock release inside another thread-local's Drop) simply
        // drops the event rather than panicking.
        let _ = SHARD.try_with(|s| s.counts[e as usize].fetch_add(1, Ordering::Relaxed));
    }

    pub(super) fn snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in registry().lock().iter() {
            for (i, c) in shard.counts.iter().enumerate() {
                snap.counts[i] += c.load(Ordering::Relaxed);
            }
        }
        snap
    }

    pub(super) fn reset() {
        let mut reg = registry().lock();
        // Shards of exited threads are only kept alive by the registry;
        // dropping them here keeps the registry from growing without
        // bound across many short-lived benchmark threads.
        reg.retain(|s| Arc::strong_count(s) > 1);
        for shard in reg.iter() {
            for c in &shard.counts {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Record one event on the calling thread's shard.
///
/// Compiles to nothing when the `stats` feature is disabled. With the
/// `chaos` feature the same call sites double as schedule-perturbation
/// points (see [`chaos`](crate::chaos)); the two features are
/// independent.
#[inline(always)]
pub fn record(e: Event) {
    #[cfg(feature = "stats")]
    imp::record(e);
    #[cfg(feature = "chaos")]
    crate::chaos::perturb(e);
    #[cfg(not(any(feature = "stats", feature = "chaos")))]
    let _ = e;
}

/// Sum all shards into a [`Snapshot`]. Always `Snapshot::default()` when
/// the `stats` feature is disabled.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "stats")]
    {
        imp::snapshot()
    }
    #[cfg(not(feature = "stats"))]
    {
        Snapshot::default()
    }
}

/// Zero every shard (and drop shards of exited threads). No-op when the
/// `stats` feature is disabled.
pub fn reset() {
    #[cfg(feature = "stats")]
    imp::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_default_is_all_zero() {
        let s = Snapshot::default();
        for e in ALL_EVENTS {
            assert_eq!(s.get(e), 0);
        }
        assert_eq!(s.total(), 0);
        assert_eq!(s.reader_success_rate(), 0.0);
        assert_eq!(format!("{s}"), "(no events)");
    }

    #[test]
    fn event_names_are_unique() {
        let names: std::collections::HashSet<_> = ALL_EVENTS.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), EVENT_COUNT);
    }

    #[test]
    fn since_subtracts_saturating() {
        let mut a = Snapshot::default();
        let mut b = Snapshot::default();
        a.counts[0] = 10;
        b.counts[0] = 3;
        b.counts[1] = 5; // only in `earlier`: saturates to 0
        let d = a.since(&b);
        assert_eq!(d.counts[0], 7);
        assert_eq!(d.counts[1], 0);
    }

    #[test]
    fn success_rate_formula_matches_table1_semantics() {
        let mut s = Snapshot::default();
        s.counts[Event::ReadValidateOk as usize] = 80;
        s.counts[Event::ReadValidateFail as usize] = 10;
        s.counts[Event::ReadReject as usize] = 10;
        assert!((s.reader_success_rate() - 0.8).abs() < 1e-12);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn record_snapshot_reset_cycle() {
        reset();
        record(Event::ExAcquire);
        record(Event::ExAcquire);
        record(Event::ReadValidateOk);
        let s = snapshot();
        assert!(s.get(Event::ExAcquire) >= 2);
        assert!(s.get(Event::ReadValidateOk) >= 1);
        reset();
        // Other tests run concurrently in this process; just assert the
        // mechanism zeroes our own contributions.
        assert!(snapshot().get(Event::ExAcquire) < 2 || snapshot().total() > 0);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn shards_of_exited_threads_survive_until_reset() {
        reset();
        std::thread::spawn(|| {
            for _ in 0..5 {
                record(Event::UpgradeFail);
            }
        })
        .join()
        .unwrap();
        assert!(snapshot().get(Event::UpgradeFail) >= 5);
    }
}
