//! Centralized optimistic lock, "OptLock" (paper Figure 2b; Leis et al.
//! \[26, 28\]).
//!
//! The lock every recent memory-optimized index uses: a TTS-style spinlock
//! whose 8-byte word additionally carries a version counter. Readers proceed
//! without writing shared memory and validate afterwards; writers CAS the
//! lock bit and bump the version on release. Fast under low contention,
//! collapses under high contention (Figure 1) — the problem OptiQL solves.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::backoff::Backoff;
use crate::spin::Spinner;
use crate::stats::{record, Event};
use crate::traits::{ExclusiveLock, IndexLock, WriteStrategy, WriteToken};

/// Exclusive bit, most significant (paper: `1UL << 63`).
pub const LOCKED: u64 = 1 << 63;

/// Centralized optimistic lock.
#[derive(Default)]
pub struct OptLock {
    word: AtomicU64,
}

impl OptLock {
    /// New, unlocked, version 0.
    pub const fn new() -> Self {
        OptLock {
            word: AtomicU64::new(0),
        }
    }

    /// Current raw word (diagnostic).
    #[inline]
    pub fn raw(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    #[inline]
    fn lock_slow_path(&self, backoff: bool) -> WriteToken {
        let mut s = Spinner::new();
        let mut b = Backoff::default();
        let mut contended = false;
        loop {
            let v = self.word.load(Ordering::Relaxed);
            if v & LOCKED == 0
                && self
                    .word
                    .compare_exchange_weak(v, v | LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                record(Event::ExAcquire);
                return WriteToken::empty();
            }
            if !contended {
                contended = true;
                record(Event::ExQueueWait);
            }
            if backoff {
                b.wait();
            } else {
                s.spin();
            }
        }
    }

    #[inline]
    fn unlock_impl(&self) {
        // Single writer: plain load + store is race-free on the version.
        // `(lock + 1) & ~LOCKED` — clears the lock bit and bumps the
        // version in one store, exactly as in Figure 2b.
        let v = self.word.load(Ordering::Relaxed);
        debug_assert!(v & LOCKED != 0, "x_unlock of unheld OptLock");
        self.word
            .store(v.wrapping_add(1) & !LOCKED, Ordering::Release);
    }

    #[inline]
    fn read_begin(&self) -> Option<u64> {
        let v = self.word.load(Ordering::Acquire);
        if v & LOCKED == 0 {
            record(Event::ReadAdmit);
            Some(v)
        } else {
            record(Event::ReadReject);
            None
        }
    }

    #[inline]
    fn read_validate(&self, v: u64) -> bool {
        // Seqlock idiom: order all data reads before the validation load.
        fence(Ordering::Acquire);
        let ok = self.word.load(Ordering::Relaxed) == v;
        record(if ok {
            Event::ReadValidateOk
        } else {
            Event::ReadValidateFail
        });
        ok
    }
}

impl ExclusiveLock for OptLock {
    const NAME: &'static str = "OptLock";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        self.lock_slow_path(false)
    }

    #[inline]
    fn x_unlock(&self, _t: WriteToken) {
        self.unlock_impl();
    }
}

impl IndexLock for OptLock {
    const PESSIMISTIC: bool = false;
    const STRATEGY: WriteStrategy = WriteStrategy::Upgrade;

    #[inline]
    fn r_lock(&self) -> Option<u64> {
        self.read_begin()
    }

    #[inline]
    fn r_unlock(&self, v: u64) -> bool {
        self.read_validate(v)
    }

    #[inline]
    fn recheck(&self, v: u64) -> bool {
        self.read_validate(v)
    }

    #[inline]
    fn try_upgrade(&self, v: u64) -> Option<WriteToken> {
        debug_assert!(v & LOCKED == 0);
        let t = self
            .word
            .compare_exchange(v, v | LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| WriteToken::empty());
        record(if t.is_some() {
            Event::UpgradeOk
        } else {
            Event::UpgradeFail
        });
        t
    }

    #[inline]
    fn is_locked_ex(&self) -> bool {
        self.word.load(Ordering::Relaxed) & LOCKED != 0
    }
}

/// OptLock with truncated exponential backoff on the writer path
/// (ablation: eases collapse, sacrifices fairness — paper §1.1).
#[derive(Default)]
pub struct OptLockBackoff {
    inner: OptLock,
}

impl OptLockBackoff {
    /// New, unlocked.
    pub const fn new() -> Self {
        OptLockBackoff {
            inner: OptLock::new(),
        }
    }
}

impl ExclusiveLock for OptLockBackoff {
    const NAME: &'static str = "OptLock-Backoff";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        self.inner.lock_slow_path(true)
    }

    #[inline]
    fn x_unlock(&self, _t: WriteToken) {
        self.inner.unlock_impl();
    }
}

impl IndexLock for OptLockBackoff {
    const PESSIMISTIC: bool = false;
    const STRATEGY: WriteStrategy = WriteStrategy::Upgrade;

    #[inline]
    fn r_lock(&self) -> Option<u64> {
        self.inner.read_begin()
    }

    #[inline]
    fn r_unlock(&self, v: u64) -> bool {
        self.inner.read_validate(v)
    }

    #[inline]
    fn recheck(&self, v: u64) -> bool {
        self.inner.read_validate(v)
    }

    #[inline]
    fn try_upgrade(&self, v: u64) -> Option<WriteToken> {
        self.inner.try_upgrade(v)
    }

    #[inline]
    fn is_locked_ex(&self) -> bool {
        self.inner.is_locked_ex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn version_bumps_once_per_write_cycle() {
        let l = OptLock::new();
        let v0 = l.r_lock().unwrap();
        let t = l.x_lock();
        l.x_unlock(t);
        let v1 = l.r_lock().unwrap();
        assert_eq!(v1, v0 + 1);
    }

    #[test]
    fn readers_fail_while_locked() {
        let l = OptLock::new();
        let t = l.x_lock();
        assert!(l.r_lock().is_none());
        l.x_unlock(t);
        assert!(l.r_lock().is_some());
    }

    #[test]
    fn validation_fails_after_write() {
        let l = OptLock::new();
        let v = l.r_lock().unwrap();
        assert!(l.r_unlock(v));
        let t = l.x_lock();
        l.x_unlock(t);
        assert!(!l.r_unlock(v), "stale snapshot must fail validation");
    }

    #[test]
    fn upgrade_succeeds_only_on_fresh_version() {
        let l = OptLock::new();
        let v = l.r_lock().unwrap();
        let t = l.try_upgrade(v).expect("fresh upgrade");
        // A second upgrade from the same snapshot must fail: lock held.
        assert!(l.try_upgrade(v).is_none());
        l.x_unlock(t);
        // Version moved on; the old snapshot can no longer upgrade.
        assert!(l.try_upgrade(v).is_none());
    }

    #[test]
    fn concurrent_writers_serialize() {
        let l = Arc::new(OptLock::new());
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let t = l.x_lock();
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 40_000);
        assert!(!l.is_locked_ex());
    }

    #[test]
    fn backoff_variant_excludes_and_versions() {
        let l = OptLockBackoff::new();
        let v0 = l.r_lock().unwrap();
        let t = l.x_lock();
        assert!(l.is_locked_ex());
        l.x_unlock(t);
        assert!(!l.r_unlock(v0));
        assert_eq!(l.r_lock().unwrap(), v0 + 1);
    }
}
