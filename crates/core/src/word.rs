//! Bit layout of the 8-byte OptiQL lock word (paper Figure 3a).
//!
//! ```text
//!  63       62        61 ... 52        51 ... 0
//! +--------+---------+----------------+------------------+
//! | LOCKED | OPREAD  | queue node ID  | version (52 bit) |
//! +--------+---------+----------------+------------------+
//! ```
//!
//! * `LOCKED` — the lock is granted (or about to be granted) to a writer.
//! * `OPREAD` — opportunistic read is enabled: the protected data is in a
//!   consistent state during lock handover and optimistic readers may proceed.
//! * queue node ID — globally indexed ID of the most recent writer requester's
//!   queue node (the tail of the MCS-style queue). Only meaningful while
//!   `LOCKED` is set.
//! * version — incremented once per exclusive acquire/release round; used by
//!   optimistic readers for validation.
//!
//! The numbers of ID and version bits are adjustable at design time (paper
//! §4.2); we use the paper's configuration of 10 ID bits (1024 queue nodes)
//! and 52 version bits.

/// Number of bits used for the queue node ID.
pub const ID_BITS: u32 = 10;
/// Number of bits used for the version counter.
pub const VERSION_BITS: u32 = 52;
/// Maximum number of queue nodes addressable by a lock word.
pub const MAX_QNODES: usize = 1 << ID_BITS;

/// Exclusive-mode bit (paper: `1UL << 63`).
pub const LOCKED: u64 = 1 << 63;
/// Opportunistic-read bit.
pub const OPREAD: u64 = 1 << 62;
/// Both status bits.
pub const STATUS_MASK: u64 = LOCKED | OPREAD;

/// Shift of the queue node ID field.
pub const ID_SHIFT: u32 = VERSION_BITS;
/// Mask of the queue node ID field (in place).
pub const ID_FIELD_MASK: u64 = ((MAX_QNODES as u64) - 1) << ID_SHIFT;
/// Mask of the version field.
pub const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;

/// Sentinel stored in a queue node's `version` field while the owner is
/// waiting to be granted the lock.
pub const INVALID_VERSION: u64 = u64::MAX;

/// Build a lock word that records a writer requester: `LOCKED | id`, with the
/// opportunistic-read bit off and the version field zeroed (paper Alg 3 l.2).
#[inline(always)]
pub const fn locked_word(id: u16) -> u64 {
    LOCKED | ((id as u64) << ID_SHIFT)
}

/// Extract the queue node ID field.
#[inline(always)]
pub const fn word_id(word: u64) -> u16 {
    ((word & ID_FIELD_MASK) >> ID_SHIFT) as u16
}

/// Extract the version field.
#[inline(always)]
pub const fn word_version(word: u64) -> u64 {
    word & VERSION_MASK
}

/// True iff the `LOCKED` bit is set.
#[inline(always)]
pub const fn is_locked(word: u64) -> bool {
    word & LOCKED != 0
}

/// True iff the `OPREAD` bit is set.
#[inline(always)]
pub const fn is_opread(word: u64) -> bool {
    word & OPREAD != 0
}

/// Reader admission check (paper Alg 2 l.3): a reader may proceed when the
/// status bits are not exactly `LOCKED` — i.e. the lock is free, or it is
/// locked but opportunistic read is enabled.
#[inline(always)]
pub const fn readable(word: u64) -> bool {
    word & STATUS_MASK != LOCKED
}

/// Increment a version, wrapping within the 52-bit version field.
#[inline(always)]
pub const fn bump_version(version: u64) -> u64 {
    version.wrapping_add(1) & VERSION_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_widths_fill_the_word() {
        assert_eq!(2 + ID_BITS + VERSION_BITS, 64);
        assert_eq!(MAX_QNODES, 1024);
    }

    #[test]
    fn masks_are_disjoint_and_exhaustive() {
        assert_eq!(STATUS_MASK & ID_FIELD_MASK, 0);
        assert_eq!(STATUS_MASK & VERSION_MASK, 0);
        assert_eq!(ID_FIELD_MASK & VERSION_MASK, 0);
        assert_eq!(STATUS_MASK | ID_FIELD_MASK | VERSION_MASK, u64::MAX);
    }

    #[test]
    fn locked_word_roundtrip() {
        for id in [0u16, 1, 511, 1023] {
            let w = locked_word(id);
            assert!(is_locked(w));
            assert!(!is_opread(w));
            assert_eq!(word_id(w), id);
            assert_eq!(word_version(w), 0);
        }
    }

    #[test]
    fn readable_matches_paper_truth_table() {
        // free, version-only word: readable
        assert!(readable(42));
        // locked, no opread: not readable
        assert!(!readable(LOCKED | 42));
        assert!(!readable(locked_word(7)));
        // locked + opread (handover window): readable
        assert!(readable(LOCKED | OPREAD | locked_word(7) | 42));
    }

    #[test]
    fn version_wraps_within_field() {
        assert_eq!(bump_version(0), 1);
        assert_eq!(bump_version(VERSION_MASK), 0);
        assert_eq!(bump_version(VERSION_MASK - 1), VERSION_MASK);
    }

    #[test]
    fn invalid_version_cannot_collide_with_real_versions() {
        // Real versions fit in 52 bits; the sentinel does not.
        const { assert!(INVALID_VERSION > VERSION_MASK) };
    }

    #[test]
    fn id_extraction_ignores_other_fields() {
        let w = LOCKED | OPREAD | ((931u64) << ID_SHIFT) | 0xABCDEF;
        assert_eq!(word_id(w), 931);
        assert_eq!(word_version(w), 0xABCDEF);
    }
}
