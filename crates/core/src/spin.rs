//! Spin-wait helper.
//!
//! The paper's environment never oversubscribes cores, so waiters spin
//! locally forever. On machines with fewer hardware threads than workers
//! (including the single-core CI hosts this crate is tested on), pure
//! spinning can stall progress for an entire scheduler quantum while the
//! thread that must act is descheduled. `Spinner` therefore spins with a
//! CPU-relax hint for a bounded number of iterations and then yields to the
//! OS scheduler — the algorithmic behaviour is unchanged, only the waiting
//! primitive degrades gracefully.

use std::hint;
use std::thread;

/// Number of `spin_loop` hints issued before each `yield_now`.
const SPINS_BEFORE_YIELD: u32 = 128;

/// Bounded spinner: relax the CPU first, involve the scheduler afterwards.
#[derive(Debug, Default)]
pub struct Spinner {
    spins: u32,
}

impl Spinner {
    /// Create a fresh spinner.
    #[inline]
    pub const fn new() -> Self {
        Spinner { spins: 0 }
    }

    /// Perform one wait step.
    #[inline]
    pub fn spin(&mut self) {
        if self.spins < SPINS_BEFORE_YIELD {
            self.spins += 1;
            hint::spin_loop();
        } else {
            thread::yield_now();
        }
    }

    /// Number of steps taken so far (capped at the yield threshold for the
    /// spin-hint phase; continues to count across yields).
    #[inline]
    pub fn steps(&self) -> u32 {
        self.spins
    }
}

/// Spin until `cond` returns true.
#[inline]
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let mut s = Spinner::new();
    while !cond() {
        s.spin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn spin_until_returns_when_condition_already_true() {
        spin_until(|| true);
    }

    #[test]
    fn spin_until_observes_flag_set_by_other_thread() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            f2.store(true, Ordering::Release);
        });
        spin_until(|| flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn spinner_counts_steps() {
        let mut s = Spinner::new();
        for _ in 0..10 {
            s.spin();
        }
        assert_eq!(s.steps(), 10);
    }
}
