//! "pthread" baseline: an OS/library-grade pessimistic reader-writer lock
//! (paper §7.1 uses `pthread_rwlock_t` / `std::shared_mutex`, 56 bytes).
//!
//! We wrap `parking_lot::RawRwLock`, which like glibc's rwlock expands into
//! a queue-based wait structure under contention (parking_lot parks waiters
//! in a global hash table). It is *not* 8-byte-constrained in spirit: the
//! in-object word is one `usize`, but the queue state lives outside the
//! lock, which is exactly the compactness property (D4) the paper's
//! comparison calls out. Readers write shared memory (pessimistic), so it
//! pairs with pessimistic lock coupling in the index protocols.

use parking_lot::lock_api::RawRwLock as RawRwLockApi;
use parking_lot::RawRwLock;

use crate::stats::{record, Event};
use crate::traits::{ExclusiveLock, IndexLock, WriteStrategy, WriteToken};

/// Pessimistic reader-writer lock backed by `parking_lot`.
pub struct PthreadRwLock {
    raw: RawRwLock,
}

impl Default for PthreadRwLock {
    fn default() -> Self {
        Self::new()
    }
}

impl PthreadRwLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        PthreadRwLock {
            raw: RawRwLock::INIT,
        }
    }
}

impl ExclusiveLock for PthreadRwLock {
    const NAME: &'static str = "pthread";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        self.raw.lock_exclusive();
        record(Event::ExAcquire);
        WriteToken::empty()
    }

    #[inline]
    fn x_unlock(&self, _t: WriteToken) {
        // Safety: paired with a successful `x_lock` by contract.
        unsafe { self.raw.unlock_exclusive() }
    }
}

impl IndexLock for PthreadRwLock {
    const PESSIMISTIC: bool = true;
    const STRATEGY: WriteStrategy = WriteStrategy::Pessimistic;

    #[inline]
    fn r_lock(&self) -> Option<u64> {
        self.raw.lock_shared();
        record(Event::ReadAdmit);
        Some(0)
    }

    #[inline]
    fn r_unlock(&self, _v: u64) -> bool {
        // Safety: paired with a successful `r_lock` by contract.
        unsafe { self.raw.unlock_shared() }
        record(Event::ReadValidateOk);
        true
    }

    #[inline]
    fn recheck(&self, _v: u64) -> bool {
        true
    }

    #[inline]
    fn try_upgrade(&self, _v: u64) -> Option<WriteToken> {
        None
    }

    #[inline]
    fn is_locked_ex(&self) -> bool {
        self.raw.is_locked_exclusive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_cycle() {
        let l = PthreadRwLock::new();
        let t = l.x_lock();
        assert!(l.is_locked_ex());
        l.x_unlock(t);
        assert!(!l.is_locked_ex());
    }

    #[test]
    fn shared_readers_coexist() {
        let l = PthreadRwLock::new();
        let a = l.r_lock().unwrap();
        let b = l.r_lock().unwrap();
        assert!(l.r_unlock(a));
        assert!(l.r_unlock(b));
    }

    #[test]
    fn upgrade_is_unsupported() {
        let l = PthreadRwLock::new();
        let v = l.r_lock().unwrap();
        assert!(l.try_upgrade(v).is_none());
        l.r_unlock(v);
    }
}
