//! Seeded chaos-schedule injection at the lock-event sites.
//!
//! The latent OLC races this workspace has hit so far (the ART
//! `is_full`-after-recheck panic, the missing parent re-validation after
//! a child `r_lock`) all live in windows a few instructions wide between
//! two lock-protocol steps. Stress tests only trip them when the
//! scheduler happens to preempt inside such a window; this module makes
//! that happen on purpose. Every [`stats::record`](crate::stats::record)
//! call site — lock acquire, handover, opportunistic-read admission,
//! validation failure, OLC restart, AOR window close, batch pipeline
//! round — doubles as an **injection point** where a deterministic,
//! seed-replayable perturbation (a scheduler yield or a bounded spin
//! burst) can be inserted to stretch exactly those windows.
//!
//! Design constraints:
//!
//! * **Zero cost when off.** Everything is gated behind the `chaos`
//!   cargo feature; without it [`perturb`] compiles to nothing, so
//!   production and benchmark builds are untouched.
//! * **Deterministic per thread.** Each thread owns a SplitMix64 stream
//!   seeded from `(global seed, thread slot)`; the decision sequence a
//!   thread observes is a pure function of the seed, its slot, and its
//!   own event count. Re-running the same seed replays the same
//!   perturbation pattern, which in practice reproduces the same
//!   interleaving class — that is what makes a failing chaos seed a
//!   *regression test* instead of an anecdote.
//! * **Re-entrancy safe.** Perturbation never takes locks and never
//!   records events itself.
//!
//! The checker crate (`optiql-check`) owns configuration: it calls
//! [`configure`] before a run, [`register_thread`] from each worker, and
//! [`disable`] afterwards. Threads that never register (e.g. the main
//! thread) derive a slot from a global counter, so they are perturbed
//! too, just without a driver-pinned identity.

use crate::stats::Event;

#[cfg(feature = "chaos")]
mod imp {
    use super::Event;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// Global chaos configuration. `GENERATION` bumps on every
    /// (re)configuration so thread-local streams reseed lazily.
    static ENABLED: AtomicBool = AtomicBool::new(false);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static GENERATION: AtomicU64 = AtomicU64::new(0);
    /// Slot source for threads that never called `register_thread`.
    static ANON_SLOTS: AtomicU64 = AtomicU64::new(1 << 32);

    thread_local! {
        /// (generation this stream was seeded for, rng state).
        static STREAM: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
        /// Driver-assigned slot; `u64::MAX` means "not registered".
        static SLOT: Cell<u64> = const { Cell::new(u64::MAX) };
    }

    #[inline]
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(super) fn configure(seed: u64) {
        SEED.store(seed, Ordering::Relaxed);
        GENERATION.fetch_add(1, Ordering::Release);
        ENABLED.store(true, Ordering::Release);
    }

    pub(super) fn disable() {
        ENABLED.store(false, Ordering::Release);
        GENERATION.fetch_add(1, Ordering::Release);
    }

    pub(super) fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub(super) fn register_thread(slot: u64) {
        SLOT.with(|s| s.set(slot));
        // Force a reseed on the next perturbation.
        STREAM.with(|s| s.set((0, 0)));
    }

    /// Draw the next value of this thread's deterministic stream,
    /// reseeding if the global configuration changed.
    #[inline]
    fn draw() -> u64 {
        STREAM.with(|cell| {
            let generation = GENERATION.load(Ordering::Acquire);
            let (mut stream_gen, mut state) = cell.get();
            if stream_gen != generation {
                let slot = SLOT.with(|s| {
                    let v = s.get();
                    if v != u64::MAX {
                        v
                    } else {
                        let anon = ANON_SLOTS.fetch_add(1, Ordering::Relaxed);
                        s.set(anon);
                        anon
                    }
                });
                // Seed the stream from (seed, slot): SplitMix over the
                // xor keeps nearby slots decorrelated.
                let mut seeder =
                    SEED.load(Ordering::Relaxed) ^ slot.wrapping_mul(0xA24B_AED4_963E_E407);
                state = splitmix(&mut seeder);
                stream_gen = generation;
            }
            let v = splitmix(&mut state);
            cell.set((stream_gen, state));
            v
        })
    }

    /// Inverse perturbation probability per event class: lower is more
    /// aggressive. The "juicy" sites — where the known races lived — get
    /// perturbed every few occurrences; steady-state sites only rarely,
    /// so throughput stays high enough to generate real contention.
    #[inline]
    fn inv_freq(e: Event) -> u64 {
        match e {
            // Handover / opportunistic-read windows (§5.3) and the
            // coupling-validation failure paths.
            Event::ExHandover
            | Event::OpReadAdmit
            | Event::OpReadWindowClose
            | Event::ReadValidateFail
            | Event::UpgradeFail
            | Event::IndexRestartBtree
            | Event::IndexRestartArt
            | Event::BatchPrefetchRound
            | Event::BatchOpRestart => 4,
            // Acquisition / admission steady state.
            Event::ExAcquire
            | Event::ExQueueWait
            | Event::ReadAdmit
            | Event::ReadReject
            | Event::UpgradeOk
            | Event::ReadValidateOk => 24,
            Event::QnodeExhausted | Event::BatchIssued => 16,
        }
    }

    #[inline]
    pub(super) fn perturb(e: Event) {
        if !enabled() {
            return;
        }
        let r = draw();
        if r % inv_freq(e) != 0 {
            return;
        }
        apply(r >> 8);
    }

    pub(super) fn jitter(class: u64) {
        if !enabled() {
            return;
        }
        let r = draw() ^ class.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        if r % 3 == 0 {
            return;
        }
        apply(r >> 8);
    }

    /// Execute one perturbation: mostly scheduler yields (the strongest
    /// reordering primitive available from user space), otherwise a
    /// bounded spin burst that stretches the current window without
    /// giving up the CPU.
    #[inline]
    fn apply(r: u64) {
        if r & 1 == 0 {
            std::thread::yield_now();
        } else {
            let spins = (r >> 1) % 96 + 4;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
    }
}

/// Enable chaos injection with the given schedule seed. Bumps the
/// configuration generation so every thread's decision stream reseeds.
///
/// No-op without the `chaos` feature.
pub fn configure(seed: u64) {
    #[cfg(feature = "chaos")]
    imp::configure(seed);
    #[cfg(not(feature = "chaos"))]
    let _ = seed;
}

/// Disable chaos injection (perturbation sites return immediately).
pub fn disable() {
    #[cfg(feature = "chaos")]
    imp::disable();
}

/// True when chaos injection is currently enabled.
pub fn enabled() -> bool {
    #[cfg(feature = "chaos")]
    {
        imp::enabled()
    }
    #[cfg(not(feature = "chaos"))]
    {
        false
    }
}

/// Pin the calling thread's deterministic stream to `slot`. Drivers call
/// this once per worker (with the worker index) so a seed replays the
/// same per-thread decision sequences run over run.
pub fn register_thread(slot: u64) {
    #[cfg(feature = "chaos")]
    imp::register_thread(slot);
    #[cfg(not(feature = "chaos"))]
    let _ = slot;
}

/// Perturbation hook wired into [`stats::record`](crate::stats::record):
/// with probability depending on the event class, insert a deterministic
/// yield or spin burst. Compiles to nothing without the `chaos` feature.
#[inline(always)]
pub fn perturb(e: Event) {
    #[cfg(feature = "chaos")]
    imp::perturb(e);
    #[cfg(not(feature = "chaos"))]
    let _ = e;
}

/// Extra injection point for wrappers outside the lock layer (e.g. the
/// checker's `ChaosIndex` perturbs around whole index operations).
/// `class` decorrelates call sites sharing a thread stream. Compiles to
/// nothing without the `chaos` feature.
#[inline(always)]
pub fn jitter(class: u64) {
    #[cfg(feature = "chaos")]
    imp::jitter(class);
    #[cfg(not(feature = "chaos"))]
    let _ = class;
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;

    #[test]
    fn configure_enable_disable_cycle() {
        assert!(!enabled());
        configure(42);
        assert!(enabled());
        register_thread(0);
        for i in 0..1_000 {
            perturb(Event::ExHandover);
            jitter(i);
        }
        disable();
        assert!(!enabled());
        // Disabled: must be a no-op (nothing to assert beyond "returns").
        perturb(Event::ExHandover);
    }
}
