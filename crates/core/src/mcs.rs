//! Classic MCS mutual-exclusion lock (paper §2.3, Algorithm 1;
//! Mellor-Crummey & Scott \[38\]).
//!
//! Requesters form a FIFO queue; each spins on a flag in its *own* queue
//! node, so lock handover touches one remote cache line instead of
//! hammering the shared word. This is the robustness/fairness base OptiQL
//! extends with optimistic reads. Included as a writer-only reference in
//! Figure 6.
//!
//! This implementation draws queue nodes from the shared [`crate::qnode`]
//! pool (the `granted` boolean of Algorithm 1 is represented by the node's
//! `version` field leaving its `INVALID` sentinel).

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use crate::qnode::{self, QNode};
use crate::spin::Spinner;
use crate::stats::{record, Event};
use crate::traits::{ExclusiveLock, WriteToken};
use crate::word::INVALID_VERSION;

/// Classic MCS lock: the word is the queue tail pointer; null means free.
#[derive(Default)]
pub struct McsLock {
    tail: AtomicPtr<QNode>,
}

impl McsLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// True iff some requester is queued or holding (diagnostic).
    pub fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    /// Acquire with a caller-provided queue node (paper Algorithm 1 left).
    ///
    /// # Safety contract
    /// `qn` must stay valid and untouched by the caller until the matching
    /// [`Self::release_with`] returns; enforced here by taking nodes from
    /// the pool in the [`ExclusiveLock`] impl.
    pub fn acquire_with(&self, qn: &QNode) {
        qn.reset();
        let me = qn as *const QNode as *mut QNode;
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if pred.is_null() {
            record(Event::ExAcquire);
            return; // lock was free; granted immediately
        }
        // Link behind the predecessor, then spin locally.
        record(Event::ExQueueWait);
        unsafe { (*pred).next.store(me, Ordering::Release) };
        let mut s = Spinner::new();
        while qn.version.load(Ordering::Acquire) == INVALID_VERSION {
            s.spin();
        }
        record(Event::ExAcquire);
    }

    /// Release with the queue node used at acquire (Algorithm 1 right).
    pub fn release_with(&self, qn: &QNode) {
        let me = qn as *const QNode as *mut QNode;
        if qn.next.load(Ordering::Acquire).is_null() {
            // Appears to have no successor: try to reset the tail.
            if self
                .tail
                .compare_exchange(me, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return; // indeed no successor
            }
            // A successor swapped in but has not linked yet; wait for it.
            let mut s = Spinner::new();
            while qn.next.load(Ordering::Acquire).is_null() {
                s.spin();
            }
        }
        // Pass the lock to the successor.
        let next = qn.next.load(Ordering::Relaxed);
        unsafe { (*next).version.store(0, Ordering::Release) };
        record(Event::ExHandover);
    }
}

impl ExclusiveLock for McsLock {
    const NAME: &'static str = "MCS";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        let id = qnode::alloc();
        self.acquire_with(qnode::to_ptr(id));
        WriteToken::from_qnode(id)
    }

    #[inline]
    fn x_unlock(&self, t: WriteToken) {
        let id = t.qnode_id();
        self.release_with(qnode::to_ptr(id));
        qnode::free(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn uncontended_cycle() {
        let l = McsLock::new();
        assert!(!l.is_locked());
        let t = l.x_lock();
        assert!(l.is_locked());
        l.x_unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn nested_distinct_locks() {
        let a = McsLock::new();
        let b = McsLock::new();
        let ta = a.x_lock();
        let tb = b.x_lock();
        b.x_unlock(tb);
        a.x_unlock(ta);
        assert!(!a.is_locked() && !b.is_locked());
    }

    #[test]
    fn mutual_exclusion_and_progress() {
        let l = Arc::new(McsLock::new());
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let t = l.x_lock();
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 40_000);
        assert!(!l.is_locked());
    }

    #[test]
    fn handover_chain_under_forced_queueing() {
        // Hold the lock while several requesters pile up, then release and
        // make sure all of them are eventually granted in order.
        let l = Arc::new(McsLock::new());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let t0 = l.x_lock();
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let l = Arc::clone(&l);
                let order = Arc::clone(&order);
                let h = std::thread::spawn(move || {
                    let t = l.x_lock();
                    order.lock().push(i);
                    l.x_unlock(t);
                });
                // Stagger arrivals so FIFO order is observable.
                std::thread::sleep(std::time::Duration::from_millis(20));
                h
            })
            .collect();
        l.x_unlock(t0);
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(
            &*order.lock(),
            &[0, 1, 2, 3],
            "MCS must grant in FIFO order"
        );
    }
}
