//! Truncated exponential backoff (Anderson \[2\]).
//!
//! Centralized locks can optionally back off between CAS retries to ease
//! contention on the lock word. The paper notes (§1.1) that backoff trades
//! fairness for throughput — "lucky" threads can be ~3× more likely to
//! acquire the lock — which is why OptiQL prefers a queue. We implement it
//! anyway as an ablation baseline (`OptLockBackoff`, `TtsBackoff`).

use std::hint;
use std::thread;

/// Exponential backoff with a truncation cap, counted in `spin_loop` hints.
#[derive(Debug, Clone)]
pub struct Backoff {
    current: u32,
    max: u32,
}

/// Initial backoff window (spin-loop hints).
pub const DEFAULT_MIN: u32 = 4;
/// Truncation cap. Chosen empirically; large enough to drain contention,
/// small enough not to idle a whole quantum.
pub const DEFAULT_MAX: u32 = 1024;

impl Default for Backoff {
    fn default() -> Self {
        Self::new(DEFAULT_MIN, DEFAULT_MAX)
    }
}

impl Backoff {
    /// Create a backoff helper with the given initial window and cap.
    pub const fn new(min: u32, max: u32) -> Self {
        Backoff { current: min, max }
    }

    /// Wait for the current window, then double it (up to the cap).
    #[inline]
    pub fn wait(&mut self) {
        for _ in 0..self.current {
            hint::spin_loop();
        }
        if self.current >= self.max {
            // At the cap: also give the scheduler a chance, which matters
            // on oversubscribed hosts.
            thread::yield_now();
        }
        self.current = (self.current.saturating_mul(2)).min(self.max);
    }

    /// Current window size (for tests / diagnostics).
    #[inline]
    pub fn window(&self) -> u32 {
        self.current
    }

    /// Reset to the initial window.
    #[inline]
    pub fn reset(&mut self) {
        self.current = DEFAULT_MIN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_doubles_until_cap() {
        let mut b = Backoff::new(4, 64);
        let mut seen = vec![b.window()];
        for _ in 0..8 {
            b.wait();
            seen.push(b.window());
        }
        assert_eq!(seen, vec![4, 8, 16, 32, 64, 64, 64, 64, 64]);
    }

    #[test]
    fn reset_restores_initial_window() {
        let mut b = Backoff::default();
        for _ in 0..20 {
            b.wait();
        }
        assert_eq!(b.window(), DEFAULT_MAX);
        b.reset();
        assert_eq!(b.window(), DEFAULT_MIN);
    }
}
