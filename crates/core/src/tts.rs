//! Test-and-test-and-set spinlock (paper Figure 2a, Rudolph & Segall \[41\]).
//!
//! The classic centralized mutual-exclusion baseline: spin reading the lock
//! word until it looks free, then CAS it to locked. No reader support, no
//! fairness, collapses under contention — included as the reference point
//! for Figure 6.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::backoff::Backoff;
use crate::spin::Spinner;
use crate::stats::{record, Event};
use crate::traits::{ExclusiveLock, WriteToken};

const UNLOCKED: u64 = 0;
const LOCKED: u64 = 1;

/// Classic TTS spinlock.
#[derive(Default)]
pub struct TtsLock {
    word: AtomicU64,
}

impl TtsLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        TtsLock {
            word: AtomicU64::new(UNLOCKED),
        }
    }

    /// Try to acquire without blocking.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.word.load(Ordering::Relaxed) == UNLOCKED
            && self
                .word
                .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// True iff currently held.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.word.load(Ordering::Relaxed) == LOCKED
    }
}

impl ExclusiveLock for TtsLock {
    const NAME: &'static str = "TTS";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        let mut s = Spinner::new();
        let mut contended = false;
        loop {
            // Test: spin on a (cacheable) read first.
            if self.word.load(Ordering::Relaxed) == UNLOCKED
                && self
                    .word
                    .compare_exchange_weak(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                record(Event::ExAcquire);
                return WriteToken::empty();
            }
            if !contended {
                contended = true;
                record(Event::ExQueueWait);
            }
            s.spin();
        }
    }

    #[inline]
    fn x_unlock(&self, _t: WriteToken) {
        self.word.store(UNLOCKED, Ordering::Release);
    }
}

/// TTS with truncated exponential backoff between retries (ablation
/// baseline; trades fairness for less coherence traffic).
#[derive(Default)]
pub struct TtsBackoff {
    word: AtomicU64,
}

impl TtsBackoff {
    /// New, unlocked.
    pub const fn new() -> Self {
        TtsBackoff {
            word: AtomicU64::new(UNLOCKED),
        }
    }
}

impl ExclusiveLock for TtsBackoff {
    const NAME: &'static str = "TTS-Backoff";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        let mut b = Backoff::default();
        let mut contended = false;
        loop {
            if self.word.load(Ordering::Relaxed) == UNLOCKED
                && self
                    .word
                    .compare_exchange_weak(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                record(Event::ExAcquire);
                return WriteToken::empty();
            }
            if !contended {
                contended = true;
                record(Event::ExQueueWait);
            }
            b.wait();
        }
    }

    #[inline]
    fn x_unlock(&self, _t: WriteToken) {
        self.word.store(UNLOCKED, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_cycle() {
        let l = TtsLock::new();
        assert!(!l.is_locked());
        let t = l.x_lock();
        assert!(l.is_locked());
        l.x_unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = TtsLock::new();
        let t = l.x_lock();
        assert!(!l.try_lock());
        l.x_unlock(t);
        assert!(l.try_lock());
        l.x_unlock(WriteToken::empty());
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let l = Arc::new(TtsLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let t = l.x_lock();
                        // Split read-modify-write: torn iff exclusion fails.
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }
}
