//! Fair queue-based reader-writer lock, "MCS-RW" (paper §7.1;
//! Mellor-Crummey & Scott, PPoPP '91 \[39\]).
//!
//! Readers and writers join one FIFO queue; consecutive readers overlap.
//! The original algorithm keeps three lock fields (`tail`, `reader_count`,
//! `next_writer`) in separate words (>16 bytes). Following the paper, we
//! apply the same queue-node-ID encoding as OptiQL (§6.3) to pack all three
//! into a single 8-byte word, which makes the per-field atomic operations
//! CAS loops on the packed word:
//!
//! ```text
//!  bits 0..20   reader_count (active readers)
//!  bits 20..31  tail queue node ID + 1        (0 = nil)
//!  bits 31..42  next_writer queue node ID + 1 (0 = nil)
//! ```
//!
//! Queue nodes come from the shared [`crate::qnode`] pool; their packed
//! `state` field holds `[blocked, successor_class]` so a queuing reader can
//! CAS both at once, as the algorithm requires. This lock is *pessimistic*:
//! readers write shared memory, which is exactly the cost the paper's
//! Figures 9–10 attribute to it.

use std::sync::atomic::Ordering;

use crate::qnode::{self, QNode};
use crate::spin::Spinner;
use crate::stats::{record, Event};
use crate::traits::{ExclusiveLock, IndexLock, WriteStrategy, WriteToken};

// --- packed lock word ---------------------------------------------------

const RC_BITS: u32 = 20;
const FIELD_BITS: u32 = 11; // 10-bit ID + 1 for the nil encoding
const RC_MASK: u64 = (1 << RC_BITS) - 1;
const TAIL_SHIFT: u32 = RC_BITS;
const TAIL_MASK: u64 = ((1 << FIELD_BITS) - 1) << TAIL_SHIFT;
const NW_SHIFT: u32 = RC_BITS + FIELD_BITS;
const NW_MASK: u64 = ((1 << FIELD_BITS) - 1) << NW_SHIFT;

/// Queue node ID + 1; 0 encodes nil.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot(u16);

const NIL: Slot = Slot(0);

impl Slot {
    #[inline]
    fn of(id: u16) -> Self {
        Slot(id + 1)
    }
    #[inline]
    fn is_nil(self) -> bool {
        self.0 == 0
    }
    #[inline]
    fn id(self) -> u16 {
        debug_assert!(self.0 != 0);
        self.0 - 1
    }
    #[inline]
    fn node(self) -> &'static QNode {
        qnode::to_ptr(self.id())
    }
}

#[inline]
fn get_tail(w: u64) -> Slot {
    Slot(((w & TAIL_MASK) >> TAIL_SHIFT) as u16)
}
#[inline]
fn get_nw(w: u64) -> Slot {
    Slot(((w & NW_MASK) >> NW_SHIFT) as u16)
}
#[inline]
fn get_rc(w: u64) -> u64 {
    w & RC_MASK
}
#[inline]
fn with_tail(w: u64, s: Slot) -> u64 {
    (w & !TAIL_MASK) | ((s.0 as u64) << TAIL_SHIFT)
}
#[inline]
fn with_nw(w: u64, s: Slot) -> u64 {
    (w & !NW_MASK) | ((s.0 as u64) << NW_SHIFT)
}

// --- queue node state field ----------------------------------------------

const BLOCKED: u32 = 1;
const SUCC_SHIFT: u32 = 8;
const SUCC_NONE: u32 = 0;
const SUCC_READER: u32 = 1 << SUCC_SHIFT;
const SUCC_WRITER: u32 = 2 << SUCC_SHIFT;
const SUCC_MASK: u32 = 3 << SUCC_SHIFT;

const CLASS_READER: u32 = 1;
const CLASS_WRITER: u32 = 2;

/// Fair queue-based reader-writer lock in one 8-byte word.
#[derive(Default)]
pub struct McsRwLock {
    word: std::sync::atomic::AtomicU64,
}

impl McsRwLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        McsRwLock {
            word: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of active readers (diagnostic).
    pub fn reader_count(&self) -> u64 {
        get_rc(self.word.load(Ordering::Relaxed))
    }

    /// True iff the queue is non-empty or readers are active (diagnostic).
    pub fn is_busy(&self) -> bool {
        self.word.load(Ordering::Relaxed) != 0
    }

    /// fetch_and_store(tail, me) on the packed word.
    #[inline]
    fn swap_tail(&self, me: Slot) -> Slot {
        let mut w = self.word.load(Ordering::Relaxed);
        loop {
            match self.word.compare_exchange_weak(
                w,
                with_tail(w, me),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(old) => return get_tail(old),
                Err(cur) => w = cur,
            }
        }
    }

    /// compare_and_store(tail, expect, nil); false if tail != expect.
    #[inline]
    fn cas_tail_to_nil(&self, expect: Slot) -> bool {
        let mut w = self.word.load(Ordering::Relaxed);
        loop {
            if get_tail(w) != expect {
                return false;
            }
            match self.word.compare_exchange_weak(
                w,
                with_tail(w, NIL),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(cur) => w = cur,
            }
        }
    }

    /// next_writer := s.
    #[inline]
    fn set_next_writer(&self, s: Slot) {
        let mut w = self.word.load(Ordering::Relaxed);
        loop {
            match self.word.compare_exchange_weak(
                w,
                with_nw(w, s),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(cur) => w = cur,
            }
        }
    }

    /// fetch_and_store(next_writer, nil).
    #[inline]
    fn swap_next_writer_nil(&self) -> Slot {
        let mut w = self.word.load(Ordering::Relaxed);
        loop {
            let old_nw = get_nw(w);
            if old_nw.is_nil() {
                // Already nil; the swap is a no-op but must still be atomic
                // w.r.t. our observation — re-verify with a CAS on the same
                // word to linearize.
                match self
                    .word
                    .compare_exchange_weak(w, w, Ordering::SeqCst, Ordering::Relaxed)
                {
                    Ok(_) => return NIL,
                    Err(cur) => {
                        w = cur;
                        continue;
                    }
                }
            }
            match self.word.compare_exchange_weak(
                w,
                with_nw(w, NIL),
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => return old_nw,
                Err(cur) => w = cur,
            }
        }
    }

    /// reader_count += 1.
    #[inline]
    fn inc_readers(&self) {
        let old = self.word.fetch_add(1, Ordering::SeqCst);
        debug_assert!(get_rc(old) < RC_MASK, "reader count overflow");
    }

    /// reader_count -= 1; returns the *previous* count.
    #[inline]
    fn dec_readers(&self) -> u64 {
        let old = self.word.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(get_rc(old) >= 1, "reader count underflow");
        get_rc(old)
    }

    // --- protocol ---------------------------------------------------

    /// start_write.
    pub fn start_write(&self, id: u16) {
        let me = Slot::of(id);
        let qn = me.node();
        qn.reset();
        qn.class.store(CLASS_WRITER, Ordering::Relaxed);
        qn.state.store(BLOCKED | SUCC_NONE, Ordering::Relaxed);

        let pred = self.swap_tail(me);
        if pred.is_nil() {
            self.set_next_writer(me);
            let w = self.word.load(Ordering::SeqCst);
            if get_rc(w) == 0 && self.swap_next_writer_nil() == me {
                // No active readers and we claimed the grant: go.
                qn.state.fetch_and(!BLOCKED, Ordering::SeqCst);
            }
        } else {
            // Tell the predecessor a writer follows, then link.
            let pq = pred.node();
            pq.state.fetch_or(SUCC_WRITER, Ordering::SeqCst);
            pq.next
                .store(qn as *const QNode as *mut QNode, Ordering::Release);
        }
        if qn.state.load(Ordering::Acquire) & BLOCKED != 0 {
            record(Event::ExQueueWait);
            let mut s = Spinner::new();
            while qn.state.load(Ordering::Acquire) & BLOCKED != 0 {
                s.spin();
            }
        }
        record(Event::ExAcquire);
    }

    /// end_write.
    pub fn end_write(&self, id: u16) {
        let me = Slot::of(id);
        let qn = me.node();
        if !qn.next.load(Ordering::Acquire).is_null() || !self.cas_tail_to_nil(me) {
            // A successor exists (or is arriving): wait for the link.
            let mut s = Spinner::new();
            let mut next = qn.next.load(Ordering::Acquire);
            while next.is_null() {
                s.spin();
                next = qn.next.load(Ordering::Acquire);
            }
            let nq = unsafe { &*next };
            if nq.class.load(Ordering::Relaxed) == CLASS_READER {
                self.inc_readers();
            }
            nq.state.fetch_and(!BLOCKED, Ordering::SeqCst);
            record(Event::ExHandover);
        }
    }

    /// start_read.
    pub fn start_read(&self, id: u16) {
        let me = Slot::of(id);
        let qn = me.node();
        qn.reset();
        qn.class.store(CLASS_READER, Ordering::Relaxed);
        qn.state.store(BLOCKED | SUCC_NONE, Ordering::Relaxed);

        let pred = self.swap_tail(me);
        if pred.is_nil() {
            self.inc_readers();
            qn.state.fetch_and(!BLOCKED, Ordering::SeqCst);
        } else {
            let pq = pred.node();
            let pred_is_writer = pq.class.load(Ordering::Relaxed) == CLASS_WRITER;
            let chained = pred_is_writer
                || pq
                    .state
                    .compare_exchange(
                        BLOCKED | SUCC_NONE,
                        BLOCKED | SUCC_READER,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok();
            if chained {
                // Predecessor is a writer or a *blocked* reader: it will
                // increment reader_count and release us when its turn comes.
                pq.next
                    .store(qn as *const QNode as *mut QNode, Ordering::Release);
                let mut s = Spinner::new();
                while qn.state.load(Ordering::Acquire) & BLOCKED != 0 {
                    s.spin();
                }
            } else {
                // Predecessor is an *active* reader: join it directly.
                self.inc_readers();
                pq.next
                    .store(qn as *const QNode as *mut QNode, Ordering::Release);
                qn.state.fetch_and(!BLOCKED, Ordering::SeqCst);
            }
        }
        // If a reader queued behind us while we were blocked, wake it now
        // (reader chaining).
        if qn.state.load(Ordering::SeqCst) & SUCC_MASK == SUCC_READER {
            let mut s = Spinner::new();
            let mut next = qn.next.load(Ordering::Acquire);
            while next.is_null() {
                s.spin();
                next = qn.next.load(Ordering::Acquire);
            }
            self.inc_readers();
            let nq = unsafe { &*next };
            nq.state.fetch_and(!BLOCKED, Ordering::SeqCst);
        }
    }

    /// end_read.
    pub fn end_read(&self, id: u16) {
        let me = Slot::of(id);
        let qn = me.node();
        if !qn.next.load(Ordering::Acquire).is_null() || !self.cas_tail_to_nil(me) {
            // We have a successor: if it is a writer, register it as the
            // next writer before we retire from the queue.
            let mut s = Spinner::new();
            let mut next = qn.next.load(Ordering::Acquire);
            while next.is_null() {
                s.spin();
                next = qn.next.load(Ordering::Acquire);
            }
            if qn.state.load(Ordering::SeqCst) & SUCC_MASK == SUCC_WRITER {
                let nq = unsafe { &*next };
                // Identity: the successor registered in our next field is a
                // pool node, so its index is recoverable.
                let nid = pool_id_of(nq);
                self.set_next_writer(Slot::of(nid));
            }
        }
        if self.dec_readers() == 1 {
            // Last active reader: hand over to the waiting writer, if any.
            let w = self.swap_next_writer_nil();
            if !w.is_nil() {
                w.node().state.fetch_and(!BLOCKED, Ordering::SeqCst);
            }
        }
    }
}

/// Recover the pool index of a queue node reference.
fn pool_id_of(qn: &QNode) -> u16 {
    let base = qnode::to_ptr(0) as *const QNode as usize;
    let addr = qn as *const QNode as usize;
    debug_assert_eq!((addr - base) % std::mem::size_of::<QNode>(), 0);
    ((addr - base) / std::mem::size_of::<QNode>()) as u16
}

impl ExclusiveLock for McsRwLock {
    const NAME: &'static str = "MCS-RW";

    #[inline]
    fn x_lock(&self) -> WriteToken {
        let id = qnode::alloc();
        self.start_write(id);
        WriteToken::from_qnode(id)
    }

    #[inline]
    fn x_unlock(&self, t: WriteToken) {
        let id = t.qnode_id();
        self.end_write(id);
        qnode::free(id);
    }
}

impl IndexLock for McsRwLock {
    const PESSIMISTIC: bool = true;
    const STRATEGY: WriteStrategy = WriteStrategy::Pessimistic;

    /// Blocking shared acquire; the returned "version" smuggles the reader's
    /// queue node ID to `r_unlock` (pessimistic locks have no version).
    #[inline]
    fn r_lock(&self) -> Option<u64> {
        let id = qnode::alloc();
        self.start_read(id);
        record(Event::ReadAdmit);
        Some(id as u64)
    }

    #[inline]
    fn r_unlock(&self, v: u64) -> bool {
        let id = v as u16;
        self.end_read(id);
        qnode::free(id);
        // Pessimistic reads hold the lock for the whole critical section,
        // so "validation" trivially succeeds.
        record(Event::ReadValidateOk);
        true
    }

    #[inline]
    fn recheck(&self, _v: u64) -> bool {
        true // we hold a shared lock; the data cannot have changed
    }

    #[inline]
    fn try_upgrade(&self, _v: u64) -> Option<WriteToken> {
        None // pessimistic coupling never upgrades in place
    }

    #[inline]
    fn is_locked_ex(&self) -> bool {
        // Exclusive ownership is not observable from the word alone
        // (the holder left the packed tail when succeeded); report queue
        // business as the closest diagnostic.
        self.is_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn word_packing_roundtrip() {
        let w = 0u64;
        let w = with_tail(w, Slot::of(1023));
        let w = with_nw(w, Slot::of(7));
        assert_eq!(get_tail(w), Slot::of(1023));
        assert_eq!(get_nw(w), Slot::of(7));
        assert_eq!(get_rc(w), 0);
        let w2 = w + 5; // five readers
        assert_eq!(get_rc(w2), 5);
        assert_eq!(get_tail(w2), Slot::of(1023));
    }

    #[test]
    fn single_writer_cycle() {
        let l = McsRwLock::new();
        let t = l.x_lock();
        l.x_unlock(t);
        assert!(!l.is_busy());
    }

    #[test]
    fn single_reader_cycle() {
        let l = McsRwLock::new();
        let v = l.r_lock().unwrap();
        assert_eq!(l.reader_count(), 1);
        assert!(l.r_unlock(v));
        assert_eq!(l.reader_count(), 0);
        assert!(!l.is_busy());
    }

    #[test]
    fn readers_overlap() {
        let l = McsRwLock::new();
        let a = l.r_lock().unwrap();
        let b = l.r_lock().unwrap();
        assert_eq!(l.reader_count(), 2);
        l.r_unlock(a);
        l.r_unlock(b);
        assert!(!l.is_busy());
    }

    #[test]
    fn writer_excludes_writers() {
        let l = Arc::new(McsRwLock::new());
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let t = l.x_lock();
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        l.x_unlock(t);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 20_000);
        assert!(!l.is_busy());
    }

    #[test]
    fn readers_exclude_writer_mutations() {
        // Writers keep (a, b) equal; readers (holding shared locks) must
        // always observe them equal — unlike optimistic readers, no
        // validation or retry is ever needed.
        let l = Arc::new(McsRwLock::new());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let (l, a, b, stop) = (
                Arc::clone(&l),
                Arc::clone(&a),
                Arc::clone(&b),
                Arc::clone(&stop),
            );
            hs.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = l.x_lock();
                    let v = a.load(Ordering::Relaxed) + 1;
                    a.store(v, Ordering::Relaxed);
                    for _ in 0..16 {
                        std::hint::spin_loop();
                    }
                    b.store(v, Ordering::Relaxed);
                    l.x_unlock(t);
                }
            }));
        }
        for _ in 0..2 {
            let (l, a, b, stop) = (
                Arc::clone(&l),
                Arc::clone(&a),
                Arc::clone(&b),
                Arc::clone(&stop),
            );
            hs.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let v = l.r_lock().unwrap();
                    let x = a.load(Ordering::Relaxed);
                    let y = b.load(Ordering::Relaxed);
                    assert_eq!(x, y, "shared lock reader saw a torn write");
                    l.r_unlock(v);
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for h in hs {
            h.join().unwrap();
        }
        assert!(!l.is_busy());
    }

    #[test]
    fn mixed_random_ops_stress() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let l = Arc::new(McsRwLock::new());
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..4)
            .map(|seed| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let mut writes = 0u64;
                    for _ in 0..3_000 {
                        if rng.random_bool(0.3) {
                            let t = l.x_lock();
                            let v = c.load(Ordering::Relaxed);
                            c.store(v + 1, Ordering::Relaxed);
                            l.x_unlock(t);
                            writes += 1;
                        } else {
                            let v = l.r_lock().unwrap();
                            let _ = c.load(Ordering::Relaxed);
                            l.r_unlock(v);
                        }
                    }
                    writes
                })
            })
            .collect();
        let total: u64 = hs.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(c.load(Ordering::Relaxed), total);
        assert!(!l.is_busy());
    }
}
