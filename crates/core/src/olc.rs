//! Shared optimistic-lock-coupling (OLC) restart protocol.
//!
//! Every index built on the lock family traverses optimistically and
//! restarts from the root when validation fails (paper §6). The restart
//! *pacing* — how long to wait before retrying, and when to hand the CPU
//! back to the scheduler — is index-independent policy, so it lives here
//! instead of being re-implemented per tree:
//!
//! * [`RestartLoop`] — a bounded restart budget with a three-step
//!   escalation ladder: a free first attempt, a short spin burst, a
//!   truncated-exponential [`Backoff`](crate::backoff::Backoff) window,
//!   and finally `thread::yield_now` so oversubscribed hosts make
//!   progress. Each counted restart feeds the cfg-gated
//!   [`stats`](crate::stats) event taxonomy *and* the owning index's
//!   [`SharedIndexStats`].
//! * [`OptimisticGuard`] — an RAII-free (plain-value) read guard pairing
//!   an [`IndexLock`] with the version snapshot taken at `r_lock`,
//!   encapsulating the validate / recheck / abandon discipline that the
//!   lock-coupling protocols repeat at every node.
//! * [`SharedIndexStats`] / [`IndexStats`] — the unified per-index
//!   accounting (operations, restarts, scheduler escalations) shared by
//!   every index, so benchmarks print one consistent restart column no
//!   matter which structure is underneath.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::backoff::Backoff;
use crate::stats::Event;
use crate::traits::{IndexLock, WriteToken};

/// Pauses (attempts) that are free: the operation's first try never
/// waits or counts as a restart.
pub const FREE_ATTEMPTS: u32 = 1;
/// Last pause served by the short spin burst ([`SPIN_HINTS`] hints).
pub const SPIN_BUDGET: u32 = 2;
/// Last pause served by the exponential [`Backoff`] window; beyond this
/// the loop escalates to `thread::yield_now`.
pub const BACKOFF_BUDGET: u32 = 3;
/// Spin-loop hints issued per pause during the spin phase.
pub const SPIN_HINTS: u32 = 4;
/// Initial backoff window (spin-loop hints) for the backoff phase.
pub const BACKOFF_MIN: u32 = 8;
/// Backoff truncation cap.
pub const BACKOFF_MAX: u32 = 1024;

/// Which rung of the escalation ladder the most recent
/// [`RestartLoop::pause`] executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPhase {
    /// No wait: either no pause has happened yet, or the free first try.
    Free,
    /// Short fixed spin burst.
    Spin,
    /// Truncated exponential backoff window.
    Backoff,
    /// Scheduler yield (the restart budget below is exhausted).
    Yield,
}

/// Atomic per-index operation/restart accounting. Owned by each index
/// (or index shard); snapshot with [`SharedIndexStats::snapshot`].
#[derive(Debug, Default)]
pub struct SharedIndexStats {
    restarts: AtomicU64,
    ops: AtomicU64,
    escalations: AtomicU64,
}

impl SharedIndexStats {
    /// A zeroed accounting block.
    pub const fn new() -> Self {
        SharedIndexStats {
            restarts: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            escalations: AtomicU64::new(0),
        }
    }

    /// Count one completed index operation (lookup/insert/update/remove/
    /// scan). Relaxed; call once per public entry point.
    #[inline]
    pub fn record_op(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` completed index operations at once. Batched (`multi_*`)
    /// entry points use this to amortize accounting to one atomic RMW per
    /// batch instead of one per key.
    #[inline]
    pub fn record_ops(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` restarts at once. The pipelined batch engines track
    /// restarts in a local counter while ops are in flight and publish the
    /// total here when the batch drains.
    #[inline]
    pub fn record_restarts(&self, n: u64) {
        self.restarts.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn record_escalation(&self) {
        self.escalations.fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate (relaxed, monotone) snapshot.
    pub fn snapshot(&self) -> IndexStats {
        IndexStats {
            restarts: self.restarts.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            escalations: self.escalations.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of the unified index accounting: one struct for every index
/// type, replacing per-tree restart counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Traversal restarts (failed validation / upgrade / admission),
    /// excluding each operation's free first attempt.
    pub restarts: u64,
    /// Completed operations (all kinds).
    pub ops: u64,
    /// Restart pauses that escalated past spinning to a scheduler yield.
    pub escalations: u64,
}

impl IndexStats {
    /// Accumulate another snapshot (e.g. summing shards of a partitioned
    /// index).
    pub fn merge(&mut self, other: IndexStats) {
        self.restarts += other.restarts;
        self.ops += other.ops;
        self.escalations += other.escalations;
    }

    /// Per-field difference `self - earlier` (saturating), for interval
    /// accounting between two snapshots.
    pub fn since(&self, earlier: &IndexStats) -> IndexStats {
        IndexStats {
            restarts: self.restarts.saturating_sub(earlier.restarts),
            ops: self.ops.saturating_sub(earlier.ops),
            escalations: self.escalations.saturating_sub(earlier.escalations),
        }
    }

    /// Restarts per completed operation (0 when no operation ran).
    pub fn restarts_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.restarts as f64 / self.ops as f64
        }
    }
}

impl std::ops::Add for IndexStats {
    type Output = IndexStats;
    fn add(mut self, rhs: IndexStats) -> IndexStats {
        self.merge(rhs);
        self
    }
}

/// Restart pacing for one index operation.
///
/// Create one per operation, call [`pause`](RestartLoop::pause) at the
/// top of the `'restart:` loop, and the ladder takes care of the rest:
/// the first pause is free, subsequent pauses spin, back off, and
/// finally yield, while feeding both the owning index's
/// [`SharedIndexStats`] and the cfg-gated [`stats`](crate::stats) event
/// given at construction.
pub struct RestartLoop<'a> {
    attempts: u32,
    backoff: Backoff,
    stats: &'a SharedIndexStats,
    event: Event,
}

impl<'a> RestartLoop<'a> {
    /// A fresh loop reporting restarts to `stats` and recording `event`
    /// (e.g. [`Event::IndexRestartBtree`]) per counted restart.
    pub fn new(stats: &'a SharedIndexStats, event: Event) -> Self {
        RestartLoop {
            attempts: 0,
            backoff: Backoff::new(BACKOFF_MIN, BACKOFF_MAX),
            stats,
            event,
        }
    }

    /// Pauses taken so far (equals traversal attempts started).
    #[inline]
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Ladder rung the most recent [`pause`](RestartLoop::pause) executed
    /// ([`RestartPhase::Free`] before the first).
    #[inline]
    pub fn phase(&self) -> RestartPhase {
        if self.attempts <= FREE_ATTEMPTS {
            RestartPhase::Free
        } else if self.attempts <= SPIN_BUDGET {
            RestartPhase::Spin
        } else if self.attempts <= BACKOFF_BUDGET {
            RestartPhase::Backoff
        } else {
            RestartPhase::Yield
        }
    }

    /// Return to the bottom of the ladder: attempts to zero, backoff
    /// window back to [`BACKOFF_MIN`].
    ///
    /// Call after a traversal attempt *succeeds* when reusing one loop
    /// across successive sub-operations (e.g. a range scan visiting many
    /// leaves): contention that stalled an earlier sub-operation says
    /// nothing about the next one, and without the reset a long scan
    /// that ate its budget early would yield on every later leaf.
    #[inline]
    pub fn reset(&mut self) {
        self.attempts = 0;
        self.backoff = Backoff::new(BACKOFF_MIN, BACKOFF_MAX);
    }

    /// Wait according to the escalation ladder; counts a restart on every
    /// pause after the first.
    #[inline]
    pub fn pause(&mut self) {
        self.attempts += 1;
        match self.phase() {
            RestartPhase::Free => {}
            RestartPhase::Spin => {
                self.count_restart();
                for _ in 0..SPIN_HINTS {
                    std::hint::spin_loop();
                }
            }
            RestartPhase::Backoff => {
                self.count_restart();
                self.backoff.wait();
            }
            RestartPhase::Yield => {
                self.count_restart();
                self.stats.record_escalation();
                std::thread::yield_now();
            }
        }
    }

    #[inline]
    fn count_restart(&self) {
        self.stats.record_restart();
        crate::stats::record(self.event);
    }
}

/// An optimistic (or pessimistic-shared) read of one [`IndexLock`],
/// carrying the version snapshot the validation discipline needs.
///
/// The guard is deliberately a plain value, not RAII: optimistic reads
/// have no cleanup on the happy path, and the lock-coupling protocols
/// need precise control over *when* validation happens. The consuming
/// methods make the state machine explicit:
///
/// * [`validate`](OptimisticGuard::validate) — end the read and report
///   whether the data read under it is consistent (`r_unlock`);
/// * [`abandon`](OptimisticGuard::abandon) — drop the read on a restart
///   path (free for optimistic locks, releases the shared lock for
///   pessimistic ones);
/// * [`try_upgrade`](OptimisticGuard::try_upgrade) — convert the read
///   into exclusive ownership; on failure the read is abandoned.
#[must_use = "an optimistic read must be validated or abandoned"]
pub struct OptimisticGuard<'a, L: IndexLock> {
    lock: &'a L,
    version: u64,
}

impl<'a, L: IndexLock> OptimisticGuard<'a, L> {
    /// Begin a read (`acquire_sh`). `None` tells the caller to restart;
    /// pessimistic locks block and always succeed.
    #[inline]
    pub fn read(lock: &'a L) -> Option<Self> {
        let version = lock.r_lock()?;
        Some(OptimisticGuard { lock, version })
    }

    /// The version snapshot taken at [`read`](OptimisticGuard::read).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Re-validate mid-read without ending it (Algorithm 4 line 13).
    #[inline]
    pub fn recheck(&self) -> bool {
        self.lock.recheck(self.version)
    }

    /// End the read: validate the snapshot (optimistic) or release the
    /// shared lock (pessimistic, always `true`).
    #[inline]
    pub fn validate(self) -> bool {
        self.lock.r_unlock(self.version)
    }

    /// Abandon the read on a restart path. Free for optimistic locks;
    /// releases the shared lock for pessimistic ones.
    #[inline]
    pub fn abandon(self) {
        if L::PESSIMISTIC {
            self.lock.r_unlock(self.version);
        }
    }

    /// Try to convert the read into exclusive ownership (§6.2). On
    /// success the read is transferred into the write; on failure the
    /// read is abandoned and the caller restarts.
    #[inline]
    pub fn try_upgrade(self) -> Option<WriteToken> {
        match self.lock.try_upgrade(self.version) {
            Some(t) => Some(t),
            None => {
                self.abandon();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optlock::OptLock;
    use crate::pthread::PthreadRwLock;
    use crate::ExclusiveLock;

    #[test]
    fn ladder_escalates_free_spin_backoff_yield() {
        let stats = SharedIndexStats::new();
        let mut rs = RestartLoop::new(&stats, Event::IndexRestartBtree);
        assert_eq!(rs.phase(), RestartPhase::Free);
        rs.pause(); // first try: free
        assert_eq!(rs.phase(), RestartPhase::Free);
        assert_eq!(stats.snapshot().restarts, 0, "first attempt is free");
        rs.pause();
        assert_eq!(rs.phase(), RestartPhase::Spin);
        rs.pause();
        assert_eq!(rs.phase(), RestartPhase::Backoff);
        rs.pause();
        assert_eq!(rs.phase(), RestartPhase::Yield);
        rs.pause();
        assert_eq!(rs.phase(), RestartPhase::Yield, "yield is terminal");
        let s = stats.snapshot();
        assert_eq!(rs.attempts(), 5);
        assert_eq!(s.restarts, 4, "every pause after the first counts");
        assert_eq!(s.escalations, 2, "two pauses yielded");
    }

    #[test]
    fn restart_budget_constants_are_ordered() {
        const {
            assert!(FREE_ATTEMPTS < SPIN_BUDGET);
            assert!(SPIN_BUDGET < BACKOFF_BUDGET);
            assert!(BACKOFF_MIN <= BACKOFF_MAX);
        }
    }

    #[test]
    fn index_stats_merge_and_since() {
        let a = IndexStats {
            restarts: 5,
            ops: 100,
            escalations: 1,
        };
        let b = IndexStats {
            restarts: 2,
            ops: 50,
            escalations: 0,
        };
        let sum = a + b;
        assert_eq!(sum.restarts, 7);
        assert_eq!(sum.ops, 150);
        assert_eq!(sum.escalations, 1);
        let d = sum.since(&b);
        assert_eq!(d.ops, 100);
        assert_eq!(d.restarts, 5);
        // since() saturates instead of underflowing.
        assert_eq!(b.since(&sum).ops, 0);
        assert!((a.restarts_per_op() - 0.05).abs() < 1e-12);
        assert_eq!(IndexStats::default().restarts_per_op(), 0.0);
    }

    #[test]
    fn ops_accounting_is_relaxed_and_monotone() {
        let stats = SharedIndexStats::new();
        for _ in 0..10 {
            stats.record_op();
        }
        assert_eq!(stats.snapshot().ops, 10);
        assert_eq!(stats.snapshot().restarts, 0);
    }

    #[test]
    fn guard_validates_unchanged_data() {
        let lock = OptLock::default();
        let g = OptimisticGuard::read(&lock).expect("free lock admits readers");
        assert!(g.recheck());
        assert!(g.validate());
    }

    #[test]
    fn guard_detects_concurrent_writer() {
        let lock = OptLock::default();
        let g = OptimisticGuard::read(&lock).expect("free lock admits readers");
        let t = lock.x_lock();
        lock.x_unlock(t);
        assert!(!g.recheck());
        assert!(!g.validate());
    }

    #[test]
    fn guard_upgrade_transfers_the_read() {
        let lock = OptLock::default();
        let g = OptimisticGuard::read(&lock).expect("free lock");
        let t = g.try_upgrade().expect("unchanged: upgrade succeeds");
        assert!(lock.is_locked_ex());
        lock.x_unlock(t);
        // A stale guard can no longer upgrade.
        let g1 = OptimisticGuard::read(&lock).expect("free lock");
        let t2 = lock.x_lock();
        lock.x_unlock(t2);
        assert!(g1.try_upgrade().is_none());
    }

    #[test]
    fn guard_abandon_releases_pessimistic_readers() {
        let lock = PthreadRwLock::default();
        let g = OptimisticGuard::read(&lock).expect("shared grant");
        g.abandon();
        // If abandon leaked the shared lock this x_lock would deadlock.
        let t = lock.x_lock();
        lock.x_unlock(t);
    }
}
