//! Queue node pool with ID ↔ pointer translation (paper §6.3).
//!
//! OptiQL stores a compact queue node *ID* in the lock word instead of a
//! 64-bit pointer, which is what lets the word carry a version number at the
//! same time. The application must therefore provide a globally accessible
//! translation between IDs and addresses. Following the paper (and FOEDUS
//! \[24\]), all queue nodes are pre-allocated in one contiguous static array so
//! an ID is simply the array index; `to_ptr` is a single indexed load.
//!
//! Nodes are handed out through a global free list fronted by small
//! per-thread caches, so steady-state allocation is a thread-local pop.
//! Database workloads need very few live nodes per thread (at most two for
//! B+-tree merges, see paper §6.1), so the 1024-node pool bounds hundreds of
//! worker threads.

use std::cell::RefCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::stats::{record, Event};
use crate::word::{INVALID_VERSION, MAX_QNODES};

/// A writer requester's queue node (paper Figure 3b).
///
/// Compared to an MCS queue node, the `granted` boolean is replaced by a
/// `version` field: the predecessor grants the lock by storing the (already
/// incremented) version number, which the new holder later publishes on
/// release. The two extra packed fields (`state`, `class`) are used only by
/// the fair reader-writer MCS variant (`McsRwLock`), which shares this pool.
///
/// Cache-line aligned (two lines on x86 to defeat adjacent-line prefetching)
/// so local spinning on one node never contends with its neighbours.
#[repr(C, align(128))]
pub struct QNode {
    /// Pointer to the successor's queue node, written by the successor.
    pub(crate) next: AtomicPtr<QNode>,
    /// `INVALID_VERSION` while waiting; the granted version afterwards.
    pub(crate) version: AtomicU64,
    /// McsRwLock: bit 0 = blocked, bits 1-2 = successor class.
    pub(crate) state: AtomicU32,
    /// McsRwLock: requester class (reader / writer).
    pub(crate) class: AtomicU32,
}

impl QNode {
    const fn new() -> Self {
        QNode {
            next: AtomicPtr::new(ptr::null_mut()),
            version: AtomicU64::new(INVALID_VERSION),
            state: AtomicU32::new(0),
            class: AtomicU32::new(0),
        }
    }

    /// Re-initialize before joining a queue.
    #[inline]
    pub fn reset(&self) {
        self.next.store(ptr::null_mut(), Ordering::Relaxed);
        self.version.store(INVALID_VERSION, Ordering::Relaxed);
        self.state.store(0, Ordering::Relaxed);
        self.class.store(0, Ordering::Relaxed);
    }

    /// Successor pointer (Acquire).
    #[inline]
    pub fn next(&self) -> *mut QNode {
        self.next.load(Ordering::Acquire)
    }

    /// Version field (Acquire) — `INVALID_VERSION` while still waiting.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

struct Pool {
    nodes: Box<[QNode]>,
    free: Mutex<Vec<u16>>,
}

impl Pool {
    fn new() -> Self {
        let mut nodes = Vec::with_capacity(MAX_QNODES);
        nodes.resize_with(MAX_QNODES, QNode::new);
        // Hand out low IDs first: makes tests deterministic and keeps the
        // hot nodes in a compact region.
        let free: Vec<u16> = (0..MAX_QNODES as u16).rev().collect();
        Pool {
            nodes: nodes.into_boxed_slice(),
            free: Mutex::new(free),
        }
    }
}

fn pool() -> &'static Pool {
    use std::sync::OnceLock;
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

/// How many IDs a thread grabs from the global free list at a time.
const LOCAL_BATCH: usize = 8;

struct LocalCache {
    ids: Vec<u16>,
}

impl Drop for LocalCache {
    fn drop(&mut self) {
        if !self.ids.is_empty() {
            pool().free.lock().append(&mut self.ids);
        }
    }
}

thread_local! {
    static CACHE: RefCell<LocalCache> = const { RefCell::new(LocalCache { ids: Vec::new() }) };
}

/// Translate a queue node ID to its address (paper's `to_ptr`).
#[inline]
pub fn to_ptr(id: u16) -> &'static QNode {
    &pool().nodes[id as usize]
}

/// Allocate a queue node ID, or `None` if the pool is exhausted.
pub fn try_alloc() -> Option<u16> {
    let from_tls = CACHE
        .try_with(|c| {
            let mut c = c.borrow_mut();
            if let Some(id) = c.ids.pop() {
                return Some(id);
            }
            // Refill from the global free list.
            let mut global = pool().free.lock();
            let take = LOCAL_BATCH.min(global.len());
            if take == 0 {
                return None;
            }
            let start = global.len() - take;
            c.ids.extend(global.drain(start..));
            c.ids.pop()
        })
        .ok();
    let got = match from_tls {
        Some(got) => got,
        // TLS already torn down (thread exit path): go straight to global.
        None => pool().free.lock().pop(),
    };
    if got.is_none() {
        record(Event::QnodeExhausted);
    }
    got
}

/// Allocate a queue node ID; panics if all `MAX_QNODES` nodes are live.
///
/// The pool size bounds the number of *concurrent* exclusive lock attempts,
/// not locks: nodes are recycled as soon as `release_ex` returns.
#[inline]
pub fn alloc() -> u16 {
    try_alloc().expect(
        "OptiQL queue node pool exhausted: more than 1024 concurrent writer \
         lock requests. Increase ID_BITS or reduce worker threads.",
    )
}

/// Return a queue node ID to the pool.
pub fn free(id: u16) {
    debug_assert!((id as usize) < MAX_QNODES);
    let returned = CACHE
        .try_with(|c| {
            let mut c = c.borrow_mut();
            c.ids.push(id);
            // Do not let one thread hoard the pool.
            if c.ids.len() > 2 * LOCAL_BATCH {
                let half = c.ids.len() / 2;
                pool().free.lock().extend(c.ids.drain(..half));
            }
        })
        .is_ok();
    if !returned {
        pool().free.lock().push(id);
    }
}

/// Number of IDs currently on the global free list (diagnostic; excludes
/// per-thread caches).
pub fn global_free_len() -> usize {
    pool().free.lock().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn qnode_is_two_cache_lines() {
        assert_eq!(std::mem::size_of::<QNode>(), 128);
        assert_eq!(std::mem::align_of::<QNode>(), 128);
    }

    #[test]
    fn alloc_free_roundtrip_preserves_ids() {
        let a = alloc();
        let b = alloc();
        assert_ne!(a, b);
        free(a);
        free(b);
    }

    #[test]
    fn translation_is_stable() {
        let id = alloc();
        let p1 = to_ptr(id) as *const QNode;
        let p2 = to_ptr(id) as *const QNode;
        assert_eq!(p1, p2);
        free(id);
    }

    #[test]
    fn distinct_ids_translate_to_distinct_nodes() {
        let ids: Vec<u16> = (0..16).map(|_| alloc()).collect();
        let ptrs: HashSet<usize> = ids
            .iter()
            .map(|&i| to_ptr(i) as *const _ as usize)
            .collect();
        assert_eq!(ptrs.len(), ids.len());
        for id in ids {
            free(id);
        }
    }

    #[test]
    fn reset_clears_all_fields() {
        let id = alloc();
        let n = to_ptr(id);
        n.next.store(n as *const _ as *mut QNode, Ordering::Relaxed);
        n.version.store(7, Ordering::Relaxed);
        n.state.store(3, Ordering::Relaxed);
        n.reset();
        assert!(n.next().is_null());
        assert_eq!(n.version(), INVALID_VERSION);
        assert_eq!(n.state.load(Ordering::Relaxed), 0);
        free(id);
    }

    #[test]
    fn many_threads_allocate_disjoint_ids() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let ids: Vec<u16> = (0..32).map(|_| alloc()).collect();
                    let set: HashSet<u16> = ids.iter().copied().collect();
                    assert_eq!(set.len(), ids.len());
                    for id in &ids {
                        free(*id);
                    }
                    ids
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
