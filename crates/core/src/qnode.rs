//! Queue node pool with ID ↔ pointer translation (paper §6.3).
//!
//! OptiQL stores a compact queue node *ID* in the lock word instead of a
//! 64-bit pointer, which is what lets the word carry a version number at the
//! same time. The application must therefore provide a globally accessible
//! translation between IDs and addresses. Following the paper (and FOEDUS
//! \[24\]), all queue nodes are pre-allocated in one contiguous static array so
//! an ID is simply the array index; `to_ptr` is a single indexed load.
//!
//! Nodes are handed out through a **lock-free global free list** (a tagged
//! Treiber stack over a side table of next-IDs) fronted by small fixed-size
//! per-thread caches, so steady-state allocation is a branch and a couple of
//! thread-local stores — no lock, no `RefCell` borrow flag, no heap. The
//! per-thread cache is capped at twice the refill batch; surplus beyond the
//! cap is spilled back to the global stack on release so one thread can
//! never hoard the pool.
//!
//! Database workloads need very few live nodes per thread (at most two for
//! B+-tree merges, see paper §6.1), so the 1024-node pool bounds hundreds of
//! worker threads.

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::stats::{record, Event};
use crate::word::{INVALID_VERSION, MAX_QNODES};

/// A writer requester's queue node (paper Figure 3b).
///
/// Compared to an MCS queue node, the `granted` boolean is replaced by a
/// `version` field: the predecessor grants the lock by storing the (already
/// incremented) version number, which the new holder later publishes on
/// release. The two extra packed fields (`state`, `class`) are used only by
/// the fair reader-writer MCS variant (`McsRwLock`), which shares this pool.
///
/// Cache-line aligned (two lines on x86 to defeat adjacent-line prefetching)
/// so local spinning on one node never contends with its neighbours.
#[repr(C, align(128))]
pub struct QNode {
    /// Pointer to the successor's queue node, written by the successor.
    pub(crate) next: AtomicPtr<QNode>,
    /// `INVALID_VERSION` while waiting; the granted version afterwards.
    pub(crate) version: AtomicU64,
    /// McsRwLock: bit 0 = blocked, bits 1-2 = successor class.
    pub(crate) state: AtomicU32,
    /// McsRwLock: requester class (reader / writer).
    pub(crate) class: AtomicU32,
}

impl QNode {
    const fn new() -> Self {
        QNode {
            next: AtomicPtr::new(ptr::null_mut()),
            version: AtomicU64::new(INVALID_VERSION),
            state: AtomicU32::new(0),
            class: AtomicU32::new(0),
        }
    }

    /// Re-initialize before joining a queue.
    #[inline]
    pub fn reset(&self) {
        self.next.store(ptr::null_mut(), Ordering::Relaxed);
        self.version.store(INVALID_VERSION, Ordering::Relaxed);
        self.state.store(0, Ordering::Relaxed);
        self.class.store(0, Ordering::Relaxed);
    }

    /// Successor pointer (Acquire).
    #[inline]
    pub fn next(&self) -> *mut QNode {
        self.next.load(Ordering::Acquire)
    }

    /// Version field (Acquire) — `INVALID_VERSION` while still waiting.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// "No node" sentinel in the stack head and the next-ID side table
/// (`MAX_QNODES` is far below it, so it can never collide with a real ID).
const NONE: u32 = 0xFFFF;

/// Lock-free pool: a Treiber stack whose links live in a side table
/// (`free_next`) instead of the nodes themselves, and whose head word packs
/// `(tag << 16) | top_id`. The 48-bit tag is bumped on every successful
/// push/pop, which defeats the classic ABA interleaving (pop reads `top` and
/// its next, a concurrent pop+push cycle reinstates `top` with a *different*
/// next, stale CAS would corrupt the list — but the tag no longer matches).
struct Pool {
    nodes: Box<[QNode]>,
    /// `free_next[i]` = ID below `i` on the free stack, or [`NONE`].
    /// Only meaningful while `i` is on the stack.
    free_next: Box<[AtomicU32]>,
    /// `(tag << 16) | top_id` — see struct docs.
    head: AtomicU64,
    /// Number of IDs on the global stack (exact when quiescent; excludes
    /// per-thread caches).
    free_len: AtomicUsize,
}

const fn pack(tag: u64, id: u32) -> u64 {
    (tag << 16) | id as u64
}

impl Pool {
    fn new() -> Self {
        let mut nodes = Vec::with_capacity(MAX_QNODES);
        nodes.resize_with(MAX_QNODES, QNode::new);
        // Initial stack: 0 on top, MAX_QNODES-1 at the bottom. Handing out
        // low IDs first makes tests deterministic and keeps the hot nodes
        // in a compact region.
        let free_next: Vec<AtomicU32> = (0..MAX_QNODES)
            .map(|i| {
                AtomicU32::new(if i + 1 < MAX_QNODES {
                    (i + 1) as u32
                } else {
                    NONE
                })
            })
            .collect();
        Pool {
            nodes: nodes.into_boxed_slice(),
            free_next: free_next.into_boxed_slice(),
            head: AtomicU64::new(pack(0, 0)),
            free_len: AtomicUsize::new(MAX_QNODES),
        }
    }

    fn push(&self, id: u16) {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let (tag, top) = (head >> 16, (head & 0xFFFF) as u32);
            self.free_next[id as usize].store(top, Ordering::Relaxed);
            // Release publishes the `free_next` link to the next popper.
            match self.head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), id as u32),
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.free_len.fetch_add(1, Ordering::Relaxed);
    }

    fn pop(&self) -> Option<u16> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, top) = (head >> 16, (head & 0xFFFF) as u32);
            if top == NONE {
                return None;
            }
            let next = self.free_next[top as usize].load(Ordering::Relaxed);
            match self.head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), next),
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.free_len.fetch_sub(1, Ordering::Relaxed);
                    return Some(top as u16);
                }
                Err(h) => head = h,
            }
        }
    }
}

fn pool() -> &'static Pool {
    use std::sync::OnceLock;
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

/// How many IDs a thread grabs from the global free list at a time.
const LOCAL_BATCH: usize = 8;

/// Per-thread cache capacity: twice the refill batch. `free` spills a batch
/// back to the global stack when the cache is full, so a thread parks at
/// most `CACHE_CAP` IDs.
const CACHE_CAP: usize = 2 * LOCAL_BATCH;

/// Fixed-size per-thread ID stack. All-`Cell` (no `RefCell` borrow flag, no
/// heap) so the alloc/free fast path is a load, a bounds-free store and a
/// length update.
struct LocalCache {
    len: Cell<usize>,
    ids: [Cell<u16>; CACHE_CAP],
}

impl Drop for LocalCache {
    fn drop(&mut self) {
        let p = pool();
        for i in 0..self.len.get() {
            p.push(self.ids[i].get());
        }
    }
}

thread_local! {
    static CACHE: LocalCache = const {
        LocalCache {
            len: Cell::new(0),
            ids: [const { Cell::new(0) }; CACHE_CAP],
        }
    };
}

/// Translate a queue node ID to its address (paper's `to_ptr`).
#[inline]
pub fn to_ptr(id: u16) -> &'static QNode {
    &pool().nodes[id as usize]
}

/// Allocate a queue node ID, or `None` if the pool is exhausted.
#[inline]
pub fn try_alloc() -> Option<u16> {
    let got = CACHE
        .try_with(|c| {
            let len = c.len.get();
            if len > 0 {
                c.len.set(len - 1);
                return Some(c.ids[len - 1].get());
            }
            refill(c)
        })
        // TLS already torn down (thread exit path): go straight to global.
        .unwrap_or_else(|_| pool().pop());
    if got.is_none() {
        record(Event::QnodeExhausted);
    }
    got
}

/// Cache miss: pull a batch from the global stack, keep one.
#[cold]
fn refill(c: &LocalCache) -> Option<u16> {
    let p = pool();
    let first = p.pop()?;
    let mut len = 0;
    while len < LOCAL_BATCH - 1 {
        match p.pop() {
            Some(id) => {
                c.ids[len].set(id);
                len += 1;
            }
            None => break,
        }
    }
    c.len.set(len);
    Some(first)
}

/// Allocate a queue node ID; panics if all `MAX_QNODES` nodes are live.
///
/// The pool size bounds the number of *concurrent* exclusive lock attempts,
/// not locks: nodes are recycled as soon as `release_ex` returns.
#[inline]
pub fn alloc() -> u16 {
    try_alloc().expect(
        "OptiQL queue node pool exhausted: more than 1024 concurrent writer \
         lock requests. Increase ID_BITS or reduce worker threads.",
    )
}

/// Return a queue node ID to the pool.
#[inline]
pub fn free(id: u16) {
    debug_assert!((id as usize) < MAX_QNODES);
    let returned = CACHE
        .try_with(|c| {
            let len = c.len.get();
            if len == CACHE_CAP {
                // Do not let one thread hoard the pool: spill a batch.
                spill(c);
                c.ids[CACHE_CAP - LOCAL_BATCH].set(id);
                c.len.set(CACHE_CAP - LOCAL_BATCH + 1);
            } else {
                c.ids[len].set(id);
                c.len.set(len + 1);
            }
        })
        .is_ok();
    if !returned {
        pool().push(id);
    }
}

/// Cache overflow: return the oldest `LOCAL_BATCH` IDs to the global stack.
#[cold]
fn spill(c: &LocalCache) {
    let p = pool();
    for i in 0..LOCAL_BATCH {
        p.push(c.ids[i].get());
    }
    for i in LOCAL_BATCH..CACHE_CAP {
        c.ids[i - LOCAL_BATCH].set(c.ids[i].get());
    }
}

/// Number of IDs currently on the global free list (diagnostic; excludes
/// per-thread caches).
pub fn global_free_len() -> usize {
    pool().free_len.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn qnode_is_two_cache_lines() {
        assert_eq!(std::mem::size_of::<QNode>(), 128);
        assert_eq!(std::mem::align_of::<QNode>(), 128);
    }

    #[test]
    fn alloc_free_roundtrip_preserves_ids() {
        let a = alloc();
        let b = alloc();
        assert_ne!(a, b);
        free(a);
        free(b);
    }

    #[test]
    fn translation_is_stable() {
        let id = alloc();
        let p1 = to_ptr(id) as *const QNode;
        let p2 = to_ptr(id) as *const QNode;
        assert_eq!(p1, p2);
        free(id);
    }

    #[test]
    fn distinct_ids_translate_to_distinct_nodes() {
        let ids: Vec<u16> = (0..16).map(|_| alloc()).collect();
        let ptrs: HashSet<usize> = ids
            .iter()
            .map(|&i| to_ptr(i) as *const _ as usize)
            .collect();
        assert_eq!(ptrs.len(), ids.len());
        for id in ids {
            free(id);
        }
    }

    #[test]
    fn reset_clears_all_fields() {
        let id = alloc();
        let n = to_ptr(id);
        n.next.store(n as *const _ as *mut QNode, Ordering::Relaxed);
        n.version.store(7, Ordering::Relaxed);
        n.state.store(3, Ordering::Relaxed);
        n.reset();
        assert!(n.next().is_null());
        assert_eq!(n.version(), INVALID_VERSION);
        assert_eq!(n.state.load(Ordering::Relaxed), 0);
        free(id);
    }

    #[test]
    fn many_threads_allocate_disjoint_ids() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let ids: Vec<u16> = (0..32).map(|_| alloc()).collect();
                    let set: HashSet<u16> = ids.iter().copied().collect();
                    assert_eq!(set.len(), ids.len());
                    for id in &ids {
                        free(*id);
                    }
                    ids
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Sibling tests run concurrently and hold IDs transiently, so exact
    /// counts race; poll until the condition holds (every holder returns
    /// its IDs on test-thread exit) or time out.
    fn poll_until(what: &str, cond: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !cond() {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for: {what} (global_free_len={})",
                global_free_len()
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn cache_spill_caps_thread_hoarding() {
        // Allocate and release more IDs than the cache holds; the surplus
        // must land back on the global stack, bounded by CACHE_CAP. Run in
        // a dedicated thread so its cache starts empty and is torn down.
        let before = global_free_len();
        std::thread::spawn(|| {
            let ids: Vec<u16> = (0..4 * CACHE_CAP).map(|_| alloc()).collect();
            for id in ids {
                free(id);
            }
            // Everything beyond the cache cap is already back on the
            // global stack before this thread exits.
            assert!(global_free_len() + CACHE_CAP + before_slack() >= MAX_QNODES);
        })
        .join()
        .unwrap();
        poll_until("spilled ids return to the global stack", || {
            global_free_len() + CACHE_CAP >= before
        });
    }

    /// Upper bound on IDs sibling tests may hold at any instant (their
    /// allocations plus per-thread caches).
    fn before_slack() -> usize {
        512
    }

    #[test]
    fn concurrent_churn_loses_no_ids() {
        // Hammer the Treiber stack from several threads, then verify the
        // global count recovers once every thread has exited (their cache
        // destructors return all parked IDs).
        let before = global_free_len();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10_000 {
                        let a = alloc();
                        let b = alloc();
                        free(a);
                        free(b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        poll_until("churn threads return every id", || {
            global_free_len() >= before
        });
    }
}
