//! Unified lock interfaces used by the index lock-coupling protocols and the
//! microbenchmark harness.
//!
//! Two layers:
//!
//! * [`ExclusiveLock`] — writer-only mutual exclusion. Implemented by every
//!   lock in the crate (including reader-capable ones); this is what the
//!   paper's Figure 6 microbenchmark exercises.
//! * [`IndexLock`] — adds the optimistic/shared read interface of paper
//!   §4.1 and the upgrade interface of §6.2. Pessimistic reader-writer locks
//!   implement the same interface by making `r_lock` blocking and
//!   `r_unlock` an actual release (validation trivially succeeds), which
//!   turns the same index traversal code into classic lock coupling —
//!   exactly how the paper runs its pessimistic baselines.

/// Token returned by `x_lock`, to be passed back to `x_unlock`.
///
/// Queue-based locks store the queue node ID of the acquisition here;
/// centralized locks ignore it. `WriteToken` is deliberately `Copy` and
/// opaque so index code can thread it through without caring which lock is
/// underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteToken(pub(crate) u64);

impl WriteToken {
    /// Token for locks that carry no per-acquisition state.
    #[inline]
    pub const fn empty() -> Self {
        WriteToken(0)
    }

    /// The queue node ID carried by this token (queue-based locks only).
    #[inline]
    pub const fn qnode_id(self) -> u16 {
        self.0 as u16
    }

    #[inline]
    pub(crate) const fn from_qnode(id: u16) -> Self {
        WriteToken(id as u64)
    }
}

/// How an index write path should obtain exclusive ownership of a node.
/// Determined per lock type at compile time (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStrategy {
    /// Classic OLC: read-validate then CAS-upgrade the recorded version; on
    /// failure restart from the root (centralized optimistic locks).
    Upgrade,
    /// Paper Algorithm 4: acquire the lock directly (blocking, queued) at
    /// the leaf, then validate the parent; avoids the re-search after a
    /// failed upgrade (OptiQL).
    DirectLock,
    /// As `DirectLock`, but with adjustable opportunistic read: keep
    /// admitting readers until the writer has located its target slot
    /// (OptiQL-AOR, §5.3/§7.4).
    DirectLockAor,
    /// Pessimistic lock coupling: readers hold shared locks, writers hold
    /// exclusive locks during the descent (MCS-RW, pthread).
    Pessimistic,
}

/// Writer-only mutual exclusion.
pub trait ExclusiveLock: Send + Sync + Default + 'static {
    /// Human-readable name used by the benchmark harness (matches the
    /// paper's legends: "OptLock", "OptiQL", "MCS", ...).
    const NAME: &'static str;

    /// Acquire the lock in exclusive mode. Blocking.
    fn x_lock(&self) -> WriteToken;

    /// Release the lock in exclusive mode.
    fn x_unlock(&self, token: WriteToken);
}

/// Full index-locking interface: optimistic (or pessimistic-shared) readers,
/// exclusive writers, and version upgrade.
pub trait IndexLock: ExclusiveLock {
    /// True when `r_lock` blocks and actually holds a shared lock.
    const PESSIMISTIC: bool;

    /// Strategy the index write paths should use with this lock.
    const STRATEGY: WriteStrategy;

    /// Begin a read (paper `acquire_sh`). Optimistic locks return a version
    /// snapshot without writing shared memory; `None` tells the caller to
    /// retry. Pessimistic locks block until the shared lock is granted and
    /// always return `Some`.
    fn r_lock(&self) -> Option<u64>;

    /// End a read (paper `release_sh`): validate the snapshot (optimistic)
    /// or release the shared lock (pessimistic; always `true`).
    ///
    /// Optimistic implementations issue an `Acquire` fence before the
    /// validation load so every data read between `r_lock` and `r_unlock`
    /// is ordered before it (seqlock idiom).
    fn r_unlock(&self, v: u64) -> bool;

    /// Re-validate a snapshot without ending the read (used mid-traversal,
    /// e.g. Algorithm 4 line 13). Pessimistic locks trivially succeed.
    fn recheck(&self, v: u64) -> bool;

    /// Try to upgrade a read at snapshot `v` to exclusive ownership
    /// (paper §6.2). Fails (returns `None`) if the protected data may have
    /// changed since `v` was taken, or if the lock does not support
    /// upgrading. A successful upgrade transfers the read into a write: no
    /// `r_unlock` must follow.
    fn try_upgrade(&self, v: u64) -> Option<WriteToken>;

    /// True iff currently held in exclusive mode (diagnostic).
    fn is_locked_ex(&self) -> bool;

    /// Adjustable-opportunistic-read acquire (paper §5.3). Locks that do
    /// not support AOR fall back to a plain exclusive acquire, so index
    /// protocols can call this unconditionally.
    #[inline]
    fn x_lock_adjustable(&self) -> WriteToken {
        self.x_lock()
    }

    /// Close the reader-admission window opened by
    /// [`IndexLock::x_lock_adjustable`]. Must run before the holder
    /// modifies protected data. No-op for locks without AOR.
    #[inline]
    fn x_finish_adjustable(&self, _token: WriteToken) {}
}

/// Adjustable opportunistic read (paper §5.3): split exclusive acquisition
/// so the caller decides when to stop admitting opportunistic readers.
pub trait AdjustableOpRead: IndexLock {
    /// Acquire the lock in exclusive mode but leave opportunistic read
    /// enabled. Readers keep being admitted (and will fail validation later
    /// if they overlap the writer's modification window).
    fn x_lock_aor(&self) -> WriteToken;

    /// Close the opportunistic-read window. Must be called before the
    /// holder modifies protected data.
    fn x_finish_aor(&self, token: WriteToken);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_token_roundtrips_qnode_id() {
        let t = WriteToken::from_qnode(1023);
        assert_eq!(t.qnode_id(), 1023);
        assert_eq!(WriteToken::empty().qnode_id(), 0);
    }
}
