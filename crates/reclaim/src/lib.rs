//! # optiql-reclaim — epoch-based memory reclamation (EBR)
//!
//! Optimistic readers traverse index nodes *without holding any lock*, so a
//! node unlinked by a structural modification (leaf merge, path collapse)
//! cannot be freed immediately: a reader that took its snapshot before the
//! unlink may still be dereferencing it (it will fail validation afterwards,
//! but the memory must stay mapped until then). This crate provides the
//! classic three-epoch reclamation scheme used by memory-optimized engines:
//!
//! * Threads **pin** the current global epoch before touching shared nodes
//!   and unpin when done.
//! * Retired memory is stamped with the epoch at retirement and freed only
//!   after the global epoch has advanced twice — at which point no pinned
//!   thread can still observe it.
//! * The global epoch advances when every pinned thread has caught up.
//!
//! The implementation is deliberately simple and fully checked: a fixed
//! registry of cache-padded participant slots, per-thread garbage bags, and
//! an orphan list for garbage left behind by exiting threads.
//!
//! ```
//! let collector = optiql_reclaim::Collector::new();
//! let guard = collector.pin();
//! let boxed = Box::new(42u64);
//! // `retire_box` defers the drop until all concurrent pins are released.
//! guard.retire_box(boxed);
//! drop(guard);
//! collector.flush(); // drive reclamation forward
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

/// Maximum number of threads that can be pinned simultaneously.
pub const MAX_PARTICIPANTS: usize = 256;

/// A participant slot is free.
const SLOT_FREE: u64 = u64::MAX;
/// The slot is owned by a thread but not currently pinned.
const SLOT_IDLE: u64 = u64::MAX - 1;

/// How many retired objects a thread accumulates before trying to advance
/// the epoch and collect.
const COLLECT_THRESHOLD: usize = 64;

type Deferred = Box<dyn FnOnce() + Send>;

struct Bag {
    epoch: u64,
    items: Vec<Deferred>,
}

struct Shared {
    /// Global epoch counter.
    epoch: AtomicU64,
    /// Per-participant pinned epoch (`SLOT_FREE`, `SLOT_IDLE`, or an epoch).
    slots: Box<[CachePadded<AtomicU64>]>,
    /// Garbage abandoned by exited threads, grouped by retirement epoch.
    orphans: Mutex<Vec<Bag>>,
    /// Diagnostic: objects currently deferred (global, approximate).
    deferred_count: AtomicUsize,
}

impl Shared {
    /// Smallest epoch any pinned thread observes, or the global epoch if
    /// nothing is pinned.
    fn min_pinned(&self) -> u64 {
        let mut min = u64::MAX;
        for s in self.slots.iter() {
            let e = s.load(Ordering::Acquire);
            if e < SLOT_IDLE && e < min {
                min = e;
            }
        }
        if min == u64::MAX {
            self.epoch.load(Ordering::Acquire)
        } else {
            min
        }
    }

    /// Try to advance the global epoch; succeeds when every pinned thread
    /// has observed the current one.
    fn try_advance(&self) -> u64 {
        let global = self.epoch.load(Ordering::Acquire);
        for s in self.slots.iter() {
            let e = s.load(Ordering::Acquire);
            if e < SLOT_IDLE && e != global {
                return global; // a straggler is still in an older epoch
            }
        }
        let _ =
            self.epoch
                .compare_exchange(global, global + 1, Ordering::AcqRel, Ordering::Acquire);
        self.epoch.load(Ordering::Acquire)
    }

    /// Free every orphaned bag whose epoch is at least two behind the
    /// minimum pinned epoch.
    fn collect_orphans(&self) {
        let safe_before = self.min_pinned().saturating_sub(1);
        let mut freed = Vec::new();
        {
            let mut orphans = self.orphans.lock();
            let mut i = 0;
            while i < orphans.len() {
                if orphans[i].epoch < safe_before {
                    freed.push(orphans.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for bag in freed {
            self.deferred_count
                .fetch_sub(bag.items.len(), Ordering::Relaxed);
            for f in bag.items {
                f();
            }
        }
    }
}

/// An epoch-based garbage collector domain.
///
/// Cheap to clone-share via [`Collector::handle`]; all handles and guards
/// refer to the same domain.
pub struct Collector {
    shared: Arc<Shared>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Create a new reclamation domain.
    pub fn new() -> Self {
        let slots = (0..MAX_PARTICIPANTS)
            .map(|_| CachePadded::new(AtomicU64::new(SLOT_FREE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Collector {
            shared: Arc::new(Shared {
                epoch: AtomicU64::new(0),
                slots,
                orphans: Mutex::new(Vec::new()),
                deferred_count: AtomicUsize::new(0),
            }),
        }
    }

    /// A shareable handle to this domain.
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Pin the current thread (see [`Handle::pin`]).
    pub fn pin(&self) -> Guard {
        self.handle().pin()
    }

    /// Current global epoch (diagnostic).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Number of objects currently awaiting reclamation (approximate).
    pub fn deferred(&self) -> usize {
        self.shared.deferred_count.load(Ordering::Relaxed)
    }

    /// Advance the epoch and reclaim everything that is safe. Call from a
    /// quiescent point (no guard held by this thread).
    pub fn flush(&self) {
        LOCAL.with(|l| {
            if let Some(local) = l.borrow_mut().as_mut() {
                if Arc::ptr_eq(&local.shared, &self.shared) {
                    local.seal_and_orphan();
                }
            }
        });
        // Two advances move the frontier past everything already retired.
        self.shared.try_advance();
        self.shared.try_advance();
        self.shared.collect_orphans();
    }
}

/// Shareable handle to a [`Collector`] domain.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

struct Local {
    shared: Arc<Shared>,
    slot: usize,
    /// Re-entrant pin depth.
    depth: usize,
    /// Garbage bags not yet handed to the domain, newest last.
    bags: Vec<Bag>,
    pins: u64,
}

impl Local {
    fn current_bag(&mut self, epoch: u64) -> &mut Bag {
        if self.bags.last().map(|b| b.epoch) != Some(epoch) {
            self.bags.push(Bag {
                epoch,
                items: Vec::new(),
            });
        }
        self.bags.last_mut().unwrap()
    }

    /// Hand every local bag to the domain's orphan list.
    fn seal_and_orphan(&mut self) {
        if self.bags.is_empty() {
            return;
        }
        let mut orphans = self.shared.orphans.lock();
        orphans.append(&mut self.bags);
    }

    /// Free local bags that are old enough; push the rest along.
    fn collect(&mut self) {
        let safe_before = self.shared.min_pinned().saturating_sub(1);
        let mut i = 0;
        while i < self.bags.len() {
            if self.bags[i].epoch < safe_before {
                let bag = self.bags.swap_remove(i);
                self.shared
                    .deferred_count
                    .fetch_sub(bag.items.len(), Ordering::Relaxed);
                for f in bag.items {
                    f();
                }
            } else {
                i += 1;
            }
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.seal_and_orphan();
        self.shared.slots[self.slot].store(SLOT_FREE, Ordering::Release);
        self.shared.collect_orphans();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(shared: &Arc<Shared>, f: impl FnOnce(&mut Local) -> R) -> R {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let reinit = match l.as_ref() {
            Some(local) => !Arc::ptr_eq(&local.shared, shared),
            None => true,
        };
        if reinit {
            // Register in a free slot.
            let slot = (0..MAX_PARTICIPANTS)
                .find(|&i| {
                    shared.slots[i]
                        .compare_exchange(SLOT_FREE, SLOT_IDLE, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                })
                .expect("reclamation participant registry full");
            // If the previous domain's Local existed, drop it (orphans its
            // garbage there).
            *l = Some(Local {
                shared: Arc::clone(shared),
                slot,
                depth: 0,
                bags: Vec::new(),
                pins: 0,
            });
        }
        f(l.as_mut().unwrap())
    })
}

impl Handle {
    /// Pin the current thread into the domain. While the returned [`Guard`]
    /// lives, memory retired *after* this point is guaranteed to stay
    /// mapped. Guards nest.
    pub fn pin(&self) -> Guard {
        with_local(&self.shared, |local| {
            if local.depth == 0 {
                let e = self.shared.epoch.load(Ordering::Acquire);
                self.shared.slots[local.slot].store(e, Ordering::SeqCst);
                local.pins += 1;
                // Periodically help the epoch forward.
                if local.pins % 128 == 0 {
                    self.shared.try_advance();
                }
            }
            local.depth += 1;
        });
        Guard {
            shared: Arc::clone(&self.shared),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Current global epoch (diagnostic).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }
}

/// RAII pin into a reclamation domain.
///
/// `!Send`: the pin is accounted in the creating thread's participant slot.
pub struct Guard {
    shared: Arc<Shared>,
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl Guard {
    /// Defer an arbitrary closure until no pinned thread can still hold
    /// references from before this call.
    pub fn defer(&self, f: impl FnOnce() + Send + 'static) {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        self.shared.deferred_count.fetch_add(1, Ordering::Relaxed);
        with_local(&self.shared, |local| {
            local.current_bag(epoch).items.push(Box::new(f));
            let total: usize = local.bags.iter().map(|b| b.items.len()).sum();
            if total >= COLLECT_THRESHOLD {
                self.shared.try_advance();
                local.collect();
            }
        });
    }

    /// Retire a boxed object: its destructor runs once reclamation is safe.
    pub fn retire_box<T: Send + 'static>(&self, b: Box<T>) {
        self.defer(move || drop(b));
    }

    /// Retire a raw pointer that was created by `Box::into_raw`.
    ///
    /// # Safety
    /// `ptr` must originate from `Box::<T>::into_raw`, must not be used
    /// after this call, and must not be retired twice.
    pub unsafe fn retire_ptr<T: Send + 'static>(&self, ptr: *mut T) {
        let addr = ptr as usize;
        self.defer(move || {
            // Safety: forwarded from the caller contract.
            drop(unsafe { Box::from_raw(addr as *mut T) });
        });
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        with_local(&self.shared, |local| {
            local.depth -= 1;
            if local.depth == 0 {
                self.shared.slots[local.slot].store(SLOT_IDLE, Ordering::SeqCst);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn drop_counter() -> (Arc<AtomicUsize>, impl Fn() -> DropBomb) {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        (c, move || DropBomb(Arc::clone(&c2)))
    }

    struct DropBomb(Arc<AtomicUsize>);
    impl Drop for DropBomb {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn retire_runs_destructor_after_flush() {
        let c = Collector::new();
        let (count, make) = drop_counter();
        {
            let g = c.pin();
            g.retire_box(Box::new(make()));
        }
        assert_eq!(count.load(Ordering::Relaxed), 0, "not freed while fresh");
        c.flush();
        c.flush();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert_eq!(c.deferred(), 0);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let c = Collector::new();
        let (count, make) = drop_counter();
        let h = c.handle();

        // A reader pinned in another thread holds the epoch back.
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let reader = std::thread::spawn(move || {
            let _g = h.pin();
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        });
        started_rx.recv().unwrap();

        {
            let g = c.pin();
            g.retire_box(Box::new(make()));
        }
        for _ in 0..4 {
            c.flush();
        }
        assert_eq!(
            count.load(Ordering::Relaxed),
            0,
            "object freed while a reader from an older epoch is pinned"
        );

        release_tx.send(()).unwrap();
        reader.join().unwrap();
        for _ in 0..4 {
            c.flush();
        }
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_pins_do_not_unpin_early() {
        let c = Collector::new();
        let g1 = c.pin();
        let g2 = c.pin();
        drop(g1);
        // Still pinned through g2: epoch must not advance past us silently;
        // simply check that dropping the outer guard keeps the slot pinned.
        let pinned = c
            .shared
            .slots
            .iter()
            .any(|s| s.load(Ordering::Relaxed) < SLOT_IDLE);
        assert!(pinned);
        drop(g2);
        let pinned = c
            .shared
            .slots
            .iter()
            .any(|s| s.load(Ordering::Relaxed) < SLOT_IDLE);
        assert!(!pinned);
    }

    #[test]
    fn thread_exit_orphans_then_collects() {
        let c = Collector::new();
        let (count, make) = drop_counter();
        let h = c.handle();
        let bomb = make();
        std::thread::spawn(move || {
            let g = h.pin();
            g.retire_box(Box::new(bomb));
        })
        .join()
        .unwrap();
        for _ in 0..4 {
            c.flush();
        }
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn heavy_concurrent_retire_frees_everything() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        let c = Collector::new();
        let (count, _) = drop_counter();
        let hs: Vec<_> = (0..THREADS)
            .map(|_| {
                let h = c.handle();
                let count = Arc::clone(&count);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        let g = h.pin();
                        g.retire_box(Box::new(DropBomb(Arc::clone(&count))));
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        for _ in 0..4 {
            c.flush();
        }
        assert_eq!(count.load(Ordering::Relaxed), THREADS * PER_THREAD);
        assert_eq!(c.deferred(), 0);
    }

    #[test]
    fn defer_closure_runs_exactly_once() {
        let c = Collector::new();
        let n = Arc::new(AtomicUsize::new(0));
        {
            let g = c.pin();
            let n2 = Arc::clone(&n);
            g.defer(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
        }
        for _ in 0..6 {
            c.flush();
        }
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn epoch_advances_without_participants() {
        let c = Collector::new();
        let e0 = c.epoch();
        c.flush();
        assert!(c.epoch() > e0);
    }
}
