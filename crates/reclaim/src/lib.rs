//! # optiql-reclaim — epoch-based memory reclamation (EBR)
//!
//! Optimistic readers traverse index nodes *without holding any lock*, so a
//! node unlinked by a structural modification (leaf merge, path collapse)
//! cannot be freed immediately: a reader that took its snapshot before the
//! unlink may still be dereferencing it (it will fail validation afterwards,
//! but the memory must stay mapped until then). This crate provides the
//! classic three-epoch reclamation scheme used by memory-optimized engines:
//!
//! * Threads **pin** the current global epoch before touching shared nodes
//!   and unpin when done.
//! * Retired memory is stamped with the epoch at retirement and freed only
//!   after the global epoch has advanced twice — at which point no pinned
//!   thread can still observe it.
//! * The global epoch advances when every pinned thread has caught up.
//!
//! The implementation is a fixed registry of cache-padded participant
//! slots, per-thread garbage bags, and an orphan list for garbage left
//! behind by exiting threads.
//!
//! ## Fast path
//!
//! `pin()` sits under every index operation, so it is engineered down to a
//! handful of unsynchronized instructions (Fraser-style EBR, as in
//! crossbeam-epoch):
//!
//! * the thread's participant record is reached through a raw
//!   thread-local pointer ([`Guard`]s carry it too), so neither `pin()`
//!   nor `Guard::drop` clones an `Arc` or takes a `RefCell` borrow;
//! * the pinned-epoch publication is a `Relaxed` store followed by one
//!   `SeqCst` fence (the store→load barrier the protocol needs), instead
//!   of a `SeqCst` store per pin;
//! * the global epoch is re-read only every [`EPOCH_REFRESH`] pins;
//!   in between, the pin republishes the cached value. Publishing an
//!   older epoch is *conservative*: it can only lower the minimum pinned
//!   epoch and therefore delay (never hasten) reclamation.
//!
//! ```
//! let collector = optiql_reclaim::Collector::new();
//! let guard = collector.pin();
//! let boxed = Box::new(42u64);
//! // `retire_box` defers the drop until all concurrent pins are released.
//! guard.retire_box(boxed);
//! drop(guard);
//! collector.flush(); // drive reclamation forward
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::{Cell, RefCell};
use std::ptr;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

/// Maximum number of threads that can be pinned simultaneously.
pub const MAX_PARTICIPANTS: usize = 256;

/// A participant slot is free.
const SLOT_FREE: u64 = u64::MAX;
/// The slot is owned by a thread but not currently pinned.
const SLOT_IDLE: u64 = u64::MAX - 1;

/// How many retired objects a thread accumulates before trying to advance
/// the epoch and collect.
const COLLECT_THRESHOLD: usize = 64;

/// The global epoch is re-read every this many top-level pins (power of
/// two); between refreshes the cached value is republished. Bounds how
/// long a pin-happy thread can hold the epoch back to `EPOCH_REFRESH`
/// pins.
const EPOCH_REFRESH: u64 = 16;

/// Every this many top-level pins (power of two) the pinning thread helps
/// the global epoch forward.
const ADVANCE_EVERY: u64 = 128;

type Deferred = Box<dyn FnOnce() + Send>;

struct Bag {
    epoch: u64,
    items: Vec<Deferred>,
}

struct Shared {
    /// Global epoch counter.
    epoch: AtomicU64,
    /// Per-participant pinned epoch (`SLOT_FREE`, `SLOT_IDLE`, or an epoch).
    slots: Box<[CachePadded<AtomicU64>]>,
    /// One past the highest slot index ever registered: epoch scans stop
    /// here instead of walking all `MAX_PARTICIPANTS` cache-padded lines
    /// (a 32 KiB sweep) when only a handful of threads participate.
    /// Monotone — a freed slot stays inside the scanned window, which is
    /// conservative (an extra `SLOT_FREE` load), never unsound.
    slot_hwm: AtomicUsize,
    /// Garbage abandoned by exited threads, grouped by retirement epoch.
    orphans: Mutex<Vec<Bag>>,
    /// Diagnostic: objects currently deferred (global, approximate).
    deferred_count: AtomicUsize,
}

impl Shared {
    /// The registered prefix of the slot array.
    #[inline]
    fn live_slots(&self) -> &[CachePadded<AtomicU64>] {
        let hwm = self.slot_hwm.load(Ordering::Acquire).min(self.slots.len());
        &self.slots[..hwm]
    }

    /// Smallest epoch any pinned thread observes, or the global epoch if
    /// nothing is pinned.
    fn min_pinned(&self) -> u64 {
        let mut min = u64::MAX;
        for s in self.live_slots() {
            let e = s.load(Ordering::Acquire);
            if e < SLOT_IDLE && e < min {
                min = e;
            }
        }
        if min == u64::MAX {
            self.epoch.load(Ordering::Acquire)
        } else {
            min
        }
    }

    /// Try to advance the global epoch; succeeds when every pinned thread
    /// has observed the current one.
    fn try_advance(&self) -> u64 {
        let global = self.epoch.load(Ordering::Acquire);
        for s in self.live_slots() {
            let e = s.load(Ordering::Acquire);
            if e < SLOT_IDLE && e != global {
                return global; // a straggler is still in an older epoch
            }
        }
        let _ =
            self.epoch
                .compare_exchange(global, global + 1, Ordering::AcqRel, Ordering::Acquire);
        self.epoch.load(Ordering::Acquire)
    }

    /// Free every orphaned bag whose epoch is at least two behind the
    /// minimum pinned epoch.
    fn collect_orphans(&self) {
        let safe_before = self.min_pinned().saturating_sub(1);
        let mut freed = Vec::new();
        {
            let mut orphans = self.orphans.lock();
            let mut i = 0;
            while i < orphans.len() {
                if orphans[i].epoch < safe_before {
                    freed.push(orphans.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for bag in freed {
            self.deferred_count
                .fetch_sub(bag.items.len(), Ordering::Relaxed);
            for f in bag.items {
                f();
            }
        }
    }
}

/// An epoch-based garbage collector domain.
///
/// Cheap to clone-share via [`Collector::handle`]; all handles and guards
/// refer to the same domain.
pub struct Collector {
    shared: Arc<Shared>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Create a new reclamation domain.
    pub fn new() -> Self {
        let slots = (0..MAX_PARTICIPANTS)
            .map(|_| CachePadded::new(AtomicU64::new(SLOT_FREE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Collector {
            shared: Arc::new(Shared {
                epoch: AtomicU64::new(0),
                slots,
                slot_hwm: AtomicUsize::new(0),
                orphans: Mutex::new(Vec::new()),
                deferred_count: AtomicUsize::new(0),
            }),
        }
    }

    /// A shareable handle to this domain.
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Pin the current thread (see [`Handle::pin`]).
    #[inline]
    pub fn pin(&self) -> Guard {
        pin_shared(&self.shared)
    }

    /// Current global epoch (diagnostic).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Number of objects currently awaiting reclamation (approximate).
    pub fn deferred(&self) -> usize {
        self.shared.deferred_count.load(Ordering::Relaxed)
    }

    /// Advance the epoch and reclaim everything that is safe. Call from a
    /// quiescent point (no guard held by this thread).
    pub fn flush(&self) {
        flush_shared(&self.shared);
    }
}

/// Shared flush implementation for [`Collector::flush`] / [`Handle::flush`].
fn flush_shared(shared: &Arc<Shared>) {
    // Hand this thread's local bags for this domain to the orphan list
    // so the collection below can free them.
    let want = Arc::as_ptr(shared);
    let _ = REGISTRY.try_with(|r| {
        if let Ok(reg) = r.try_borrow() {
            if let Some(local) = reg.locals.iter().find(|l| l.shared_ptr == want) {
                local.seal_and_orphan();
            }
        }
    });
    // Two advances move the frontier past everything already retired.
    shared.try_advance();
    shared.try_advance();
    shared.collect_orphans();
}

/// Shareable handle to a [`Collector`] domain.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

/// Per-thread participant record for one domain. Boxed (stable address) and
/// owned by the thread's [`LocalRegistry`]; reached on the fast path through
/// the raw [`ACTIVE`] pointer and through the pointer carried by each
/// [`Guard`].
struct Local {
    /// Keeps the domain alive as long as this thread might touch it.
    shared: Arc<Shared>,
    /// `Arc::as_ptr(&shared)`, cached for the fast-path identity check.
    /// Two live domains can never share this address because `shared`
    /// keeps the pointee allocated.
    shared_ptr: *const Shared,
    slot: usize,
    /// Re-entrant pin depth.
    depth: Cell<usize>,
    /// Top-level pins performed (drives epoch refresh / advance cadence).
    pins: Cell<u64>,
    /// Last global epoch this thread observed; republished between
    /// refreshes (conservative: never newer than the global epoch).
    cached_epoch: Cell<u64>,
    /// Garbage bags not yet handed to the domain, newest last.
    bags: RefCell<Vec<Bag>>,
}

impl Local {
    fn current_bag(bags: &mut Vec<Bag>, epoch: u64) -> &mut Bag {
        if bags.last().map(|b| b.epoch) != Some(epoch) {
            bags.push(Bag {
                epoch,
                items: Vec::new(),
            });
        }
        bags.last_mut().unwrap()
    }

    /// Hand every local bag to the domain's orphan list.
    fn seal_and_orphan(&self) {
        let mut bags = self.bags.borrow_mut();
        if bags.is_empty() {
            return;
        }
        let mut orphans = self.shared.orphans.lock();
        orphans.append(&mut bags);
    }

    /// Free local bags that are old enough; push the rest along.
    fn collect(&self) {
        let safe_before = self.shared.min_pinned().saturating_sub(1);
        let mut freed = Vec::new();
        {
            let mut bags = self.bags.borrow_mut();
            let mut i = 0;
            while i < bags.len() {
                if bags[i].epoch < safe_before {
                    freed.push(bags.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for bag in freed {
            self.shared
                .deferred_count
                .fetch_sub(bag.items.len(), Ordering::Relaxed);
            for f in bag.items {
                f();
            }
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.seal_and_orphan();
        self.shared.slots[self.slot].store(SLOT_FREE, Ordering::Release);
        self.shared.collect_orphans();
    }
}

/// Owns this thread's [`Local`]s, one per domain the thread has touched.
/// Domains that have died (no collector, no handle, no guard) are pruned
/// opportunistically on the next domain switch.
struct LocalRegistry {
    // The boxing is required, not incidental: `ACTIVE` caches a raw
    // `*const Local` into an element, so each `Local` needs an address
    // that survives the Vec reallocating.
    #[allow(clippy::vec_box)]
    locals: Vec<Box<Local>>,
}

impl Drop for LocalRegistry {
    fn drop(&mut self) {
        // Clear the fast-path pointers *before* the Locals are freed so a
        // pin() from a later TLS destructor cannot dereference a dangling
        // pointer (it will take the slow path instead).
        let _ = ACTIVE.try_with(|c| c.set(ptr::null()));
        clear_switch_cache();
    }
}

/// Ways in the per-thread domain-switch cache. Eight covers the sharded
/// facade's default shard count; larger domain sets degrade to the
/// registry scan only on conflict misses.
const SWITCH_WAYS: usize = 8;

thread_local! {
    /// Fast-path pointer to the most recently used domain's [`Local`].
    /// Invariant: when non-null it points into this thread's live
    /// [`REGISTRY`] (cleared before the registry is torn down).
    static ACTIVE: Cell<*const Local> = const { Cell::new(ptr::null()) };
    /// Direct-mapped domain → [`Local`] cache keyed by a hash of the
    /// domain pointer, making domain *switches* O(1) instead of a scan of
    /// every domain the thread ever pinned — a thread striding over a
    /// many-shard index switches domains on nearly every operation.
    /// Same validity invariant as [`ACTIVE`]; cleared on every registry
    /// mutation ([`local_slow`]) and at registry teardown.
    static SWITCH_CACHE: [Cell<*const Local>; SWITCH_WAYS] =
        const { [const { Cell::new(ptr::null()) }; SWITCH_WAYS] };
    /// Owner of the [`Local`] records (stable addresses via `Box`).
    static REGISTRY: RefCell<LocalRegistry> =
        const { RefCell::new(LocalRegistry { locals: Vec::new() }) };
}

/// The [`SWITCH_CACHE`] way for a domain pointer.
#[inline]
fn switch_way(want: *const Shared) -> usize {
    // Fibonacci-spread the pointer bits: allocations are aligned, so the
    // low bits carry no entropy on their own.
    ((want as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (usize::BITS - 3)) % SWITCH_WAYS
}

/// Drop every switch-cache entry (registry about to mutate or die).
fn clear_switch_cache() {
    let _ = SWITCH_CACHE.try_with(|m| {
        for c in m {
            c.set(ptr::null());
        }
    });
}

/// Locate (or create) this thread's participant record for `shared`.
#[inline]
fn local_for(shared: &Arc<Shared>) -> *const Local {
    let want = Arc::as_ptr(shared);
    let cached = ACTIVE.try_with(Cell::get).unwrap_or(ptr::null());
    if !cached.is_null() {
        // Safety: a non-null ACTIVE always points into this thread's live
        // registry (see the ACTIVE invariant), so the pointee is valid.
        if unsafe { (*cached).shared_ptr } == want {
            return cached;
        }
    }
    local_switch(shared, want)
}

/// Domain switch between already-registered domains. First probe the
/// O(1) [`SWITCH_CACHE`]; fall back to a read-only scan of this thread's
/// participant records on a miss. A sharded index alternates domains on
/// nearly every operation, so the hit path must stay a couple of loads —
/// registration and pruning are deferred to [`local_slow`], which
/// mutates the registry.
fn local_switch(shared: &Arc<Shared>, want: *const Shared) -> *const Local {
    let way = switch_way(want);
    let cached = SWITCH_CACHE
        .try_with(|m| m[way].get())
        .unwrap_or(ptr::null());
    if !cached.is_null() {
        // Safety: same invariant as ACTIVE — non-null entries point into
        // this thread's live registry.
        if unsafe { (*cached).shared_ptr } == want {
            let _ = ACTIVE.try_with(|c| c.set(cached));
            return cached;
        }
    }
    let found = REGISTRY
        .try_with(|r| {
            // A plain borrow: pin() never runs inside local_slow's
            // borrow_mut on the same thread, and concurrent threads have
            // their own registries.
            let reg = r.borrow();
            reg.locals
                .iter()
                .find(|l| l.shared_ptr == want)
                .map(|l| &**l as *const Local)
        })
        .unwrap_or(None);
    match found {
        Some(p) => {
            let _ = ACTIVE.try_with(|c| c.set(p));
            let _ = SWITCH_CACHE.try_with(|m| m[way].set(p));
            p
        }
        None => local_slow(shared, want),
    }
}

/// First pin into a domain: registry registration and pruning.
#[cold]
fn local_slow(shared: &Arc<Shared>, want: *const Shared) -> *const Local {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        // The fast-path pointers are re-established below; null them
        // first so the pruning can never leave one dangling.
        let _ = ACTIVE.try_with(|c| c.set(ptr::null()));
        clear_switch_cache();
        // Prune participant records of dead domains: nobody but us holds
        // the Arc and no guard of ours is outstanding.
        reg.locals
            .retain(|l| l.depth.get() > 0 || Arc::strong_count(&l.shared) > 1);
        let found = reg.locals.iter().position(|l| l.shared_ptr == want);
        let idx = match found {
            Some(i) => i,
            None => {
                // Register in a free slot of this domain.
                let slot = (0..MAX_PARTICIPANTS)
                    .find(|&i| {
                        shared.slots[i]
                            .compare_exchange(
                                SLOT_FREE,
                                SLOT_IDLE,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    })
                    .expect("reclamation participant registry full");
                shared.slot_hwm.fetch_max(slot + 1, Ordering::AcqRel);
                reg.locals.push(Box::new(Local {
                    shared: Arc::clone(shared),
                    shared_ptr: want,
                    slot,
                    depth: Cell::new(0),
                    pins: Cell::new(0),
                    cached_epoch: Cell::new(shared.epoch.load(Ordering::Acquire)),
                    bags: RefCell::new(Vec::new()),
                }));
                reg.locals.len() - 1
            }
        };
        let p: *const Local = &*reg.locals[idx];
        let _ = ACTIVE.try_with(|c| c.set(p));
        let _ = SWITCH_CACHE.try_with(|m| m[switch_way(want)].set(p));
        p
    })
}

/// Pin the current thread into `shared` (fast path shared by
/// [`Collector::pin`] and [`Handle::pin`]).
#[inline]
fn pin_shared(shared: &Arc<Shared>) -> Guard {
    let local = local_for(shared);
    // Safety: `local` points at this thread's live participant record
    // (`local_for` invariant); it stays alive while guards exist because
    // registry pruning skips records with `depth > 0`.
    let l = unsafe { &*local };
    let depth = l.depth.get();
    l.depth.set(depth + 1);
    if depth == 0 {
        let pins = l.pins.get().wrapping_add(1);
        l.pins.set(pins);
        let epoch = if pins % EPOCH_REFRESH == 0 {
            let e = l.shared.epoch.load(Ordering::Relaxed);
            l.cached_epoch.set(e);
            e
        } else {
            l.cached_epoch.get()
        };
        // Publish the pinned epoch, then raise a store→load barrier so the
        // publication is visible before any subsequent read of shared
        // state (equivalent to the classic per-pin SeqCst store, but the
        // fence cost is paid once and the store stays plain).
        l.shared.slots[l.slot].store(epoch, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        // Periodically help the epoch forward.
        if pins % ADVANCE_EVERY == 0 {
            l.shared.try_advance();
        }
    }
    Guard {
        local,
        _not_send: std::marker::PhantomData,
    }
}

impl Handle {
    /// Pin the current thread into the domain. While the returned [`Guard`]
    /// lives, memory retired *after* this point is guaranteed to stay
    /// mapped. Guards nest.
    #[inline]
    pub fn pin(&self) -> Guard {
        pin_shared(&self.shared)
    }

    /// Current global epoch (diagnostic).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Number of objects currently awaiting reclamation in this domain
    /// (approximate; see [`Collector::deferred`]). Lets composed layers —
    /// a sharded facade, a workload driver parked between batches — assert
    /// bounded-garbage invariants without holding the `Collector` itself.
    pub fn deferred(&self) -> usize {
        self.shared.deferred_count.load(Ordering::Relaxed)
    }

    /// Advance the epoch and reclaim everything that is safe, as
    /// [`Collector::flush`] (quiescent points only).
    pub fn flush(&self) {
        flush_shared(&self.shared);
    }
}

/// RAII pin into a reclamation domain.
///
/// `!Send`: the pin is accounted in the creating thread's participant slot,
/// and the guard dereferences that thread's participant record on drop.
pub struct Guard {
    local: *const Local,
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl Guard {
    /// This guard's participant record.
    #[inline]
    fn local(&self) -> &Local {
        // Safety: the guard is !Send, so we are on the creating thread; the
        // record outlives the guard (pruning skips depth > 0, and the
        // registry's teardown cannot run while a guard — a stack value —
        // still exists... see `LocalRegistry` for the TLS-order caveat).
        unsafe { &*self.local }
    }

    /// Defer an arbitrary closure until no pinned thread can still hold
    /// references from before this call.
    pub fn defer(&self, f: impl FnOnce() + Send + 'static) {
        let l = self.local();
        let epoch = l.shared.epoch.load(Ordering::Acquire);
        l.shared.deferred_count.fetch_add(1, Ordering::Relaxed);
        let total: usize = {
            let mut bags = l.bags.borrow_mut();
            Local::current_bag(&mut bags, epoch).items.push(Box::new(f));
            bags.iter().map(|b| b.items.len()).sum()
        };
        if total >= COLLECT_THRESHOLD {
            l.shared.try_advance();
            l.collect();
        }
    }

    /// Retire a boxed object: its destructor runs once reclamation is safe.
    pub fn retire_box<T: Send + 'static>(&self, b: Box<T>) {
        self.defer(move || drop(b));
    }

    /// Retire a raw pointer that was created by `Box::into_raw`.
    ///
    /// # Safety
    /// `ptr` must originate from `Box::<T>::into_raw`, must not be used
    /// after this call, and must not be retired twice.
    pub unsafe fn retire_ptr<T: Send + 'static>(&self, ptr: *mut T) {
        let addr = ptr as usize;
        self.defer(move || {
            // Safety: forwarded from the caller contract.
            drop(unsafe { Box::from_raw(addr as *mut T) });
        });
    }
}

impl Drop for Guard {
    #[inline]
    fn drop(&mut self) {
        let l = self.local();
        let depth = l.depth.get() - 1;
        l.depth.set(depth);
        if depth == 0 {
            l.shared.slots[l.slot].store(SLOT_IDLE, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn drop_counter() -> (Arc<AtomicUsize>, impl Fn() -> DropBomb) {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        (c, move || DropBomb(Arc::clone(&c2)))
    }

    struct DropBomb(Arc<AtomicUsize>);
    impl Drop for DropBomb {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn retire_runs_destructor_after_flush() {
        let c = Collector::new();
        let (count, make) = drop_counter();
        {
            let g = c.pin();
            g.retire_box(Box::new(make()));
        }
        assert_eq!(count.load(Ordering::Relaxed), 0, "not freed while fresh");
        c.flush();
        c.flush();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert_eq!(c.deferred(), 0);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let c = Collector::new();
        let (count, make) = drop_counter();
        let h = c.handle();

        // A reader pinned in another thread holds the epoch back.
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let reader = std::thread::spawn(move || {
            let _g = h.pin();
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        });
        started_rx.recv().unwrap();

        {
            let g = c.pin();
            g.retire_box(Box::new(make()));
        }
        for _ in 0..4 {
            c.flush();
        }
        assert_eq!(
            count.load(Ordering::Relaxed),
            0,
            "object freed while a reader from an older epoch is pinned"
        );

        release_tx.send(()).unwrap();
        reader.join().unwrap();
        for _ in 0..4 {
            c.flush();
        }
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_pins_do_not_unpin_early() {
        let c = Collector::new();
        let g1 = c.pin();
        let g2 = c.pin();
        drop(g1);
        // Still pinned through g2: epoch must not advance past us silently;
        // simply check that dropping the outer guard keeps the slot pinned.
        let pinned = c
            .shared
            .slots
            .iter()
            .any(|s| s.load(Ordering::Relaxed) < SLOT_IDLE);
        assert!(pinned);
        drop(g2);
        let pinned = c
            .shared
            .slots
            .iter()
            .any(|s| s.load(Ordering::Relaxed) < SLOT_IDLE);
        assert!(!pinned);
    }

    #[test]
    fn thread_exit_orphans_then_collects() {
        let c = Collector::new();
        let (count, make) = drop_counter();
        let h = c.handle();
        let bomb = make();
        std::thread::spawn(move || {
            let g = h.pin();
            g.retire_box(Box::new(bomb));
        })
        .join()
        .unwrap();
        for _ in 0..4 {
            c.flush();
        }
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn heavy_concurrent_retire_frees_everything() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        let c = Collector::new();
        let (count, _) = drop_counter();
        let hs: Vec<_> = (0..THREADS)
            .map(|_| {
                let h = c.handle();
                let count = Arc::clone(&count);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        let g = h.pin();
                        g.retire_box(Box::new(DropBomb(Arc::clone(&count))));
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        for _ in 0..4 {
            c.flush();
        }
        assert_eq!(count.load(Ordering::Relaxed), THREADS * PER_THREAD);
        assert_eq!(c.deferred(), 0);
    }

    #[test]
    fn defer_closure_runs_exactly_once() {
        let c = Collector::new();
        let n = Arc::new(AtomicUsize::new(0));
        {
            let g = c.pin();
            let n2 = Arc::clone(&n);
            g.defer(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
        }
        for _ in 0..6 {
            c.flush();
        }
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn slot_hwm_tracks_registrations() {
        let c = Collector::new();
        assert_eq!(c.shared.slot_hwm.load(Ordering::Relaxed), 0);
        drop(c.pin());
        assert_eq!(c.shared.slot_hwm.load(Ordering::Relaxed), 1);
        // A second thread claims a second slot; the mark covers both.
        let h = c.handle();
        std::thread::spawn(move || drop(h.pin())).join().unwrap();
        assert_eq!(c.shared.slot_hwm.load(Ordering::Relaxed), 2);
        // Re-pinning from this thread reuses its slot: no growth.
        drop(c.pin());
        assert_eq!(c.shared.slot_hwm.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn handle_flush_and_deferred_mirror_the_collector() {
        let c = Collector::new();
        let h = c.handle();
        let (count, make) = drop_counter();
        {
            let g = h.pin();
            g.retire_box(Box::new(make()));
        }
        assert_eq!(h.deferred(), 1);
        h.flush();
        h.flush();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert_eq!(h.deferred(), 0);
        assert_eq!(c.deferred(), 0);
    }

    #[test]
    fn rapid_domain_alternation_stays_correct() {
        // The sharded-facade access pattern: one thread alternating pins
        // over many domains, retiring into each. Every domain must still
        // free exactly its own garbage.
        const DOMAINS: usize = 8;
        let cs: Vec<Collector> = (0..DOMAINS).map(|_| Collector::new()).collect();
        let counters: Vec<_> = (0..DOMAINS).map(|_| drop_counter()).collect();
        for i in 0..4_000usize {
            let d = i % DOMAINS;
            let g = cs[d].pin();
            g.retire_box(Box::new(counters[d].1()));
        }
        for (d, c) in cs.iter().enumerate() {
            for _ in 0..4 {
                c.flush();
            }
            assert_eq!(
                counters[d].0.load(Ordering::Relaxed),
                4_000 / DOMAINS,
                "domain {d} lost or duplicated garbage"
            );
            assert_eq!(c.deferred(), 0, "domain {d} left garbage deferred");
        }
    }

    #[test]
    fn epoch_advances_without_participants() {
        let c = Collector::new();
        let e0 = c.epoch();
        c.flush();
        assert!(c.epoch() > e0);
    }

    #[test]
    fn cached_epoch_catches_up_within_refresh_bound() {
        let c = Collector::new();
        // Register this thread, then advance the global epoch while the
        // thread's cached epoch goes stale.
        drop(c.pin());
        for _ in 0..5 {
            c.flush();
        }
        // Within EPOCH_REFRESH pins the published epoch must equal the
        // global one again (otherwise the epoch could be held back forever
        // by a pin-happy thread).
        let mut caught_up = false;
        for _ in 0..=EPOCH_REFRESH {
            let g = c.pin();
            let published = c
                .shared
                .slots
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .find(|&e| e < SLOT_IDLE)
                .expect("slot pinned while guard held");
            drop(g);
            if published == c.epoch() {
                caught_up = true;
                break;
            }
        }
        assert!(caught_up, "published epoch never refreshed");
    }

    #[test]
    fn two_domains_on_one_thread_stay_independent() {
        let c1 = Collector::new();
        let c2 = Collector::new();
        let (count1, make1) = drop_counter();
        let (count2, make2) = drop_counter();
        // Interleave pins across domains, including nesting.
        let g1 = c1.pin();
        let g2 = c2.pin();
        g1.retire_box(Box::new(make1()));
        g2.retire_box(Box::new(make2()));
        drop(g1);
        drop(g2);
        for _ in 0..4 {
            c1.flush();
        }
        assert_eq!(count1.load(Ordering::Relaxed), 1);
        // Domain 2 has not been flushed: its garbage must be untouched
        // until its own flush runs.
        assert_eq!(count2.load(Ordering::Relaxed), 0);
        for _ in 0..4 {
            c2.flush();
        }
        assert_eq!(count2.load(Ordering::Relaxed), 1);
    }

    /// Interleaving stress in lieu of a loom model (no loom shim in this
    /// workspace): readers validate a sentinel through an atomic pointer
    /// while a writer continuously swaps and retires the pointee. Any
    /// premature reclamation shows up as a poisoned sentinel (the
    /// destructor zeroes it before the memory is returned).
    #[test]
    fn swap_retire_stress_never_frees_under_a_pin() {
        use std::sync::atomic::{AtomicBool, AtomicPtr};

        const SENTINEL: u64 = 0xA5A5_A5A5_A5A5_A5A5;
        struct Poisoned(u64);
        impl Drop for Poisoned {
            fn drop(&mut self) {
                self.0 = 0; // poison before the allocator reuses it
            }
        }

        let c = Collector::new();
        let slot = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(Poisoned(SENTINEL)))));
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = c.handle();
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let g = h.pin();
                        let p = slot.load(Ordering::Acquire);
                        // Safety: p was published while we are pinned, so
                        // its retirement cannot have been collected yet.
                        let v = unsafe { (*p).0 };
                        assert_eq!(v, SENTINEL, "read a reclaimed object");
                        drop(g);
                    }
                })
            })
            .collect();

        let writer = {
            let h = c.handle();
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let fresh = Box::into_raw(Box::new(Poisoned(SENTINEL)));
                    let old = slot.swap(fresh, Ordering::AcqRel);
                    let g = h.pin();
                    // Safety: `old` came from Box::into_raw and is now
                    // unreachable through `slot`.
                    unsafe { g.retire_ptr(old) };
                    drop(g);
                }
            })
        };
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        for _ in 0..4 {
            c.flush();
        }
        // Safety: the final pointee is unreachable by now; free it.
        drop(unsafe { Box::from_raw(slot.load(Ordering::Acquire)) });
        assert_eq!(c.deferred(), 0);
    }
}
