//! Regression: group-amortized pinning must keep garbage bounded.
//!
//! The affine workload driver holds one guard per owned shard and
//! refreshes it every operation group (`GROUP_OPS`) instead of pinning
//! per operation. Two collector properties make that pattern safe, and
//! this test pins both down with the reclaim stats:
//!
//! 1. Between groups the worker holds *no* pin, so even if it parks
//!    indefinitely between batches its slot is idle and every other
//!    participant can advance the epoch and reclaim freely. A
//!    registered-but-idle thread must never hold reclamation back —
//!    only a *pinned* one may.
//! 2. Because the pin is refreshed at every group boundary, the epoch
//!    keeps moving past the worker's own bags, so its backlog stays
//!    bounded by the refresh cadence — it must not grow with the number
//!    of groups. Holding one pin across groups (the pattern the refresh
//!    replaces) strands every retirement for as long as the pin lives.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use optiql_reclaim::Collector;

const RETIRES_PER_GROUP: usize = 32; // mirrors harness GROUP_OPS

/// Drain a domain from a quiescent thread. A few rounds are legitimate
/// (bags seal one epoch behind the frontier); more means something is
/// pinning the epoch.
fn drain(collector: &Collector, what: &str) {
    let mut rounds = 0;
    while collector.deferred() > 0 {
        collector.flush();
        rounds += 1;
        assert!(
            rounds <= 8,
            "{what}: {} deferred items survived {rounds} flushes",
            collector.deferred()
        );
    }
}

/// Property 1: a worker that drops its group pin and parks between
/// batches does not block reclamation of anyone else's garbage. The
/// bystander (this thread) retires and fully drains its own garbage
/// while the worker is parked — with a pin still held across the park,
/// the epoch could never pass it and the bystander's drain would stall.
#[test]
fn parked_unpinned_worker_does_not_block_reclamation() {
    const GROUPS: usize = 12;
    const BYSTANDER_RETIRES: usize = 48;

    let collector = Arc::new(Collector::new());
    let (tx, rx) = mpsc::channel::<usize>();

    let worker = {
        let handle = collector.handle();
        std::thread::spawn(move || {
            for group in 0..GROUPS {
                // One group: a held pin amortized over the batch, as the
                // affine driver does, then released at the boundary.
                let guard = handle.pin();
                for _ in 0..RETIRES_PER_GROUP {
                    guard.defer(|| ());
                }
                drop(guard);
                tx.send(group).unwrap();
                std::thread::park(); // "between batches"
            }
        })
    };

    let handle = collector.handle();
    let freed = Arc::new(AtomicUsize::new(0));
    for group in rx {
        // Worker parked, unpinned. Our own retirements must become
        // reclaimable within a bounded number of flushes: the parked
        // worker's slot is idle, so nothing stops the epoch.
        let guard = handle.pin();
        for _ in 0..BYSTANDER_RETIRES {
            let freed = Arc::clone(&freed);
            guard.defer(move || {
                freed.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(guard);
        let want = (group + 1) * BYSTANDER_RETIRES;
        let mut rounds = 0;
        while freed.load(Ordering::Relaxed) < want {
            collector.flush();
            rounds += 1;
            assert!(
                rounds <= 8,
                "group {group}: bystander garbage stuck at {}/{want} after \
                 {rounds} flushes — the parked worker is pinning the epoch",
                freed.load(Ordering::Relaxed)
            );
        }
        worker.thread().unpark();
        if group + 1 == GROUPS {
            break;
        }
    }
    worker.join().unwrap();
    // Thread exit orphans the worker's remaining bags; everything drains.
    drain(&collector, "after worker exit");
}

/// Property 2: with the pin refreshed every group, the worker's own
/// backlog is bounded by the epoch-refresh cadence — independent of how
/// many groups run. The complementary fact (what the refresh buys):
/// holding one pin across the same workload strands *every* retirement.
#[test]
fn group_pin_refresh_bounds_backlog() {
    const GROUPS: usize = 256;
    let total = GROUPS * RETIRES_PER_GROUP;
    // The collector re-reads the global epoch every EPOCH_REFRESH = 16
    // top-level pins and a bag becomes freeable two epochs later, so the
    // steady-state backlog is ~2 * 16 groups' worth. Twice that is a
    // generous ceiling; the regression it guards against is the backlog
    // tracking `total` (8192 here).
    let bound = 4 * 16 * RETIRES_PER_GROUP;

    let collector = Collector::new();
    let handle = collector.handle();
    let mut max_backlog = 0;
    for _ in 0..GROUPS {
        let guard = handle.pin();
        for _ in 0..RETIRES_PER_GROUP {
            guard.defer(|| ());
        }
        drop(guard);
        max_backlog = max_backlog.max(collector.deferred());
    }
    assert!(
        max_backlog <= bound,
        "backlog {max_backlog} exceeded refresh-cadence bound {bound} \
         (total retired: {total})"
    );
    assert!(max_backlog > 0, "stat must observe the in-flight garbage");
    drain(&collector, "refreshed-pin workload");

    // Control: same retirements under one never-refreshed pin. The epoch
    // cannot pass the pinned slot, so nothing is reclaimed until the pin
    // finally drops — the backlog is the whole workload.
    let collector = Collector::new();
    let handle = collector.handle();
    let guard = handle.pin();
    for _ in 0..total {
        guard.defer(|| ());
    }
    assert_eq!(
        collector.deferred(),
        total,
        "a held pin must strand every retirement made under it"
    );
    drop(guard);
    drain(&collector, "after dropping the held pin");
}
