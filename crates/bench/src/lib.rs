//! # optiql-bench — shared plumbing for the figure/table bench targets
//!
//! Every `benches/figNN_*.rs` target is a `harness = false` binary that
//! prints the same rows/series the paper's corresponding figure or table
//! reports, in a uniform tab-separated format:
//!
//! ```text
//! figNN <TAB> <series> <TAB> <x> <TAB> <value> [<TAB> extra…]
//! ```
//!
//! Output scale is controlled by the environment knobs in
//! [`optiql_harness::env`]; see EXPERIMENTS.md for the mapping from each
//! target to the paper's figure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;

/// Print a run banner with the active scaling knobs.
pub fn banner(fig: &str, title: &str) {
    let threads = optiql_harness::env::thread_counts();
    let dur = optiql_harness::env::duration();
    println!("# ===================================================================");
    println!("# {fig}: {title}");
    println!(
        "# host_cpus={} threads={threads:?} secs_per_point={:.2} full={}",
        optiql_harness::pin::num_cpus(),
        dur.as_secs_f64(),
        optiql_harness::env::full(),
    );
    println!("# ===================================================================");
}

/// Print a column header comment.
pub fn header(cols: &[&str]) {
    println!("# {}", cols.join("\t"));
}

/// Print one data row.
pub fn row(fig: &str, series: &str, x: impl Display, value: impl Display) {
    println!("{fig}\t{series}\t{x}\t{value}");
}

/// Print one data row with an extra column.
pub fn row_extra(
    fig: &str,
    series: &str,
    x: impl Display,
    value: impl Display,
    extra: impl Display,
) {
    println!("{fig}\t{series}\t{x}\t{value}\t{extra}");
}

/// Million operations per second.
pub fn mops(ops_per_sec: f64) -> f64 {
    ops_per_sec / 1e6
}

/// Round to two decimals for stable-looking output.
pub fn r2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}
