//! # optiql-bench — shared plumbing for the figure/table bench targets
//!
//! Every `benches/figNN_*.rs` target is a `harness = false` binary that
//! prints the same rows/series the paper's corresponding figure or table
//! reports, in a uniform tab-separated format:
//!
//! ```text
//! figNN <TAB> <series> <TAB> <x> <TAB> <value> [<TAB> extra…]
//! ```
//!
//! Output scale is controlled by the environment knobs in
//! [`optiql_harness::env`]; see EXPERIMENTS.md for the mapping from each
//! target to the paper's figure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::sync::Mutex;

use optiql_harness::report::{BenchJson, JsonValue, LatencySummary};

/// JSON report mirroring the rows printed by [`row`]/[`row_extra`].
/// Initialized by [`banner`] from the figure name, so every bench target
/// emits `BENCH_<fig>.json` alongside its stdout rows for free.
static JSON: Mutex<Option<BenchJson>> = Mutex::new(None);

/// Print a run banner with the active scaling knobs and open the
/// machine-readable `BENCH_<fig>.json` report for this target.
pub fn banner(fig: &str, title: &str) {
    let threads = optiql_harness::env::thread_counts();
    let dur = optiql_harness::env::duration();
    println!("# ===================================================================");
    println!("# {fig}: {title}");
    println!(
        "# host_cpus={} threads={threads:?} secs_per_point={:.2} full={}",
        optiql_harness::pin::num_cpus(),
        dur.as_secs_f64(),
        optiql_harness::env::full(),
    );
    println!("# ===================================================================");
    *JSON.lock().unwrap() = Some(BenchJson::new(fig));
}

/// Append a free-form record to the active JSON report (no-op before
/// [`banner`] runs). `x` and `value` are stringified by the caller's
/// `Display`; numeric-looking values are stored as JSON numbers.
fn json_row(fig: &str, series: &str, x: &str, value: &str, extra: Option<&str>) {
    json_row_lat(fig, series, x, value, extra, None);
}

/// Like [`json_row`] but with the shared tail-latency columns appended
/// (`p50_ns`/`p95_ns`/`p99_ns`/`p999_ns`; `null` when not sampled).
fn json_row_lat(
    fig: &str,
    series: &str,
    x: &str,
    value: &str,
    extra: Option<&str>,
    lat: Option<&LatencySummary>,
) {
    let mut g = JSON.lock().unwrap();
    let Some(rep) = g.as_mut() else { return };
    let mut fields = vec![
        ("bench", JsonValue::Str(fig.to_string())),
        ("series", JsonValue::Str(series.to_string())),
        ("x", json_auto(x)),
        ("value", json_auto(value)),
    ];
    if let Some(e) = extra {
        fields.push(("extra", json_auto(e)));
    }
    fields.extend(LatencySummary::fields(lat));
    rep.record_kv(&fields);
}

/// Store numbers as numbers, everything else as strings.
fn json_auto(s: &str) -> JsonValue {
    match s.parse::<f64>() {
        Ok(v) => JsonValue::Num(v),
        Err(_) => JsonValue::Str(s.to_string()),
    }
}

/// Print a column header comment.
pub fn header(cols: &[&str]) {
    println!("# {}", cols.join("\t"));
}

/// Print one data row (and mirror it into the JSON report).
pub fn row(fig: &str, series: &str, x: impl Display, value: impl Display) {
    let (x, value) = (x.to_string(), value.to_string());
    println!("{fig}\t{series}\t{x}\t{value}");
    json_row(fig, series, &x, &value, None);
}

/// Print one data row with an extra column (mirrored into the JSON report).
pub fn row_extra(
    fig: &str,
    series: &str,
    x: impl Display,
    value: impl Display,
    extra: impl Display,
) {
    let (x, value, extra) = (x.to_string(), value.to_string(), extra.to_string());
    println!("{fig}\t{series}\t{x}\t{value}\t{extra}");
    json_row(fig, series, &x, &value, Some(&extra));
}

/// Print one data row with an extra column plus the shared tail-latency
/// columns (p50/p95/p99/p999 in nanoseconds; `-`/`null` when the run did
/// not sample latency). JSON rows gain `p50_ns`…`p999_ns` fields.
pub fn row_latency(
    fig: &str,
    series: &str,
    x: impl Display,
    value: impl Display,
    extra: impl Display,
    lat: Option<&LatencySummary>,
) {
    let (x, value, extra) = (x.to_string(), value.to_string(), extra.to_string());
    let fmt = |v: f64| {
        if v.is_finite() {
            format!("{}", r2(v))
        } else {
            "-".into()
        }
    };
    let cols = match lat {
        Some(l) => format!(
            "{}\t{}\t{}\t{}",
            fmt(l.p50_ns),
            fmt(l.p95_ns),
            fmt(l.p99_ns),
            fmt(l.p999_ns)
        ),
        None => "-\t-\t-\t-".into(),
    };
    println!("{fig}\t{series}\t{x}\t{value}\t{extra}\t{cols}");
    json_row_lat(fig, series, &x, &value, Some(&extra), lat);
}

/// Million operations per second.
pub fn mops(ops_per_sec: f64) -> f64 {
    ops_per_sec / 1e6
}

/// Round to two decimals for stable-looking output.
pub fn r2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}
