//! Streaming-scan bench (YCSB-E shape): 95% range scans of uniform
//! length 1..=100 starting at Zipfian(0.99)-sampled keys, 5% inserts.
//!
//! Three axes, all landing in `BENCH_scan.json`:
//!
//! * **index** — B+-tree, ART, and both behind the sharded facade (the
//!   facade's k-way merge iterator is what YCSB-E actually measures);
//! * **scan mode** — `stream` (lazy per-leaf OLC iterator), `materialize`
//!   (same iterator collected into a `Vec` first), `count` (the
//!   pre-streaming `scan_count` baseline);
//! * **key type** — `u64` and byte-string `user################` keys
//!   through the same driver via `run_keyed`.
//!
//! A `YCSB-C/u64` point row per index anchors cross-revision
//! comparability: point-lookup throughput must not regress because the
//! index grew a range API.

use optiql_bench::{banner, header, mops, r2, row_extra};
use optiql_harness::{
    env, preload, preload_keyed, run, run_keyed, user_key, ConcurrentIndex, KeyDist, Mix, ScanMode,
    WorkloadConfig,
};
use optiql_index_api::Bytes;
use optiql_sharded::ShardedIndex;

const SCAN_MAX: u32 = 100;

fn ycsb_e_cfg(keys: u64) -> WorkloadConfig {
    let threads = *env::thread_counts().last().unwrap();
    let mut cfg = WorkloadConfig::new(threads, Mix::YCSB_E, KeyDist::Zipfian { theta: 0.99 }, keys);
    cfg.duration = env::duration();
    cfg.sample_every = 0;
    cfg.scan_max = SCAN_MAX;
    cfg
}

/// YCSB-E in every scan mode plus the YCSB-C anchor row, `u64` keys.
fn sweep_u64<I: ConcurrentIndex>(index: &I, name: &str, keys: u64) {
    for (mode_name, mode) in [
        ("stream", ScanMode::Stream),
        ("materialize", ScanMode::Materialize),
        ("count", ScanMode::Count),
    ] {
        let mut cfg = ycsb_e_cfg(keys);
        cfg.scan_mode = mode;
        let (r, _) = run(index, &cfg);
        row_extra(
            "scan",
            &format!("{name}/{mode_name}"),
            "YCSB-E/u64",
            r2(mops(r.throughput())),
            r.scanned_entries,
        );
    }
    let mut cfg = ycsb_e_cfg(keys);
    cfg.mix = Mix::YCSB_C;
    let (r, _) = run(index, &cfg);
    row_extra(
        "scan",
        &format!("{name}/point"),
        "YCSB-C/u64",
        r2(mops(r.throughput())),
        r.lookup_hits,
    );
}

/// YCSB-E streaming + YCSB-C point over byte-string keys.
fn sweep_bytes<I: ConcurrentIndex<Bytes>>(index: &I, name: &str, keys: u64) {
    let mut cfg = ycsb_e_cfg(keys);
    cfg.scan_mode = ScanMode::Stream;
    let (r, _) = run_keyed(index, &cfg, user_key);
    row_extra(
        "scan",
        &format!("{name}/stream"),
        "YCSB-E/bytes",
        r2(mops(r.throughput())),
        r.scanned_entries,
    );
    let mut cfg = ycsb_e_cfg(keys);
    cfg.mix = Mix::YCSB_C;
    let (r, _) = run_keyed(index, &cfg, user_key);
    row_extra(
        "scan",
        &format!("{name}/point"),
        "YCSB-C/bytes",
        r2(mops(r.throughput())),
        r.lookup_hits,
    );
}

fn main() {
    banner(
        "scan",
        "YCSB-E scans 1..=100, Zipfian(0.99) starts, stream vs materialize vs count",
    );
    header(&["figure", "index/mode", "workload/keys", "Mops/s", "extra"]);
    let keys = env::preload_keys().min(2_000_000);
    let load = WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys);

    let tree: optiql_btree::BTreeOptiQL = optiql_btree::BTreeOptiQL::new();
    preload(&tree, &load);
    sweep_u64(&tree, "B+-tree", keys);

    let art: optiql_art::ArtOptiQL = optiql_art::ArtOptiQL::new();
    preload(&art, &load);
    sweep_u64(&art, "ART", keys);

    let shards = optiql_sharded::DEFAULT_SHARDS;
    let sharded_tree: ShardedIndex<optiql_btree::BTreeOptiQL> = ShardedIndex::new(shards);
    preload(&sharded_tree, &load);
    sweep_u64(&sharded_tree, &format!("sharded{shards}-B+-tree"), keys);

    let sharded_art: ShardedIndex<optiql_art::ArtOptiQL> = ShardedIndex::new(shards);
    preload(&sharded_art, &load);
    sweep_u64(&sharded_art, &format!("sharded{shards}-ART"), keys);

    // Byte-string keys: smaller preload — every key is 20 bytes and the
    // point of these rows is shape, not peak throughput.
    let bkeys = keys.min(500_000);
    let bload = WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, bkeys);

    let btree_b: optiql_btree::BPlusTree<
        optiql::OptLock,
        optiql::OptiQL,
        { optiql_btree::DEFAULT_IC },
        { optiql_btree::DEFAULT_LC },
        Bytes,
    > = optiql_btree::BPlusTree::new();
    preload_keyed(&btree_b, &bload, user_key);
    sweep_bytes(&btree_b, "B+-tree", bkeys);

    let art_b: optiql_art::ArtTree<optiql::OptiQL, Bytes> = optiql_art::ArtTree::new();
    preload_keyed(&art_b, &bload, user_key);
    sweep_bytes(&art_b, "ART", bkeys);
}
