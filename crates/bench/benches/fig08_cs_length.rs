//! Figure 8: lock throughput under varying critical-section lengths
//! (5–200 volatile increments) with a read-mostly mix (80% reads / 20%
//! writes), under low and high contention, at the maximum thread count.
//!
//! Expected shape (paper): under low contention CS length just scales
//! throughput down uniformly; under high contention opportunistic read
//! (OptiQL vs OptiQL-NOR) mainly benefits short critical sections
//! (CS ≤ 50) — the reader-admission window is too short for long reads.

use optiql::{IndexLock, OptLock, OptiQL, OptiQLNor};
use optiql_bench::{banner, header, mops, r2, row};
use optiql_harness::{env, run_mixed, Contention, MicroConfig};

const CS_LENGTHS: [u32; 5] = [5, 50, 100, 150, 200];

fn sweep<L: IndexLock>(contention: Contention, threads: usize) {
    for cs in CS_LENGTHS {
        let cfg = MicroConfig {
            threads,
            contention,
            read_pct: 80,
            cs_len: cs,
            duration: env::duration(),
        };
        let r = run_mixed::<L>(&cfg);
        row(
            "fig08",
            &format!("{}/{}", contention.label(), L::NAME),
            cs,
            r2(mops(r.throughput())),
        );
    }
}

fn main() {
    banner(
        "fig08",
        "Throughput vs critical-section length (80/20 read/write)",
    );
    header(&["figure", "contention/lock", "cs_len", "Mops/s"]);
    let threads = *env::thread_counts().last().unwrap();
    for contention in [Contention::Low, Contention::High] {
        sweep::<OptLock>(contention, threads);
        sweep::<OptiQLNor>(contention, threads);
        sweep::<OptiQL>(contention, threads);
    }
}
