//! Byte-key fast-path bench: YCSB-C point lookups and YCSB-E streaming
//! scans over the YCSB `user################` string keyspace.
//!
//! Three index shapes (B+-tree, ART, and the B+-tree behind the
//! 8-shard facade) run each workload at batch 1 (scalar descents) and
//! batch 8 (software-pipelined `multi_lookup`). Every configuration is
//! measured twice in-run:
//!
//! * **bytes** — the [`Bytes`] fast path: short suffixes inlined into
//!   slot words, per-node prefix truncation in the B+-tree, payload
//!   prefetch in the batched engines;
//! * **boxed** — the [`BoxedBytes`] baseline, the PR 8 representation
//!   that boxes every key behind one pointer slot per node entry —
//!   what the fast path is claimed to beat.
//!
//! A `speedup` series reports bytes/boxed per point, and a `YCSB-C/u64`
//! anchor row per index pins integer-key point throughput so the byte
//! path cannot regress it unnoticed. Everything lands in
//! `results/BENCH_keyed.json`.

use optiql_bench::{banner, header, mops, r2, row_extra};
use optiql_harness::{
    env, preload, preload_keyed, run, run_keyed, user_key, ConcurrentIndex, KeyDist, Mix, ScanMode,
    WorkloadConfig,
};
use optiql_index_api::{BoxedBytes, Bytes, IndexKey};
use optiql_sharded::ShardedIndex;

const SCAN_MAX: u32 = 100;
const SHARDS: usize = 8;
const BATCHES: [usize; 2] = [1, 8];

type BTreeK<K> = optiql_btree::BPlusTree<
    optiql::OptLock,
    optiql::OptiQL,
    { optiql_btree::DEFAULT_IC },
    { optiql_btree::DEFAULT_LC },
    K,
>;
type ArtK<K> = optiql_art::ArtTree<optiql::OptiQL, K>;

fn cfg(mix: Mix, keys: u64, batch: usize) -> WorkloadConfig {
    let threads = *env::thread_counts().last().unwrap();
    // Uniform sampling (as in the batched bench): the point of the fast
    // path is avoiding cache misses, and a Zipfian hot set small enough
    // to stay cache-resident would hide exactly the misses it removes.
    let mut c = WorkloadConfig::new(threads, mix, KeyDist::Uniform, keys);
    c.duration = env::duration();
    c.sample_every = 0;
    c.scan_max = SCAN_MAX;
    c.scan_mode = ScanMode::Stream;
    c.batch = batch;
    c
}

/// YCSB-C at each batch size plus a YCSB-E streaming row, one keyed
/// index. Returns the YCSB-C Mops/s per batch size for speedup rows.
fn sweep<K: IndexKey, I: ConcurrentIndex<K>>(
    index: &I,
    name: &str,
    keytype: &str,
    keys: u64,
    keyfn: impl Fn(u64) -> K + Sync + Copy,
) -> [f64; BATCHES.len()] {
    let mut c_mops = [0.0; BATCHES.len()];
    for (bi, batch) in BATCHES.into_iter().enumerate() {
        let (r, _) = run_keyed(index, &cfg(Mix::YCSB_C, keys, batch), keyfn);
        let m = mops(r.throughput());
        c_mops[bi] = m;
        row_extra(
            "keyed",
            &format!("{name}/b{batch}"),
            format!("YCSB-C/{keytype}"),
            r2(m),
            r.lookup_hits,
        );
    }
    let (r, _) = run_keyed(index, &cfg(Mix::YCSB_E, keys, 1), keyfn);
    row_extra(
        "keyed",
        &format!("{name}/stream"),
        format!("YCSB-E/{keytype}"),
        r2(mops(r.throughput())),
        r.scanned_entries,
    );
    c_mops
}

/// The in-run comparison: the same index shape over `Bytes` (fast path)
/// and `BoxedBytes` (PR 8 pointer-slot baseline), plus speedup rows.
fn compare<IB, IX>(bytes_index: &IB, boxed_index: &IX, name: &str, keys: u64)
where
    IB: ConcurrentIndex<Bytes>,
    IX: ConcurrentIndex<BoxedBytes>,
{
    let fast = sweep(bytes_index, name, "bytes", keys, user_key);
    let base = sweep(boxed_index, name, "boxed", keys, |i| {
        BoxedBytes(user_key(i))
    });
    for (bi, batch) in BATCHES.into_iter().enumerate() {
        let speedup = if base[bi] > 0.0 {
            fast[bi] / base[bi]
        } else {
            0.0
        };
        row_extra(
            "keyed",
            &format!("{name}/b{batch}"),
            "speedup/bytes-vs-boxed",
            r2(speedup),
            format!("{}/{} Mops", r2(fast[bi]), r2(base[bi])),
        );
    }
}

/// Integer-key anchor: YCSB-C batch 1 on the same index shape over
/// `u64`, guarding the default key type against byte-path regressions.
fn anchor_u64<I: ConcurrentIndex>(index: &I, name: &str, keys: u64) {
    let (r, _) = run(index, &cfg(Mix::YCSB_C, keys, 1));
    row_extra(
        "keyed",
        &format!("{name}/b1"),
        "YCSB-C/u64",
        r2(mops(r.throughput())),
        r.lookup_hits,
    );
}

fn main() {
    banner(
        "keyed",
        "YCSB-C/E over user### byte keys: inline+truncated fast path vs boxed baseline",
    );
    header(&["figure", "index/batch", "workload/keys", "Mops/s", "extra"]);
    let keys = env::preload_keys().min(1_000_000);
    let load = WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys);

    let btree_b: BTreeK<Bytes> = optiql_btree::BPlusTree::new();
    preload_keyed(&btree_b, &load, user_key);
    let btree_x: BTreeK<BoxedBytes> = optiql_btree::BPlusTree::new();
    preload_keyed(&btree_x, &load, |i| BoxedBytes(user_key(i)));
    compare(&btree_b, &btree_x, "B+-tree", keys);

    let art_b: ArtK<Bytes> = optiql_art::ArtTree::new();
    preload_keyed(&art_b, &load, user_key);
    let art_x: ArtK<BoxedBytes> = optiql_art::ArtTree::new();
    preload_keyed(&art_x, &load, |i| BoxedBytes(user_key(i)));
    compare(&art_b, &art_x, "ART", keys);

    let shard_b: ShardedIndex<BTreeK<Bytes>> = ShardedIndex::new(SHARDS);
    preload_keyed(&shard_b, &load, user_key);
    let shard_x: ShardedIndex<BTreeK<BoxedBytes>> = ShardedIndex::new(SHARDS);
    preload_keyed(&shard_x, &load, |i| BoxedBytes(user_key(i)));
    compare(
        &shard_b,
        &shard_x,
        &format!("sharded{SHARDS}-B+-tree"),
        keys,
    );

    // u64 anchors on the same shapes.
    let tree: optiql_btree::BTreeOptiQL = optiql_btree::BTreeOptiQL::new();
    preload(&tree, &load);
    anchor_u64(&tree, "B+-tree", keys);

    let art: optiql_art::ArtOptiQL = optiql_art::ArtOptiQL::new();
    preload(&art, &load);
    anchor_u64(&art, "ART", keys);

    let sharded: ShardedIndex<optiql_btree::BTreeOptiQL> = ShardedIndex::new(SHARDS);
    preload(&sharded, &load);
    anchor_u64(&sharded, &format!("sharded{SHARDS}-B+-tree"), keys);
}
