//! Figure 9: B+-tree (top) and ART (bottom) throughput under the skewed
//! workload (self-similar, skew 0.2, dense keys) for the five §7.3
//! workload mixes, sweeping the thread count across all five lock
//! configurations.
//!
//! Expected shape (paper): read-only — all optimistic variants equal,
//! pessimistic locks trail; with more writers OptLock collapses with
//! thread count while OptiQL holds; opportunistic read keeps OptiQL ahead
//! of OptiQL-NOR whenever reads are present; the two-atomic overhead shows
//! only marginally in update-only.

use optiql::IndexLock;
use optiql_bench::{banner, header, mops, r2, row_extra};
use optiql_harness::{env, preload, run, ConcurrentIndex, KeyDist, Mix, WorkloadConfig};

fn sweep<I: ConcurrentIndex>(
    index: &I,
    index_name: &str,
    lock_name: &str,
    threads: &[usize],
    keys: u64,
) {
    for (mix_name, mix) in Mix::paper_suite() {
        for &t in threads {
            let mut cfg = WorkloadConfig::new(t, mix, KeyDist::self_similar_02(), keys);
            cfg.duration = env::duration();
            cfg.sample_every = 0;
            let before = index.index_stats();
            let (r, _) = run(index, &cfg);
            // Unified restart accounting from the shared OLC protocol:
            // the same restarts/op column for both index structures.
            let d = index.index_stats().since(&before);
            row_extra(
                "fig09",
                &format!("{index_name}/{mix_name}/{lock_name}"),
                t,
                r2(mops(r.throughput())),
                format!("{:.4}", d.restarts_per_op()),
            );
        }
    }
}

fn btree_config<IL: IndexLock, LL: IndexLock>(name: &str, threads: &[usize], keys: u64) {
    let tree: optiql_btree::BPlusTree<
        IL,
        LL,
        { optiql_btree::DEFAULT_IC },
        { optiql_btree::DEFAULT_LC },
    > = optiql_btree::BPlusTree::new();
    let cfg = WorkloadConfig::new(1, Mix::UPDATE_ONLY, KeyDist::Uniform, keys);
    preload(&tree, &cfg);
    sweep(&tree, "B+-tree", name, threads, keys);
}

fn art_config<L: IndexLock>(name: &str, threads: &[usize], keys: u64) {
    let art: optiql_art::ArtTree<L> = optiql_art::ArtTree::new();
    let cfg = WorkloadConfig::new(1, Mix::UPDATE_ONLY, KeyDist::Uniform, keys);
    preload(&art, &cfg);
    sweep(&art, "ART", name, threads, keys);
}

fn main() {
    banner(
        "fig09",
        "Index throughput, skewed workload (self-similar 0.2, dense keys)",
    );
    header(&[
        "figure",
        "index/workload/lock",
        "threads",
        "Mops/s",
        "restarts/op",
    ]);
    let threads = env::thread_counts();
    let keys = env::preload_keys();

    btree_config::<optiql::OptLock, optiql::OptLock>("OptLock", &threads, keys);
    btree_config::<optiql::OptLock, optiql::OptiQLNor>("OptiQL-NOR", &threads, keys);
    btree_config::<optiql::OptLock, optiql::OptiQL>("OptiQL", &threads, keys);
    btree_config::<optiql::PthreadRwLock, optiql::PthreadRwLock>("pthread", &threads, keys);
    btree_config::<optiql::McsRwLock, optiql::McsRwLock>("MCS-RW", &threads, keys);

    art_config::<optiql::OptLock>("OptLock", &threads, keys);
    art_config::<optiql::OptiQLNor>("OptiQL-NOR", &threads, keys);
    art_config::<optiql::OptiQL>("OptiQL", &threads, keys);
    art_config::<optiql::PthreadRwLock>("pthread", &threads, keys);
    art_config::<optiql::McsRwLock>("MCS-RW", &threads, keys);
}
