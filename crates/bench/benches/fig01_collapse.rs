//! Figure 1: update-only B+-tree throughput, centralized optimistic lock
//! vs OptiQL, under (a) low contention (uniform keys) and (b) high
//! contention (self-similar, skew 0.2).
//!
//! Expected shape (paper): both locks scale identically under low
//! contention; under high contention OptLock's throughput collapses as
//! threads are added while OptiQL plateaus.

use optiql::IndexLock;
use optiql_bench::{banner, header, mops, r2, row};
use optiql_btree::{BTreeOptLock, BTreeOptiQL};
use optiql_harness::{env, preload, run, KeyDist, Mix, WorkloadConfig};

fn sweep<I: optiql_harness::ConcurrentIndex>(
    index: &I,
    lock_name: &str,
    panel: &str,
    dist: KeyDist,
    threads: &[usize],
    keys: u64,
) {
    for &t in threads {
        let mut cfg = WorkloadConfig::new(t, Mix::UPDATE_ONLY, dist.clone(), keys);
        cfg.duration = env::duration();
        cfg.sample_every = 0;
        let (r, _) = run(index, &cfg);
        row(
            "fig01",
            &format!("{panel}/{lock_name}"),
            t,
            r2(mops(r.throughput())),
        );
    }
}

fn run_config<IL: IndexLock, LL: IndexLock>(lock_name: &str, threads: &[usize], keys: u64) {
    let tree: optiql_btree::BPlusTree<
        IL,
        LL,
        { optiql_btree::DEFAULT_IC },
        { optiql_btree::DEFAULT_LC },
    > = optiql_btree::BPlusTree::new();
    let cfg = WorkloadConfig::new(1, Mix::UPDATE_ONLY, KeyDist::Uniform, keys);
    preload(&tree, &cfg);
    sweep(&tree, lock_name, "low", KeyDist::Uniform, threads, keys);
    sweep(
        &tree,
        lock_name,
        "high",
        KeyDist::self_similar_02(),
        threads,
        keys,
    );
}

fn main() {
    banner(
        "fig01",
        "B+-tree update-only throughput: OptLock vs OptiQL, low vs high contention",
    );
    header(&["figure", "panel/lock", "threads", "Mops/s"]);
    let threads = env::thread_counts();
    let keys = env::preload_keys();
    // Type aliases pin the lock configurations the figure compares.
    let _ = BTreeOptLock::<15, 15>::new; // documentation anchor
    let _ = BTreeOptiQL::<15, 15>::new;
    run_config::<optiql::OptLock, optiql::OptLock>("OptLock", &threads, keys);
    run_config::<optiql::OptLock, optiql::OptiQL>("OptiQL", &threads, keys);
}
