//! Figure 10: index throughput under low contention (uniform keys) and
//! the balanced (50/50 lookup/update) workload.
//!
//! Expected shape (paper): all optimistic variants — OptLock, OptiQL,
//! OptiQL-NOR — perform the same (queueing adds nothing when uncontended);
//! the pessimistic locks trail because readers pay atomic writes.

use optiql::IndexLock;
use optiql_bench::{banner, header, mops, r2, row};
use optiql_harness::{env, preload, run, ConcurrentIndex, KeyDist, Mix, WorkloadConfig};

fn sweep<I: ConcurrentIndex>(
    index: &I,
    index_name: &str,
    lock_name: &str,
    threads: &[usize],
    keys: u64,
) {
    for &t in threads {
        let mut cfg = WorkloadConfig::new(t, Mix::BALANCED, KeyDist::Uniform, keys);
        cfg.duration = env::duration();
        cfg.sample_every = 0;
        let (r, _) = run(index, &cfg);
        row(
            "fig10",
            &format!("{index_name}/{lock_name}"),
            t,
            r2(mops(r.throughput())),
        );
    }
}

fn btree_config<IL: IndexLock, LL: IndexLock>(name: &str, threads: &[usize], keys: u64) {
    let tree: optiql_btree::BPlusTree<
        IL,
        LL,
        { optiql_btree::DEFAULT_IC },
        { optiql_btree::DEFAULT_LC },
    > = optiql_btree::BPlusTree::new();
    preload(
        &tree,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    sweep(&tree, "B+-tree", name, threads, keys);
}

fn art_config<L: IndexLock>(name: &str, threads: &[usize], keys: u64) {
    let art: optiql_art::ArtTree<L> = optiql_art::ArtTree::new();
    preload(
        &art,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    sweep(&art, "ART", name, threads, keys);
}

fn main() {
    banner("fig10", "Balanced workload, uniform keys (low contention)");
    header(&["figure", "index/lock", "threads", "Mops/s"]);
    let threads = env::thread_counts();
    let keys = env::preload_keys();

    btree_config::<optiql::OptLock, optiql::OptLock>("OptLock", &threads, keys);
    btree_config::<optiql::OptLock, optiql::OptiQLNor>("OptiQL-NOR", &threads, keys);
    btree_config::<optiql::OptLock, optiql::OptiQL>("OptiQL", &threads, keys);
    btree_config::<optiql::PthreadRwLock, optiql::PthreadRwLock>("pthread", &threads, keys);
    btree_config::<optiql::McsRwLock, optiql::McsRwLock>("MCS-RW", &threads, keys);

    art_config::<optiql::OptLock>("OptLock", &threads, keys);
    art_config::<optiql::OptiQLNor>("OptiQL-NOR", &threads, keys);
    art_config::<optiql::OptiQL>("OptiQL", &threads, keys);
    art_config::<optiql::PthreadRwLock>("pthread", &threads, keys);
    art_config::<optiql::McsRwLock>("MCS-RW", &threads, keys);
}
