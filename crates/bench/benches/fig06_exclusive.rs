//! Figure 6: exclusive-lock throughput under five contention levels for
//! all seven lock variants (OptLock, OptiQL-NOR, OptiQL, pthread, MCS-RW,
//! TTS, MCS), sweeping the thread count.
//!
//! Expected shape (paper): queue-based variants (OptiQL, OptiQL-NOR,
//! MCS-RW, MCS, pthread) hold their throughput under extreme/high
//! contention while TTS and OptLock collapse; under medium/low/no
//! contention all locks scale similarly.

use optiql::{
    ExclusiveLock, McsLock, McsRwLock, OptLock, OptiCLH, OptiQL, OptiQLNor, PthreadRwLock, TtsLock,
};
use optiql_bench::{banner, header, mops, r2, row};
use optiql_harness::{env, run_exclusive, Contention, MicroConfig};

fn sweep<L: ExclusiveLock>(contention: Contention, threads: &[usize]) {
    for &t in threads {
        let cfg = MicroConfig::new(t, contention, env::duration());
        let r = run_exclusive::<L>(&cfg);
        row(
            "fig06",
            &format!("{}/{}", contention.label(), L::NAME),
            t,
            r2(mops(r.throughput())),
        );
    }
}

fn main() {
    banner("fig06", "Exclusive lock throughput vs contention level");
    header(&["figure", "contention/lock", "threads", "Mops/s"]);
    let threads = env::thread_counts();
    for contention in Contention::all() {
        sweep::<OptLock>(contention, &threads);
        sweep::<OptiQLNor>(contention, &threads);
        sweep::<OptiQL>(contention, &threads);
        sweep::<PthreadRwLock>(contention, &threads);
        sweep::<McsRwLock>(contention, &threads);
        sweep::<TtsLock>(contention, &threads);
        sweep::<McsLock>(contention, &threads);
        sweep::<OptiCLH>(contention, &threads); // extension: future-work CLH variant
    }
}
