//! Extension: the sharded facade under multi-threaded batched driving —
//! the threads × shards × batch matrix, in both driving modes.
//!
//! The `sharded` target asks "what does partitioning cost a black-box
//! client?" (every worker samples the whole key space). This target asks
//! the complementary question: "what does partitioning *buy* a client
//! that drives it the way a partitioned serving system would?" — the
//! affine mode (`optiql_harness::affine`), where workers own shards,
//! pin to cores when the host allows it, batch their lookups through the
//! partition-then-pipeline `multi_lookup`, and amortize epoch-reclaim
//! pins over operation groups.
//!
//! Matrix: threads (env sweep) × shards {1,2,4,8} × batch {1,16,64},
//! YCSB-C in both modes for both trees, plus a batch=1 YCSB-A slice to
//! record write-path behaviour. Rows land in `BENCH_sharded_mt.json`
//! with the shared p50/p95/p99/p999 tail-latency columns (sampled every
//! 32nd operation so the probe cost stays off the hot path).

use optiql_bench::{banner, header, mops, r2, row_latency};
use optiql_harness::{
    env, preload, run, run_affine, ConcurrentIndex, KeyDist, LatencySummary, Mix, WorkloadConfig,
};
use optiql_sharded::ShardedIndex;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCHES: [usize; 3] = [1, 16, 64];

fn cfg(threads: usize, mix: Mix, batch: usize, keys: u64) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::new(threads, mix, KeyDist::Zipfian { theta: 0.99 }, keys);
    cfg.duration = env::duration();
    cfg.sample_every = 32;
    cfg.batch = batch;
    cfg
}

fn sweep<I: ConcurrentIndex>(index: &ShardedIndex<I>, series: &str, keys: u64) {
    preload(
        index,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    let shards = index.shard_count();
    // Unmeasured warmup (see benches/sharded.rs): keep first-point cold
    // misses out of the matrix so shard counts compare like-for-like.
    {
        let threads = *env::thread_counts().last().unwrap();
        let mut warm = cfg(threads, Mix::YCSB_C, 1, keys);
        warm.duration = std::time::Duration::from_millis(200);
        let _ = run(index, &warm);
        let _ = run_affine(index, &warm);
    }
    for threads in env::thread_counts() {
        // Read matrix: both modes, every batch size.
        for batch in BATCHES {
            let c = cfg(threads, Mix::YCSB_C, batch, keys);
            let (r, h) = run(index, &c);
            row_latency(
                "sharded_mt",
                &format!("{series}/blackbox/shards{shards}/batch{batch}/YCSB-C"),
                threads,
                r2(mops(r.throughput())),
                "-",
                LatencySummary::from_histogram(&h).as_ref(),
            );
            let (r, h, rep) = run_affine(index, &c);
            row_latency(
                "sharded_mt",
                &format!("{series}/affine/shards{shards}/batch{batch}/YCSB-C"),
                threads,
                r2(mops(r.throughput())),
                format!("pinned={}/{}", rep.pinned_workers, threads),
                LatencySummary::from_histogram(&h).as_ref(),
            );
        }
        // Write slice: batch=1 YCSB-A in both modes (mutates the index;
        // runs after the read matrix for this thread count).
        let c = cfg(threads, Mix::YCSB_A, 1, keys);
        let (r, h) = run(index, &c);
        row_latency(
            "sharded_mt",
            &format!("{series}/blackbox/shards{shards}/batch1/YCSB-A"),
            threads,
            r2(mops(r.throughput())),
            "-",
            LatencySummary::from_histogram(&h).as_ref(),
        );
        let (r, h, rep) = run_affine(index, &c);
        row_latency(
            "sharded_mt",
            &format!("{series}/affine/shards{shards}/batch1/YCSB-A"),
            threads,
            r2(mops(r.throughput())),
            format!("pinned={}/{}", rep.pinned_workers, threads),
            LatencySummary::from_histogram(&h).as_ref(),
        );
    }
}

fn main() {
    banner(
        "sharded_mt",
        "Sharded facade, threads x shards x batch, black-box vs affine driving",
    );
    header(&[
        "figure",
        "index/mode/shards/batch/workload",
        "threads",
        "Mops/s",
        "placement",
        "p50_ns",
        "p95_ns",
        "p99_ns",
        "p999_ns",
    ]);
    let keys = env::preload_keys().min(2_000_000);

    for n in SHARD_COUNTS {
        let tree: ShardedIndex<optiql_btree::BTreeOptiQL> = ShardedIndex::new(n);
        sweep(&tree, "B+-tree/OptiQL", keys);
    }
    for n in SHARD_COUNTS {
        let art: ShardedIndex<optiql_art::ArtOptiQL> = ShardedIndex::new(n);
        sweep(&art, "ART/OptiQL", keys);
    }
}
