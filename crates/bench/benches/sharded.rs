//! Extension: plain vs. hash-partitioned (sharded) index throughput.
//!
//! Runs YCSB-A (50/50 Zipfian) and YCSB-C (read-only) over both OptiQL
//! indexes behind `ShardedIndex<N>` for a sweep of shard counts;
//! `shards = 1` is the degenerate facade and serves as the plain
//! baseline. Partitioning attacks the same problem as OptiQL from the
//! other side — fewer threads per lock instead of a better lock — so the
//! interesting read is how much the facade still gains once the lock
//! itself no longer collapses.
//!
//! Each configuration is measured two ways:
//!
//! * **plain** — workers treat the facade as a black box (any thread,
//!   any shard), i.e. the drop-in usage every driver gets for free;
//! * **affine** — workers own shards, pin to their cores (best-effort)
//!   and amortize the reclaim pin over operation groups
//!   (`harness::affine`), i.e. the thread-per-core usage the facade is
//!   built for. The shards1-vs-shards8 read within *this* mode is the
//!   headline: partitioning plus placement must be a win, not a tax.

use optiql_bench::{banner, header, mops, r2, row_extra};
use optiql_harness::{
    env, preload, run, run_affine, ConcurrentIndex, KeyDist, Mix, WorkloadConfig,
};
use optiql_sharded::ShardedIndex;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKLOADS: [(&str, Mix); 2] = [("YCSB-A", Mix::YCSB_A), ("YCSB-C", Mix::YCSB_C)];

fn cfg_for(mix: Mix, threads: usize, keys: u64) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::new(threads, mix, KeyDist::Zipfian { theta: 0.99 }, keys);
    cfg.duration = env::duration();
    cfg.sample_every = 0;
    cfg
}

fn sweep<I: ConcurrentIndex>(sharded: &ShardedIndex<I>, series: &str, keys: u64) {
    let threads = *env::thread_counts().last().unwrap();
    preload(
        sharded,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    // Unmeasured warmup: the first run over a freshly preloaded config
    // pays sampler-table and tree-cache cold misses that later runs do
    // not, which would systematically penalize whichever point happens
    // to be measured first (the shards1 baseline, in sweep order).
    {
        let mut warm = cfg_for(Mix::YCSB_C, threads, keys);
        warm.duration = std::time::Duration::from_millis(200);
        let _ = run(sharded, &warm);
        let _ = run_affine(sharded, &warm);
    }
    for (name, mix) in WORKLOADS {
        let cfg = cfg_for(mix, threads, keys);
        let before = sharded.index_stats();
        let (r, _) = run(sharded, &cfg);
        let d = sharded.index_stats().since(&before);
        row_extra(
            "sharded",
            &format!("{series}/{name}"),
            threads,
            r2(mops(r.throughput())),
            format!("{:.4}", d.restarts_per_op()),
        );
    }
    for (name, mix) in WORKLOADS {
        let cfg = cfg_for(mix, threads, keys);
        let before = sharded.index_stats();
        let (r, _, _) = run_affine(sharded, &cfg);
        let d = sharded.index_stats().since(&before);
        row_extra(
            "sharded",
            &format!("{series}/affine/{name}"),
            threads,
            r2(mops(r.throughput())),
            format!("{:.4}", d.restarts_per_op()),
        );
    }
}

fn main() {
    banner(
        "sharded",
        "Plain vs. sharded facade (blackbox + shard-affine), YCSB A/C, Zipfian(0.99), max threads",
    );
    header(&[
        "figure",
        "index/shards/workload",
        "threads",
        "Mops/s",
        "restarts/op",
    ]);
    let keys = env::preload_keys().min(2_000_000);

    for n in SHARD_COUNTS {
        let tree: ShardedIndex<optiql_btree::BTreeOptiQL> = ShardedIndex::new(n);
        sweep(&tree, &format!("B+-tree/OptiQL/shards{n}"), keys);
    }
    for n in SHARD_COUNTS {
        let art: ShardedIndex<optiql_art::ArtOptiQL> = ShardedIndex::new(n);
        sweep(&art, &format!("ART/OptiQL/shards{n}"), keys);
    }
}
