//! Extension: plain vs. hash-partitioned (sharded) index throughput.
//!
//! Runs YCSB-A (50/50 Zipfian) and YCSB-C (read-only) over both OptiQL
//! indexes behind `ShardedIndex<N>` for a sweep of shard counts;
//! `shards = 1` is the degenerate facade and serves as the plain
//! baseline. Partitioning attacks the same problem as OptiQL from the
//! other side — fewer threads per lock instead of a better lock — so the
//! interesting read is how much the facade still gains once the lock
//! itself no longer collapses.

use optiql_bench::{banner, header, mops, r2, row_extra};
use optiql_harness::{env, preload, run, ConcurrentIndex, KeyDist, Mix, WorkloadConfig};
use optiql_sharded::ShardedIndex;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKLOADS: [(&str, Mix); 2] = [("YCSB-A", Mix::YCSB_A), ("YCSB-C", Mix::YCSB_C)];

fn sweep<I: ConcurrentIndex>(index: &I, series: &str, keys: u64) {
    let threads = *env::thread_counts().last().unwrap();
    preload(
        index,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    for (name, mix) in WORKLOADS {
        let mut cfg = WorkloadConfig::new(threads, mix, KeyDist::Zipfian { theta: 0.99 }, keys);
        cfg.duration = env::duration();
        cfg.sample_every = 0;
        let before = index.index_stats();
        let (r, _) = run(index, &cfg);
        let d = index.index_stats().since(&before);
        row_extra(
            "sharded",
            &format!("{series}/{name}"),
            threads,
            r2(mops(r.throughput())),
            format!("{:.4}", d.restarts_per_op()),
        );
    }
}

fn main() {
    banner(
        "sharded",
        "Plain vs. sharded facade, YCSB A/C, Zipfian(0.99), max threads",
    );
    header(&[
        "figure",
        "index/shards/workload",
        "threads",
        "Mops/s",
        "restarts/op",
    ]);
    let keys = env::preload_keys().min(2_000_000);

    for n in SHARD_COUNTS {
        let tree: ShardedIndex<optiql_btree::BTreeOptiQL> = ShardedIndex::new(n);
        sweep(&tree, &format!("B+-tree/OptiQL/shards{n}"), keys);
    }
    for n in SHARD_COUNTS {
        let art: ShardedIndex<optiql_art::ArtOptiQL> = ShardedIndex::new(n);
        sweep(&art, &format!("ART/OptiQL/shards{n}"), keys);
    }
}
