//! Extension: YCSB core workloads (A–F) on both indexes across the lock
//! matrix. Not a paper figure, but the de-facto standard way downstream
//! users will evaluate these indexes; YCSB-E additionally exercises the
//! range-scan paths (B+-tree leaf scans, ART ordered DFS).

use optiql::IndexLock;
use optiql_bench::{banner, header, mops, r2, row_extra};
use optiql_harness::{env, preload, run, ConcurrentIndex, KeyDist, Mix, WorkloadConfig};
use optiql_sharded::ShardedIndex;

fn sweep<I: ConcurrentIndex>(index: &I, index_name: &str, lock_name: &str, keys: u64) {
    let threads = *env::thread_counts().last().unwrap();
    for (name, mix) in Mix::ycsb_suite() {
        let mut cfg = WorkloadConfig::new(threads, mix, KeyDist::Zipfian { theta: 0.99 }, keys);
        cfg.duration = env::duration();
        cfg.sample_every = 0;
        // OPTIQL_BENCH_BATCH > 1 routes the lookup share of every mix
        // through the pipelined multi_lookup path.
        cfg.batch = env::batch_size();
        let (r, _) = run(index, &cfg);
        row_extra(
            "ycsb",
            &format!("{index_name}/{lock_name}"),
            name,
            r2(mops(r.throughput())),
            r.scanned_entries,
        );
    }
}

fn btree_config<IL: IndexLock, LL: IndexLock>(name: &str, keys: u64) {
    let tree: optiql_btree::BPlusTree<
        IL,
        LL,
        { optiql_btree::DEFAULT_IC },
        { optiql_btree::DEFAULT_LC },
    > = optiql_btree::BPlusTree::new();
    preload(
        &tree,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    sweep(&tree, "B+-tree", name, keys);
}

fn art_config<L: IndexLock>(name: &str, keys: u64) {
    let art: optiql_art::ArtTree<L> = optiql_art::ArtTree::new();
    preload(
        &art,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    sweep(&art, "ART", name, keys);
}

fn main() {
    banner("ycsb", "YCSB A-F, Zipfian(0.99), max threads");
    header(&[
        "figure",
        "index/lock",
        "workload",
        "Mops/s",
        "scanned_entries",
    ]);
    let keys = env::preload_keys().min(2_000_000);

    btree_config::<optiql::OptLock, optiql::OptLock>("OptLock", keys);
    btree_config::<optiql::OptLock, optiql::OptiQL>("OptiQL", keys);
    btree_config::<optiql::OptLock, optiql::OptiCLH>("OptiCLH", keys);

    art_config::<optiql::OptLock>("OptLock", keys);
    art_config::<optiql::OptiQL>("OptiQL", keys);

    // The same OptiQL trees behind the hash-partitioned facade: every
    // workload (including YCSB-E's fan-out scans) runs unmodified.
    let shards = optiql_sharded::DEFAULT_SHARDS;
    let tree: ShardedIndex<optiql_btree::BTreeOptiQL> = ShardedIndex::new(shards);
    preload(
        &tree,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    sweep(&tree, "B+-tree", &format!("OptiQL/sharded{shards}"), keys);

    let art: ShardedIndex<optiql_art::ArtOptiQL> = ShardedIndex::new(shards);
    preload(
        &art,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    sweep(&art, "ART", &format!("OptiQL/sharded{shards}"), keys);
}
