//! Hot-path microbenchmarks: the per-operation substrate costs that sit
//! under *every* index operation, measured in isolation so regressions are
//! visible before they wash out in whole-index numbers.
//!
//! Groups:
//!
//! * `pin_unpin` — epoch-reclamation pin/unpin round-trip (1 thread, plus
//!   a re-entrant pin with an outer guard held);
//! * `qnode` — queue-node pool acquire/release (1 thread and 8 threads);
//! * `node_search` — single-level B+-tree in-node search: inner
//!   `child_index` at child capacities 16/64/256 and leaf `lower_bound`
//!   at the matching leaf capacities;
//! * `x_lock` — uncontended exclusive acquire/release cycle for every
//!   lock in the crate.
//!
//! Results go to stdout (tab-separated) and to
//! `results/BENCH_hotpath.json` via [`optiql_harness::report`]. Tag runs
//! with `OPTIQL_BENCH_REV=<tag>` to compare revisions in one file.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use optiql::{
    qnode, ExclusiveLock, McsLock, McsRwLock, OptLock, OptLockBackoff, OptiCLH, OptiCLHNor, OptiQL,
    OptiQLAor, OptiQLNor, PthreadRwLock, TicketLock, TicketLockSplit, TtsBackoff, TtsLock,
};
use optiql_btree::node::{as_inner, as_leaf, Inner, Leaf};
use optiql_harness::{BenchJson, BenchRecord, Histogram};
use optiql_reclaim::Collector;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::hint::black_box;

/// Operations per timing batch: long enough to amortize the `Instant`
/// reads, short enough to populate the latency histogram.
const BATCH: u64 = 256;

struct Timed {
    ops_per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
}

/// Time `f` in batches for `dur`, collecting per-op latency (batch mean).
fn time_loop(dur: Duration, mut f: impl FnMut()) -> Timed {
    for _ in 0..BATCH {
        f(); // warm-up: faults, TLS registration, branch predictors
    }
    let mut hist = Histogram::new();
    let mut ops = 0u64;
    let start = Instant::now();
    loop {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        let ns = t0.elapsed().as_nanos() as u64;
        hist.record((ns / BATCH).max(1));
        ops += BATCH;
        if start.elapsed() >= dur {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    Timed {
        ops_per_sec: ops as f64 / secs,
        p50_ns: hist.quantile(0.5) as f64,
        p99_ns: hist.quantile(0.99) as f64,
    }
}

/// As [`time_loop`] but with `threads` workers running `f` concurrently.
fn time_threads(threads: usize, dur: Duration, f: impl Fn(usize) + Sync) -> Timed {
    let stop = AtomicBool::new(false);
    let merged: Mutex<(u64, Histogram)> = Mutex::new((0, Histogram::new()));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (stop, merged, f) = (&stop, &merged, &f);
            s.spawn(move || {
                optiql_harness::pin::pin_thread(t);
                for _ in 0..BATCH {
                    f(t);
                }
                let mut hist = Histogram::new();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    for _ in 0..BATCH {
                        f(t);
                    }
                    let ns = t0.elapsed().as_nanos() as u64;
                    hist.record((ns / BATCH).max(1));
                    ops += BATCH;
                }
                let mut g = merged.lock().unwrap();
                g.0 += ops;
                g.1.merge(&hist);
            });
        }
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
    });
    let secs = start.elapsed().as_secs_f64();
    let g = merged.lock().unwrap();
    Timed {
        ops_per_sec: g.0 as f64 / secs,
        p50_ns: g.1.quantile(0.5) as f64,
        p99_ns: g.1.quantile(0.99) as f64,
    }
}

struct Reporter {
    json: BenchJson,
    rev: String,
}

impl Reporter {
    fn emit(&mut self, bench: &str, config: &str, threads: usize, t: &Timed) {
        println!(
            "hotpath\t{bench}/{config}\t{threads}\t{:.2} Mops/s\tp50={:.0}ns p99={:.0}ns",
            t.ops_per_sec / 1e6,
            t.p50_ns,
            t.p99_ns
        );
        self.json.record(&BenchRecord {
            bench: bench.into(),
            config: config.into(),
            rev: self.rev.clone(),
            threads,
            ops_per_sec: t.ops_per_sec,
            p50_ns: Some(t.p50_ns),
            p99_ns: Some(t.p99_ns),
        });
    }
}

// --- group: reclamation pin/unpin ----------------------------------------

fn bench_pin_unpin(rep: &mut Reporter, dur: Duration) {
    let collector = optiql_reclaim::Collector::new();
    let handle = collector.handle();
    let t = time_loop(dur, || {
        drop(black_box(handle.pin()));
    });
    rep.emit("pin_unpin", "handle", 1, &t);

    // Re-entrant pin with an outer guard held: the depth>0 fast path.
    let outer = handle.pin();
    let t = time_loop(dur, || {
        drop(black_box(handle.pin()));
    });
    drop(outer);
    rep.emit("pin_unpin", "nested", 1, &t);

    let t = time_loop(dur, || {
        drop(black_box(collector.pin()));
    });
    rep.emit("pin_unpin", "collector", 1, &t);
}

// --- group: queue-node pool ----------------------------------------------

fn bench_qnode(rep: &mut Reporter, dur: Duration) {
    let t = time_loop(dur, || {
        let id = qnode::alloc();
        black_box(id);
        qnode::free(id);
    });
    rep.emit("qnode", "acquire_release", 1, &t);

    // Hold two (the B+-tree merge case) so the TLS cache cycles.
    let t = time_loop(dur, || {
        let a = qnode::alloc();
        let b = qnode::alloc();
        qnode::free(black_box(a));
        qnode::free(black_box(b));
    });
    rep.emit("qnode", "acquire_release_pair", 1, &t);

    for threads in [8usize, 16] {
        let t = time_threads(threads, dur, |_| {
            let id = qnode::alloc();
            black_box(id);
            qnode::free(id);
        });
        rep.emit("qnode", "acquire_release", threads, &t);
    }
}

// --- group: in-node search ------------------------------------------------

fn bench_node_search<const IC: usize>(rep: &mut Reporter, dur: Duration) {
    // A full inner node of IC-1 separators routing to one shared dummy
    // child, searched with uniformly random keys over the covered range.
    let child = Leaf::<OptLock, 4>::alloc();
    let ip = Inner::<OptLock, IC>::alloc();
    // Safety: `ip` was just allocated by `Inner::<OptLock, IC>::alloc`.
    let inner = unsafe { as_inner::<OptLock, IC, u64>(ip) };
    inner.init_root(8, child, child);
    let col = Collector::new();
    let g = col.pin();
    for i in 1..(IC - 1) as u64 {
        inner.insert_child(&((i + 1) * 8), child, &g);
    }
    // 64Ki probe keys: long enough that the branch predictor cannot
    // memorize the probe sequence, which would flatter branchy searches.
    let span = IC as u64 * 8;
    let mut rng = SmallRng::seed_from_u64(0xB7EE);
    let keys: Vec<u64> = (0..65536).map(|_| rng.random_range(0..span)).collect();
    let mut i = 0usize;
    let t = time_loop(dur, || {
        i = (i + 1) & 0xFFFF;
        black_box(inner.child_index(black_box(&keys[i])));
    });
    rep.emit("node_search", &format!("child_index_{IC}"), 1, &t);

    // Matching leaf: LC = IC entries, lower_bound over the same keys.
    let lp = Leaf::<OptLock, IC>::alloc();
    // Safety: `lp` was just allocated by `Leaf::<OptLock, IC>::alloc`.
    let leaf = unsafe { as_leaf::<OptLock, IC, u64>(lp) };
    for k in 0..IC as u64 {
        leaf.insert(&(k * 8), k, &g);
    }
    let t = time_loop(dur, || {
        i = (i + 1) & 0xFFFF;
        black_box(leaf.lower_bound(black_box(&keys[i])));
    });
    rep.emit("node_search", &format!("lower_bound_{IC}"), 1, &t);

    // Safety: pointers originate from the matching `alloc` calls above and
    // are dropped exactly once, after their last use.
    unsafe {
        drop(Box::from_raw(lp as *mut Leaf<OptLock, IC>));
        drop(Box::from_raw(ip as *mut Inner<OptLock, IC>));
        drop(Box::from_raw(child as *mut Leaf<OptLock, 4>));
    }
}

// --- group: uncontended exclusive acquire ---------------------------------

fn bench_x_lock<L: ExclusiveLock>(rep: &mut Reporter, dur: Duration) {
    let lock = L::default();
    let t = time_loop(dur, || {
        let tok = lock.x_lock();
        black_box(&lock);
        lock.x_unlock(tok);
    });
    rep.emit("x_lock", L::NAME, 1, &t);
}

fn main() {
    let dur = optiql_harness::env::duration();
    let rev = BenchRecord::rev_from_env();
    println!("# ===================================================================");
    println!("# hotpath: substrate fast-path microbenchmarks (rev={rev})");
    println!(
        "# host_cpus={} secs_per_point={:.2}",
        optiql_harness::pin::num_cpus(),
        dur.as_secs_f64()
    );
    println!("# ===================================================================");
    let mut rep = Reporter {
        json: BenchJson::new("hotpath"),
        rev,
    };

    bench_pin_unpin(&mut rep, dur);
    bench_qnode(&mut rep, dur);
    bench_node_search::<16>(&mut rep, dur);
    bench_node_search::<64>(&mut rep, dur);
    bench_node_search::<256>(&mut rep, dur);

    bench_x_lock::<TtsLock>(&mut rep, dur);
    bench_x_lock::<TtsBackoff>(&mut rep, dur);
    bench_x_lock::<TicketLock>(&mut rep, dur);
    bench_x_lock::<TicketLockSplit>(&mut rep, dur);
    bench_x_lock::<McsLock>(&mut rep, dur);
    bench_x_lock::<McsRwLock>(&mut rep, dur);
    bench_x_lock::<OptLock>(&mut rep, dur);
    bench_x_lock::<OptLockBackoff>(&mut rep, dur);
    bench_x_lock::<OptiQL>(&mut rep, dur);
    bench_x_lock::<OptiQLNor>(&mut rep, dur);
    bench_x_lock::<OptiQLAor>(&mut rep, dur);
    bench_x_lock::<OptiCLH>(&mut rep, dur);
    bench_x_lock::<OptiCLHNor>(&mut rep, dur);
    bench_x_lock::<PthreadRwLock>(&mut rep, dur);

    println!("# report: {}", rep.json.path().display());
}
