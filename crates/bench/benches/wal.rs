//! Extension: durability pricing — what does the write-ahead log cost,
//! and what does group commit buy back?
//!
//! The question this target answers: can a wal-mounted server keep
//! pipelined write throughput near the no-fsync bound? `--fsync always`
//! is the honest per-op baseline (one fsync per SET, the device's sync
//! latency in series with every ack); `--fsync group` amortizes one
//! fsync per worker round over every response released in that round;
//! `--fsync none` appends but never syncs — the logging-only upper
//! bound. The wal PR's acceptance bar: group commit within 2× of
//! `none` at pipeline depth ≥ 8.
//!
//! Matrix: fsync {none, group, always} × connections {1,2,8} × depth
//! {1,8,32}, write-only load (100% SET) over a btree backend, each
//! policy on a fresh wal directory. The `fsync/req` column comes from
//! the server's wal counters — the amortization made visible: ~1 for
//! `always`, ~1/(conns·depth) for `group`, 0 for `none`.
//!
//! The fan-in axis matters because a group commit's cost model is
//! `work/(work + fsync)` per worker round: the device's sync latency
//! (~150 µs on this host's virtio disk, unmovable — preallocation
//! doesn't dent it) is a fixed toll per round, so the ratio to the
//! no-fsync bound improves with every writer that shares the flush.
//! One conn at depth 8 amortizes over 8 writes; eight conns at depth
//! 32 amortize over 256, which is where durability gets cheap. Rows
//! land in `BENCH_wal.json` with the shared tail-latency columns.

use std::collections::HashMap;

use optiql_bench::{banner, header, mops, r2, row_latency};
use optiql_harness::loadgen::{self, LoadgenConfig};
use optiql_harness::report::LatencySummary;
use optiql_harness::{env, KeyDist};
use optiql_server::server::{start, BackendKind, ServerConfig};
use optiql_server::FsyncPolicy;

const DEPTHS: [usize; 3] = [1, 8, 32];
const CONNS: [usize; 3] = [1, 2, 8];

fn main() {
    banner(
        "wal",
        "Write-ahead-logged server: group commit vs per-op fsync vs no fsync",
    );
    header(&[
        "figure",
        "fsync/depth",
        "conns",
        "Mops/s",
        "fsync_per_req",
        "p50_ns",
        "p95_ns",
        "p99_ns",
        "p999_ns",
    ]);

    let keys = env::preload_keys();
    let policies = [FsyncPolicy::None, FsyncPolicy::Group, FsyncPolicy::Always];

    // (policy, conns, depth) → ops/s, for the closing ratio summary.
    let mut measured: HashMap<(&str, usize, usize), f64> = HashMap::new();

    for policy in policies {
        let pname = policy.as_str();
        let dir =
            std::env::temp_dir().join(format!("optiql-bench-wal-{pname}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let h = start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            backend: BackendKind::Btree,
            workers: 0,
            wal_dir: Some(dir.clone()),
            fsync: policy,
            ..ServerConfig::default()
        })
        .expect("server start");
        let addr = h.addr().to_string();
        let wal = h.wal().cloned().expect("wal mounted");

        // Per-op fsync pays the device's sync latency on every request;
        // scale its point budget down so the sweep stays bounded without
        // changing what a point measures (throughput is a rate).
        let ops_per_conn: u64 = match (policy, env::full()) {
            (FsyncPolicy::Always, false) => 3_000,
            (FsyncPolicy::Always, true) => 15_000,
            (_, false) => 30_000,
            (_, true) => 150_000,
        };

        // Unmeasured warmup: page in the log files and settle TCP.
        let _ = loadgen::run(&LoadgenConfig {
            addr: addr.clone(),
            connections: 2,
            pipeline: 8,
            ops_per_conn: if policy == FsyncPolicy::Always {
                500
            } else {
                5_000
            },
            read_pct: 0,
            keys,
            ..LoadgenConfig::default()
        });

        for conns in CONNS {
            for depth in DEPTHS {
                let before = wal.stats();
                let r = loadgen::run(&LoadgenConfig {
                    addr: addr.clone(),
                    connections: conns,
                    pipeline: depth,
                    ops_per_conn,
                    read_pct: 0,
                    dist: KeyDist::Uniform,
                    keys,
                    seed: 0x5A1_u64 + depth as u64,
                    ..LoadgenConfig::default()
                })
                .expect("loadgen run");
                assert_eq!(r.errors, 0, "error responses during wal/{pname} bench");
                let delta = wal.stats().since(&before);
                let fsync_per_req = if r.requests > 0 {
                    delta.fsyncs as f64 / r.requests as f64
                } else {
                    0.0
                };
                measured.insert((pname, conns, depth), r.throughput());
                row_latency(
                    "wal",
                    &format!("{pname}/depth{depth}"),
                    conns,
                    r2(mops(r.throughput())),
                    (fsync_per_req * 1000.0).round() / 1000.0,
                    LatencySummary::from_histogram(&r.hist).as_ref(),
                );
            }
        }
        drop(h);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Headline ratios: what durability costs against the logging-only
    // bound, and what group commit claws back from per-op fsync. The
    // acceptance bar is group ≥ 0.5× none at every depth ≥ 8.
    println!("# durability cost (throughput ratios, same load):");
    for conns in CONNS {
        for depth in DEPTHS {
            let n = measured.get(&("none", conns, depth));
            let g = measured.get(&("group", conns, depth));
            let a = measured.get(&("always", conns, depth));
            if let (Some(n), Some(g), Some(a)) = (n, g, a) {
                println!(
                    "#   conns={conns} depth={depth}: group/none={:.2}x always/none={:.2}x group/always={:.1}x",
                    g / n,
                    a / n,
                    g / a,
                );
            }
        }
    }
}
