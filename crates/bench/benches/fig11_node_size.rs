//! Figure 11: B+-tree throughput under the skewed distribution across
//! node sizes 256 B – 16 KB, comparing OptLock, OptiQL-NOR, OptiQL and
//! OptiQL-AOR at a fixed thread count, for read-heavy / balanced /
//! write-heavy mixes.
//!
//! Expected shape (paper): larger nodes mean longer critical sections;
//! opportunistic read loses value for read-heavy mixes as nodes grow
//! (OptiQL-NOR catches up) but stays ahead with more writers. AOR buys up
//! to ~30% extra with larger nodes by holding the reader-admission window
//! open during the in-leaf search.

use optiql_bench::{banner, header, mops, r2, row};
use optiql_harness::{env, preload, run, KeyDist, Mix, WorkloadConfig};

const MIXES: [(&str, Mix); 3] = [
    ("Read-heavy", Mix::READ_HEAVY),
    ("Balanced", Mix::BALANCED),
    ("Write-heavy", Mix::WRITE_HEAVY),
];

macro_rules! size_point {
    ($size_label:expr, $ic:expr, $lc:expr, $threads:expr, $keys:expr) => {{
        run_size::<optiql::OptLock, $ic, $lc>("OptLock", $size_label, $threads, $keys);
        run_size::<optiql::OptiQLNor, $ic, $lc>("OptiQL-NOR", $size_label, $threads, $keys);
        run_size::<optiql::OptiQL, $ic, $lc>("OptiQL", $size_label, $threads, $keys);
        run_size::<optiql::OptiQLAor, $ic, $lc>("OptiQL-AOR", $size_label, $threads, $keys);
    }};
}

fn run_size<LL: optiql::IndexLock, const IC: usize, const LC: usize>(
    lock_name: &str,
    size_label: &str,
    threads: usize,
    keys: u64,
) {
    let tree: optiql_btree::BPlusTree<optiql::OptLock, LL, IC, LC> = optiql_btree::BPlusTree::new();
    preload(
        &tree,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    for (mix_name, mix) in MIXES {
        let mut cfg = WorkloadConfig::new(threads, mix, KeyDist::self_similar_02(), keys);
        cfg.duration = env::duration();
        cfg.sample_every = 0;
        let (r, _) = run(&tree, &cfg);
        row(
            "fig11",
            &format!("{mix_name}/{lock_name}"),
            size_label,
            r2(mops(r.throughput())),
        );
    }
}

fn main() {
    banner(
        "fig11",
        "B+-tree throughput vs node size (skewed, fixed threads)",
    );
    header(&["figure", "workload/lock", "node_size", "Mops/s"]);
    let threads = *env::thread_counts().last().unwrap();
    // Node-size sweeps multiply the key count by constant-size nodes; keep
    // the preload smaller so the 16 KB point stays memory-friendly.
    let keys = env::preload_keys().min(1_000_000);

    size_point!("256", 16, 15, threads, keys);
    size_point!("512", 32, 31, threads, keys);
    size_point!("1K", 64, 63, threads, keys);
    size_point!("2K", 128, 127, threads, keys);
    size_point!("4K", 256, 255, threads, keys);
    size_point!("8K", 512, 511, threads, keys);
    size_point!("16K", 1024, 1023, threads, keys);
}
