//! Figure 13: ART throughput with *sparse* integer keys (forcing lazy
//! expansion) under the self-similar distribution, read-heavy and
//! write-heavy mixes, sweeping threads.
//!
//! Expected shape (paper): OptLock-based ART collapses beyond one socket
//! (excessive upgrade retries on lazily-expanded leaves), while OptiQL and
//! OptiQL-NOR use contention expansion (§6.2) to materialize hot
//! last-level nodes and local-spin, avoiding the collapse.

use optiql::IndexLock;
use optiql_bench::{banner, header, mops, r2, row};
use optiql_harness::{env, preload, run, ConcurrentIndex, KeyDist, KeySpace, Mix, WorkloadConfig};

const MIXES: [(&str, Mix); 2] = [
    ("Read-heavy", Mix::READ_HEAVY),
    ("Write-heavy", Mix::WRITE_HEAVY),
];

fn sweep<I: ConcurrentIndex>(index: &I, lock_name: &str, threads: &[usize], keys: u64) {
    for (mix_name, mix) in MIXES {
        for &t in threads {
            let mut cfg = WorkloadConfig::new(t, mix, KeyDist::self_similar_02(), keys);
            cfg.keyspace = KeySpace::Sparse;
            cfg.duration = env::duration();
            cfg.sample_every = 0;
            let (r, _) = run(index, &cfg);
            row(
                "fig13",
                &format!("{mix_name}/{lock_name}"),
                t,
                r2(mops(r.throughput())),
            );
        }
    }
}

fn art_config<L: IndexLock>(name: &str, threads: &[usize], keys: u64) {
    let art: optiql_art::ArtTree<L> = optiql_art::ArtTree::new();
    let mut cfg = WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys);
    cfg.keyspace = KeySpace::Sparse;
    preload(&art, &cfg);
    sweep(&art, name, threads, keys);
}

fn main() {
    banner(
        "fig13",
        "ART with sparse keys (lazy expansion + contention expansion)",
    );
    header(&["figure", "workload/lock", "threads", "Mops/s"]);
    let threads = env::thread_counts();
    let keys = env::preload_keys();

    art_config::<optiql::OptLock>("OptLock", &threads, keys);
    art_config::<optiql::OptiQLNor>("OptiQL-NOR", &threads, keys);
    art_config::<optiql::OptiQL>("OptiQL", &threads, keys);
    art_config::<optiql::PthreadRwLock>("pthread", &threads, keys);
    art_config::<optiql::McsRwLock>("MCS-RW", &threads, keys);
}
