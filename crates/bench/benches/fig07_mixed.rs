//! Figure 7: lock throughput under varying read/write ratios
//! (0/100 … 90/10) and four contention levels, at the maximum thread
//! count, for the five reader-capable locks.
//!
//! Expected shape (paper): under extreme contention OptLock stays low and
//! pthread trends worse, MCS-RW holds, OptiQL-NOR leads until the mix
//! becomes read-heavy where OptiQL's opportunistic read pays off; under
//! medium/low contention the optimistic locks dominate the pessimistic
//! ones.

use optiql::{IndexLock, McsRwLock, OptLock, OptiQL, OptiQLNor, PthreadRwLock};
use optiql_bench::{banner, header, mops, r2, row};
use optiql_harness::{env, run_mixed, Contention, MicroConfig};

const RATIOS: [(u32, &str); 5] = [
    (0, "0/100"),
    (20, "20/80"),
    (50, "50/50"),
    (80, "80/20"),
    (90, "90/10"),
];

fn sweep<L: IndexLock>(contention: Contention, threads: usize) {
    for (read_pct, label) in RATIOS {
        let cfg = MicroConfig {
            threads,
            contention,
            read_pct,
            cs_len: 50,
            duration: env::duration(),
        };
        let r = run_mixed::<L>(&cfg);
        row(
            "fig07",
            &format!("{}/{}", contention.label(), L::NAME),
            label,
            r2(mops(r.throughput())),
        );
    }
}

fn main() {
    banner("fig07", "Mixed read/write lock throughput (max threads)");
    header(&["figure", "contention/lock", "read/write", "Mops/s"]);
    let threads = *env::thread_counts().last().unwrap();
    for contention in [
        Contention::Extreme,
        Contention::High,
        Contention::Medium,
        Contention::Low,
    ] {
        sweep::<OptLock>(contention, threads);
        sweep::<OptiQLNor>(contention, threads);
        sweep::<OptiQL>(contention, threads);
        sweep::<PthreadRwLock>(contention, threads);
        sweep::<McsRwLock>(contention, threads);
    }
}
