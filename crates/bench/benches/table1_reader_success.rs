//! Table 1: reader success rate of OptiQL-NOR vs OptiQL under varying
//! read/write ratios and high contention, at the maximum thread count.
//!
//! Expected shape (paper): OptiQL-NOR starves readers (< 2% success — the
//! queue keeps the word locked through handover), while OptiQL's
//! opportunistic read admits a substantial fraction (~26–32%).

use optiql::{IndexLock, OptiQL, OptiQLNor};
use optiql_bench::{banner, header, r2};
use optiql_harness::{env, run_mixed, Contention, MicroConfig};

const RATIOS: [(u32, &str); 4] = [(20, "20%/80%"), (50, "50%/50%"), (80, "80%/20%"), (90, "90%/10%")];

fn success_rates<L: IndexLock>(threads: usize) -> Vec<f64> {
    RATIOS
        .iter()
        .map(|&(read_pct, _)| {
            let cfg = MicroConfig {
                threads,
                contention: Contention::High,
                read_pct,
                cs_len: 50,
                duration: env::duration(),
            };
            let r = run_mixed::<L>(&cfg);
            r.read_success_rate() * 100.0
        })
        .collect()
}

fn main() {
    banner(
        "table1",
        "Reader success rate under high contention (percent)",
    );
    header(&["lock", "20%/80%", "50%/50%", "80%/20%", "90%/10%"]);
    let threads = *env::thread_counts().last().unwrap();
    let nor = success_rates::<OptiQLNor>(threads);
    let yes = success_rates::<OptiQL>(threads);
    let fmt = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{}%", r2(*x)))
            .collect::<Vec<_>>()
            .join("\t")
    };
    println!("OptiQL-NOR\t{}", fmt(&nor));
    println!("OptiQL\t{}", fmt(&yes));
}
