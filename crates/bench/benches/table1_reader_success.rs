//! Table 1: reader success rate of OptiQL-NOR vs OptiQL under varying
//! read/write ratios and high contention, at the maximum thread count.
//!
//! Expected shape (paper): OptiQL-NOR starves readers (< 2% success — the
//! queue keeps the word locked through handover), while OptiQL's
//! opportunistic read admits a substantial fraction (~26–32%).
//!
//! Built with `--features stats`, each row is followed by a second row of
//! *counter-derived* success rates (from `optiql::stats`) plus the raw
//! event totals — the measured admissions/validations of the lock layer
//! itself, which should track the harness-side rates closely. The stats
//! build also reports how many admitted readers came in through the
//! opportunistic-read handover window (`opread_admit`), the direct
//! mechanism behind OptiQL's advantage.

use optiql::{IndexLock, OptLock, OptiQL, OptiQLNor};
use optiql_bench::{banner, header, r2};
use optiql_harness::{env, run_mixed, Contention, MicroConfig};

const RATIOS: [(u32, &str); 4] = [
    (20, "20%/80%"),
    (50, "50%/50%"),
    (80, "80%/20%"),
    (90, "90%/10%"),
];

struct RatioPoint {
    /// Harness-side read success rate (percent).
    harness_pct: f64,
    /// Counter-derived read success rate (percent); only meaningful when
    /// `optiql_harness::stats::ENABLED`.
    #[cfg_attr(not(feature = "stats"), allow(dead_code))]
    counter_pct: f64,
    /// Interval snapshot for the run (all-zero without `stats`).
    #[cfg_attr(not(feature = "stats"), allow(dead_code))]
    events: optiql_harness::stats::Snapshot,
}

fn success_rates<L: IndexLock>(threads: usize) -> Vec<RatioPoint> {
    RATIOS
        .iter()
        .map(|&(read_pct, _)| {
            let cfg = MicroConfig {
                threads,
                contention: Contention::High,
                read_pct,
                cs_len: 50,
                duration: env::duration(),
            };
            optiql_harness::stats::reset();
            let r = run_mixed::<L>(&cfg);
            let events = optiql_harness::stats::snapshot();
            RatioPoint {
                harness_pct: r.read_success_rate() * 100.0,
                counter_pct: events.reader_success_rate() * 100.0,
                events,
            }
        })
        .collect()
}

fn fmt(points: &[RatioPoint], f: impl Fn(&RatioPoint) -> f64) -> String {
    points
        .iter()
        .map(|p| format!("{}%", r2(f(p))))
        .collect::<Vec<_>>()
        .join("\t")
}

fn report(lock: &str, points: &[RatioPoint]) {
    println!("{lock}\t{}", fmt(points, |p| p.harness_pct));
    #[cfg(feature = "stats")]
    {
        use optiql_harness::stats::Event;
        println!("{lock} (counters)\t{}", fmt(points, |p| p.counter_pct));
        for (p, (_, ratio)) in points.iter().zip(RATIOS) {
            println!(
                "# {lock} {ratio}: admit={} opread_admit={} reject={} \
                 validate_ok={} validate_fail={}",
                p.events.get(Event::ReadAdmit),
                p.events.get(Event::OpReadAdmit),
                p.events.get(Event::ReadReject),
                p.events.get(Event::ReadValidateOk),
                p.events.get(Event::ReadValidateFail),
            );
        }
    }
}

fn main() {
    banner(
        "table1",
        "Reader success rate under high contention (percent)",
    );
    if optiql_harness::stats::ENABLED {
        println!("# stats feature on: counter-derived rates follow each row");
    }
    header(&["lock", "20%/80%", "50%/50%", "80%/20%", "90%/10%"]);
    let threads = *env::thread_counts().last().unwrap();
    report("OptiQL-NOR", &success_rates::<OptiQLNor>(threads));
    report("OptiQL", &success_rates::<OptiQL>(threads));
    report("OptLock", &success_rates::<OptLock>(threads));
}
