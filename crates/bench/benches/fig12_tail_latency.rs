//! Figure 12: operation latency percentiles (min … p99.999) for B+-tree
//! and ART under the self-similar (0.2) distribution, at two thread
//! counts, for read-only / balanced / update-only workloads.
//!
//! Expected shape (paper): OptLock's update tails blow up at the high
//! percentiles (unfair CAS retries), while OptiQL and OptiQL-NOR stay
//! flat thanks to FIFO queuing; OptiQL-NOR spikes on the balanced
//! workload where its starved readers retry many times.

use optiql::IndexLock;
use optiql_bench::{banner, header};
use optiql_harness::{env, preload, run, ConcurrentIndex, KeyDist, Mix, WorkloadConfig};

const WORKLOADS: [(&str, Mix); 3] = [
    ("Read-only", Mix::READ_ONLY),
    ("Balanced", Mix::BALANCED),
    ("Update-only", Mix::UPDATE_ONLY),
];

fn sweep<I: ConcurrentIndex>(
    index: &I,
    index_name: &str,
    lock_name: &str,
    thread_points: &[usize],
    keys: u64,
) {
    for &t in thread_points {
        for (mix_name, mix) in WORKLOADS {
            let mut cfg = WorkloadConfig::new(t, mix, KeyDist::self_similar_02(), keys);
            cfg.duration = env::duration();
            cfg.sample_every = 16; // dense sampling for stable tails
            optiql_harness::stats::reset();
            let before = index.index_stats();
            let (_, hist) = run(index, &cfg);
            for (pct, ns) in hist.paper_percentiles() {
                println!(
                    "fig12\t{index_name}/{mix_name}/{t}t/{lock_name}\t{pct}\t{:.2}",
                    ns as f64 / 1_000.0 // µs, as in the paper's y-axis
                );
            }
            // Tail latency correlates with traversal restarts (rejected or
            // invalidated readers retry from the root). The unified
            // protocol accounting is always on — one consistent restart
            // line for both index structures.
            let d = index.index_stats().since(&before);
            println!(
                "# {index_name}/{mix_name}/{t}t/{lock_name}: ops={} restarts={} \
                 restarts/op={:.4} yields={}",
                d.ops,
                d.restarts,
                d.restarts_per_op(),
                d.escalations,
            );
            // Lock-layer event detail when the cfg-gated counters are in.
            if optiql_harness::stats::ENABLED {
                use optiql_harness::stats::Event;
                let s = optiql_harness::stats::snapshot();
                println!(
                    "# {index_name}/{mix_name}/{t}t/{lock_name}: restarts={} \
                     read_reject={} validate_fail={} opread_admit={}",
                    s.get(Event::IndexRestartBtree) + s.get(Event::IndexRestartArt),
                    s.get(Event::ReadReject),
                    s.get(Event::ReadValidateFail),
                    s.get(Event::OpReadAdmit),
                );
            }
        }
    }
}

fn btree_config<IL: IndexLock, LL: IndexLock>(name: &str, points: &[usize], keys: u64) {
    let tree: optiql_btree::BPlusTree<
        IL,
        LL,
        { optiql_btree::DEFAULT_IC },
        { optiql_btree::DEFAULT_LC },
    > = optiql_btree::BPlusTree::new();
    preload(
        &tree,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    sweep(&tree, "B+-tree", name, points, keys);
}

fn art_config<L: IndexLock>(name: &str, points: &[usize], keys: u64) {
    let art: optiql_art::ArtTree<L> = optiql_art::ArtTree::new();
    preload(
        &art,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    sweep(&art, "ART", name, points, keys);
}

fn main() {
    banner(
        "fig12",
        "Latency percentiles (µs), self-similar 0.2 (paper: 20 and 40 threads)",
    );
    header(&["figure", "index/workload/threads/lock", "percentile", "µs"]);
    let all = env::thread_counts();
    // The paper uses one-socket (20) and two-socket (40) points; scale to
    // the host by taking the middle and the maximum of the sweep.
    let points = if all.len() >= 2 {
        vec![all[all.len() / 2], *all.last().unwrap()]
    } else {
        all.clone()
    };
    let keys = env::preload_keys();

    btree_config::<optiql::OptLock, optiql::OptLock>("OptLock", &points, keys);
    btree_config::<optiql::OptLock, optiql::OptiQLNor>("OptiQL-NOR", &points, keys);
    btree_config::<optiql::OptLock, optiql::OptiQL>("OptiQL", &points, keys);

    art_config::<optiql::OptLock>("OptLock", &points, keys);
    art_config::<optiql::OptiQLNor>("OptiQL-NOR", &points, keys);
    art_config::<optiql::OptiQL>("OptiQL", &points, keys);
}
