//! Extension: batched lookups with software-pipelined group prefetch.
//!
//! A pointer-chasing descent stalls on one cache miss per level; the
//! batched engines interleave up to 8 in-flight descents per group,
//! prefetching each op's next node before yielding the core to the next
//! op, so the misses overlap (memory-level parallelism). This target
//! sweeps the batch size on uniform YCSB-C over both trees, plain and
//! behind the sharded facade, and reports each point's speedup over the
//! scalar `lookup` loop (`batch = 1`). The gain is per *thread* — it does
//! not need concurrency to show up — and grows with the working set,
//! since it only hides misses that actually occur; run with a large
//! `OPTIQL_BENCH_KEYS` to push the tree past the last-level cache.
//!
//! A second series times `multi_insert` bulk-loading a fresh tree, where
//! the same pipeline overlaps the descent misses ahead of each leaf
//! write.

use std::time::Instant;

use optiql_bench::{banner, header, mops, r2, row_extra};
use optiql_harness::{env, preload, run, ConcurrentIndex, KeyDist, Mix, WorkloadConfig};
use optiql_sharded::ShardedIndex;

const BATCHES: [usize; 5] = [1, 4, 8, 16, 32];

/// Uniform YCSB-C through the workload driver at each batch size;
/// returns Mops/s per point.
fn lookup_sweep<I: ConcurrentIndex>(index: &I, series: &str, keys: u64) {
    let threads = *env::thread_counts().last().unwrap();
    preload(
        index,
        &WorkloadConfig::new(1, Mix::BALANCED, KeyDist::Uniform, keys),
    );
    let mut base = 0.0f64;
    for batch in BATCHES {
        let mut cfg = WorkloadConfig::new(threads, Mix::YCSB_C, KeyDist::Uniform, keys);
        cfg.duration = env::duration();
        cfg.sample_every = 0;
        cfg.batch = batch;
        let before = index.index_stats();
        let (r, _) = run(index, &cfg);
        let d = index.index_stats().since(&before);
        let m = mops(r.throughput());
        if batch == 1 {
            base = m;
        }
        let speedup = if base > 0.0 { m / base } else { 0.0 };
        row_extra(
            "batched",
            &format!("{series}/lookup"),
            batch,
            r2(m),
            format!("{}x r/op={:.4}", r2(speedup), d.restarts_per_op()),
        );
    }
    batch_event_note(series);
}

/// Bulk-load `keys` fresh pairs through `multi_insert` in chunks of
/// `batch` (`1` = the scalar `insert` loop) into a tree built by `make`.
fn insert_sweep<I: ConcurrentIndex>(make: impl Fn() -> I, series: &str, keys: u64) {
    let pairs: Vec<(u64, u64)> = (0..keys).map(|k| (k, k.wrapping_add(1))).collect();
    let mut base = 0.0f64;
    for batch in BATCHES {
        let index = make();
        let t0 = Instant::now();
        if batch == 1 {
            for &(k, v) in &pairs {
                index.insert(k, v);
            }
        } else {
            for chunk in pairs.chunks(batch) {
                index.multi_insert(chunk);
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(index.len() as u64, keys, "bulk load must insert every key");
        let m = mops(keys as f64 / secs);
        if batch == 1 {
            base = m;
        }
        let speedup = if base > 0.0 { m / base } else { 0.0 };
        row_extra(
            "batched",
            &format!("{series}/insert"),
            batch,
            r2(m),
            format!("{}x", r2(speedup)),
        );
    }
}

/// With the `stats` feature on, print the batch-engine event counters
/// accumulated so far (batches issued, in-batch restarts, pipeline
/// rounds) as a comment row.
fn batch_event_note(series: &str) {
    if optiql_harness::stats::ENABLED {
        use optiql_harness::stats::Event;
        let s = optiql_harness::stats::snapshot();
        println!(
            "# {series}: batch_issued={} batch_op_restart={} batch_prefetch_round={}",
            s.get(Event::BatchIssued),
            s.get(Event::BatchOpRestart),
            s.get(Event::BatchPrefetchRound),
        );
        optiql_harness::stats::reset();
    }
}

fn main() {
    banner(
        "batched",
        "Batched multi_lookup/multi_insert vs scalar, uniform YCSB-C, group prefetch",
    );
    header(&[
        "figure",
        "index/variant/op",
        "batch",
        "Mops/s",
        "speedup restarts/op",
    ]);
    let keys = env::preload_keys();
    let shards = optiql_sharded::DEFAULT_SHARDS;

    let tree: optiql_btree::BTreeOptiQL = optiql_btree::BTreeOptiQL::new();
    lookup_sweep(&tree, "B+-tree/OptiQL/plain", keys);
    drop(tree);
    let tree: ShardedIndex<optiql_btree::BTreeOptiQL> = ShardedIndex::new(shards);
    lookup_sweep(&tree, &format!("B+-tree/OptiQL/sharded{shards}"), keys);
    drop(tree);

    let art: optiql_art::ArtOptiQL = optiql_art::ArtOptiQL::new();
    lookup_sweep(&art, "ART/OptiQL/plain", keys);
    drop(art);
    let art: ShardedIndex<optiql_art::ArtOptiQL> = ShardedIndex::new(shards);
    lookup_sweep(&art, &format!("ART/OptiQL/sharded{shards}"), keys);
    drop(art);

    // Bulk-load series: smaller key count (each point rebuilds the tree).
    let load_keys = keys.min(2_000_000);
    insert_sweep(
        || -> optiql_btree::BTreeOptiQL { optiql_btree::BTreeOptiQL::new() },
        "B+-tree/OptiQL/plain",
        load_keys,
    );
    insert_sweep(optiql_art::ArtOptiQL::new, "ART/OptiQL/plain", load_keys);
}
