//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. **Backoff vs queueing** (§1.1): exponential backoff eases collapse on
//!    centralized locks but sacrifices fairness; the queue gives both.
//!    Reported: throughput *and* max/min per-thread acquisition ratio.
//! 2. **Opportunistic read** (§5.3): OptiQL vs OptiQL-NOR reader success
//!    under a write-heavy mix.
//! 3. **Queue discipline** (§8 future work): MCS-based OptiQL vs CLH-based
//!    OptiCLH — same word layout, different handover mechanics.

use optiql::{
    ExclusiveLock, IndexLock, McsLock, OptLock, OptLockBackoff, OptiCLH, OptiQL, OptiQLNor,
    TicketLock, TicketLockSplit, TtsBackoff, TtsLock,
};
use optiql_bench::{banner, header, mops, r2, row_extra};
use optiql_harness::{env, run_exclusive, run_mixed, Contention, MicroConfig};

fn fairness_point<L: ExclusiveLock>(threads: usize) {
    let cfg = MicroConfig::new(threads, Contention::Extreme, env::duration());
    let r = run_exclusive::<L>(&cfg);
    row_extra(
        "ablation",
        "backoff-vs-queue",
        L::NAME,
        r2(mops(r.throughput())),
        format!("fairness={:.2}", r.fairness_ratio()),
    );
}

fn opread_point<L: IndexLock>(threads: usize, read_pct: u32) {
    let cfg = MicroConfig {
        threads,
        contention: Contention::High,
        read_pct,
        cs_len: 50,
        duration: env::duration(),
    };
    let r = run_mixed::<L>(&cfg);
    row_extra(
        "ablation",
        "opportunistic-read",
        format!("{}@{}r", L::NAME, read_pct),
        r2(mops(r.throughput())),
        format!("read_success={:.1}%", r.read_success_rate() * 100.0),
    );
}

fn main() {
    banner(
        "ablation",
        "Design-choice ablations (extreme/high contention)",
    );
    header(&["figure", "ablation", "config", "Mops/s", "extra"]);
    let threads = *env::thread_counts().last().unwrap();

    // 1. Backoff vs queueing, with fairness.
    fairness_point::<TtsLock>(threads);
    fairness_point::<TtsBackoff>(threads);
    fairness_point::<OptLock>(threads);
    fairness_point::<OptLockBackoff>(threads);
    fairness_point::<TicketLock>(threads);
    fairness_point::<TicketLockSplit>(threads);
    fairness_point::<McsLock>(threads);
    fairness_point::<OptiQL>(threads);
    fairness_point::<OptiCLH>(threads);

    // 2. Opportunistic read on/off across read ratios.
    for read_pct in [20, 50, 80] {
        opread_point::<OptiQLNor>(threads, read_pct);
        opread_point::<OptiQL>(threads, read_pct);
    }

    // 3. MCS-based vs CLH-based queue discipline.
    for contention in [Contention::Extreme, Contention::Medium] {
        for (name, tput) in [
            ("OptiQL", {
                let cfg = MicroConfig::new(threads, contention, env::duration());
                run_exclusive::<OptiQL>(&cfg).throughput()
            }),
            ("OptiCLH", {
                let cfg = MicroConfig::new(threads, contention, env::duration());
                run_exclusive::<OptiCLH>(&cfg).throughput()
            }),
        ] {
            row_extra(
                "ablation",
                "queue-discipline",
                format!("{}/{}", contention.label(), name),
                r2(mops(tput)),
                "",
            );
        }
    }
}
