//! Criterion micro-measurements of single-threaded lock operation costs:
//! the §5.4 discussion quantified — OptiQL's uncontended writer release
//! pays a CAS, opportunistic read adds two atomics per handover, and the
//! reader path costs exactly as much as a centralized optimistic lock.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use optiql::{
    ExclusiveLock, IndexLock, McsLock, McsRwLock, OptLock, OptiQL, OptiQLNor, PthreadRwLock,
    TicketLock, TtsLock,
};

fn exclusive_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_x_lock_cycle");
    macro_rules! case {
        ($ty:ty) => {
            g.bench_function(<$ty as ExclusiveLock>::NAME, |b| {
                let lock = <$ty>::default();
                b.iter(|| {
                    let t = lock.x_lock();
                    black_box(&lock);
                    lock.x_unlock(t);
                });
            });
        };
    }
    case!(TtsLock);
    case!(TicketLock);
    case!(McsLock);
    case!(OptLock);
    case!(OptiQLNor);
    case!(OptiQL);
    case!(McsRwLock);
    case!(PthreadRwLock);
    g.finish();
}

fn reader_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_reader_cycle");
    macro_rules! case {
        ($ty:ty) => {
            g.bench_function(<$ty as ExclusiveLock>::NAME, |b| {
                let lock = <$ty>::default();
                b.iter(|| {
                    let v = lock.r_lock().unwrap();
                    black_box(&lock);
                    black_box(lock.r_unlock(v));
                });
            });
        };
    }
    case!(OptLock);
    case!(OptiQLNor);
    case!(OptiQL);
    case!(McsRwLock);
    case!(PthreadRwLock);
    g.finish();
}

fn upgrade_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_upgrade_cycle");
    macro_rules! case {
        ($ty:ty) => {
            g.bench_function(<$ty as ExclusiveLock>::NAME, |b| {
                let lock = <$ty>::default();
                b.iter(|| {
                    let v = lock.r_lock().unwrap();
                    let t = lock.try_upgrade(v).unwrap();
                    lock.x_unlock(t);
                });
            });
        };
    }
    case!(OptLock);
    case!(OptiQLNor);
    case!(OptiQL);
    g.finish();
}

fn index_point_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_point_ops");
    let btree: optiql_btree::BTreeOptiQL = optiql_btree::BTreeOptiQL::new();
    let art: optiql_art::ArtOptiQL = optiql_art::ArtOptiQL::new();
    for k in 0..100_000u64 {
        btree.insert(k, k);
        art.insert(k, k);
    }
    let mut k = 0u64;
    g.bench_function("btree_optiql_lookup", |b| {
        b.iter(|| {
            k = (k + 7) % 100_000;
            black_box(btree.lookup(black_box(k)))
        })
    });
    g.bench_function("btree_optiql_update", |b| {
        b.iter(|| {
            k = (k + 7) % 100_000;
            black_box(btree.update(black_box(k), 1))
        })
    });
    g.bench_function("art_optiql_lookup", |b| {
        b.iter(|| {
            k = (k + 7) % 100_000;
            black_box(art.lookup(black_box(k)))
        })
    });
    g.bench_function("art_optiql_update", |b| {
        b.iter(|| {
            k = (k + 7) % 100_000;
            black_box(art.update(black_box(k), 1))
        })
    });
    g.finish();
}

/// Short measurement windows: single-threaded op costs are stable, and the
/// whole workspace bench suite should finish in minutes.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = exclusive_cycle, reader_cycle, upgrade_cycle, index_point_ops
}
criterion_main!(benches);
