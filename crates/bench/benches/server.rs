//! Extension: the thread-per-core pipelined KV server, end to end —
//! loopback TCP, real framing, closed-loop clients — in both dispatch
//! modes.
//!
//! The question this target answers: does batching survive the network?
//! `BENCH_batched.json` shows `multi_lookup` beating scalar lookups
//! ~4× at batch 8 on the raw index; here the same engines sit behind a
//! socket, a frame codec and a worker loop, and the comparison is
//! grouped dispatch (drain a connection's pipelined burst into
//! `multi_lookup`/`multi_insert` under one epoch pin) against per-op
//! scalar dispatch of the very same request stream. At pipeline depth 1
//! the two are identical by construction; the win must appear at
//! depth ≥ 8.
//!
//! Matrix: backend {btree, art, sharded-btree/8} × dispatch {grouped,
//! per-op} × connections {1,2} × depth {1,8,32}, uniform read-only load
//! over a dense preloaded keyspace. Rows land in `BENCH_server.json`
//! with the shared p50/p95/p99/p999 per-request tail-latency columns.

use std::collections::HashMap;

use optiql_bench::{banner, header, mops, r2, row_latency};
use optiql_harness::loadgen::{self, LoadgenConfig};
use optiql_harness::report::LatencySummary;
use optiql_harness::{env, KeyDist};
use optiql_server::server::{start, BackendKind, Dispatch, ServerConfig};

const DEPTHS: [usize; 3] = [1, 8, 32];
const CONNS: [usize; 2] = [1, 2];

fn dispatch_name(d: Dispatch) -> &'static str {
    match d {
        Dispatch::Grouped => "grouped",
        Dispatch::PerOp => "per-op",
    }
}

fn main() {
    banner(
        "server",
        "Pipelined KV server over loopback TCP, grouped vs per-op dispatch",
    );
    header(&[
        "figure",
        "backend/dispatch/depth",
        "conns",
        "Mops/s",
        "batched%",
        "p50_ns",
        "p95_ns",
        "p99_ns",
        "p999_ns",
    ]);

    let keys = env::preload_keys();
    let ops_per_conn: u64 = if env::full() { 200_000 } else { 40_000 };
    let backends = [
        ("btree", BackendKind::Btree),
        ("art", BackendKind::Art),
        ("sharded-btree/8", BackendKind::ShardedBtree { shards: 8 }),
    ];

    // (backend, dispatch, conns, depth) → ops/s, for the closing
    // grouped-vs-per-op summary.
    let mut measured: HashMap<(&str, &str, usize, usize), f64> = HashMap::new();

    for (bname, backend) in backends {
        for dispatch in [Dispatch::Grouped, Dispatch::PerOp] {
            let h = start(&ServerConfig {
                addr: "127.0.0.1:0".into(),
                backend,
                workers: 0, // thread-per-core: one worker per host core
                dispatch,
                preload: keys,
                max_group: 256,
                ..ServerConfig::default()
            })
            .expect("server start");
            let addr = h.addr().to_string();

            // Unmeasured warmup: fault in the touched pages and let the
            // TCP stacks settle before the first recorded point.
            let _ = loadgen::run(&LoadgenConfig {
                addr: addr.clone(),
                connections: 2,
                pipeline: 8,
                ops_per_conn: 5_000,
                read_pct: 100,
                keys,
                ..LoadgenConfig::default()
            });

            for conns in CONNS {
                for depth in DEPTHS {
                    let before = h.stats();
                    let r = loadgen::run(&LoadgenConfig {
                        addr: addr.clone(),
                        connections: conns,
                        pipeline: depth,
                        ops_per_conn,
                        read_pct: 100,
                        dist: KeyDist::Uniform,
                        keys,
                        seed: 0xBE7C_u64 + depth as u64,
                        ..LoadgenConfig::default()
                    })
                    .expect("loadgen run");
                    assert_eq!(r.errors, 0, "error responses during {bname} bench");
                    let after = h.stats();
                    let ops_delta = after.index_ops.saturating_sub(before.index_ops);
                    let batched_delta = after.batched_ops.saturating_sub(before.batched_ops);
                    let batched_pct = if ops_delta > 0 {
                        100.0 * batched_delta as f64 / ops_delta as f64
                    } else {
                        0.0
                    };
                    let dname = dispatch_name(dispatch);
                    measured.insert((bname, dname, conns, depth), r.throughput());
                    row_latency(
                        "server",
                        &format!("{bname}/{dname}/depth{depth}"),
                        conns,
                        r2(mops(r.throughput())),
                        r2(batched_pct),
                        LatencySummary::from_histogram(&r.hist).as_ref(),
                    );
                }
            }
            drop(h);
        }
    }

    // Headline: what grouping buys over per-op dispatch of the same
    // stream, per backend, at each depth ≥ 8 (depth 1 is the sanity
    // row: the two modes execute identically there).
    println!("# grouped/per-op speedup (same backend, same load):");
    for (bname, _) in backends {
        for conns in CONNS {
            for depth in DEPTHS {
                let g = measured.get(&(bname, "grouped", conns, depth));
                let p = measured.get(&(bname, "per-op", conns, depth));
                if let (Some(g), Some(p)) = (g, p) {
                    if *p > 0.0 {
                        println!("#   {bname} conns={conns} depth={depth}: {:.2}x", g / p);
                    }
                }
            }
        }
    }
}
