//! Batched, software-pipelined B+-tree operations (memory-level
//! parallelism).
//!
//! A single OLC descent is a pointer chase: each level's node must arrive
//! from memory before the next child pointer can even be computed, so the
//! core stalls on one cache miss at a time while the memory system idles.
//! `multi_lookup`/`multi_insert` break that serialization by processing a
//! batch of keys as a group of in-flight state machines, executed
//! round-robin: each turn advances one operation by exactly one tree level
//! and ends right after issuing a prefetch for the node it will touch
//! next. By the time the round-robin comes back to it (≈`GROUP - 1` other
//! descent steps later) the prefetch has landed, so a group keeps up to
//! `GROUP` misses outstanding instead of one.
//!
//! The state machines reuse the scalar OLC protocol unchanged — lock the
//! child, then validate the parent — so correctness is exactly the scalar
//! argument; only the schedule differs. Everything rare or structural
//! (root-leaf trees, full nodes needing splits, operations that keep
//! failing validation) falls back to the scalar path, which by then runs
//! against cache-warm nodes. Pessimistic lock configurations bypass
//! pipelining entirely: their "reads" hold real shared locks, which must
//! not be parked across turns.
//!
//! Per-op fixed costs are amortized across the batch: one reclamation-epoch
//! pin, and one `record_ops`/`record_restarts` pair on the shared stats.

use std::sync::atomic::Ordering;

use optiql::stats::{self, Event};
use optiql::{IndexLock, WriteStrategy};
use optiql_index_api::IndexKey;

use crate::node::{as_inner, as_leaf, is_leaf, prefetch_node_rest, NodeBase};
use crate::tree::BPlusTree;

/// Number of operations interleaved per pipeline group. Eight in-flight
/// misses is in the range today's cores can keep outstanding (10+ line
/// fill buffers); larger groups mostly add register/stack pressure.
pub(crate) const GROUP: usize = 8;

/// Pipelined restarts per op before giving up and completing it on the
/// scalar path (which has the full free→spin→backoff→yield ladder).
const PIPELINE_ATTEMPTS: u32 = 3;

/// One in-flight operation. `Enter` means: the parent was searched and
/// validated at version `pv`, `child` was chosen and prefetched; the next
/// turn locks `child` and advances one level.
///
/// The `Warm*` states exist only for pointer-slot keys (`!K::INLINE`):
/// after a node's cache lines arrive, its slot *words* are readable, but
/// the search still chases each compared slot's heap blob. Warming reads
/// the cheap words and prefetches the blobs of the node prefix and the
/// first binary probes, then yields a turn so those fetches overlap the
/// rest of the group instead of stalling the search.
#[derive(Clone, Copy)]
enum OpSt {
    Start,
    Enter {
        parent: *mut NodeBase,
        pv: u64,
        child: *mut NodeBase,
    },
    /// `node` is read-locked at `v`, its probe blobs are in flight; the
    /// next turn runs the search (lookup descent, or insert inner step).
    WarmRead {
        node: *mut NodeBase,
        v: u64,
    },
    /// Insert only: `child` is the chosen leaf (not yet locked, parent
    /// validation pending), its probe blobs are in flight; the next turn
    /// performs the leaf write protocol.
    WarmLeaf {
        parent: *mut NodeBase,
        pv: u64,
        child: *mut NodeBase,
    },
    Done(Option<u64>),
}

/// Outcome of one turn of an in-flight op.
enum Turn {
    Next(OpSt),
    Restart,
}

impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey>
    BPlusTree<IL, LL, IC, LC, K>
{
    /// Batched point lookups; `result[i] == lookup(keys[i])`, order
    /// preserved. Pipelines `GROUP` descents with interleaved prefetch.
    pub fn multi_lookup(&self, keys: &[K]) -> Vec<Option<u64>> {
        stats::record(Event::BatchIssued);
        if IL::PESSIMISTIC || LL::PESSIMISTIC || keys.len() < 2 {
            return keys.iter().map(|k| self.lookup(k.clone())).collect();
        }
        let _g = self.collector.pin();
        let mut out = Vec::with_capacity(keys.len());
        let mut restarts = 0u64;
        for group in keys.chunks(GROUP) {
            let mut st = [OpSt::Start; GROUP];
            let mut attempts = [0u32; GROUP];
            let mut pending = group.len();
            while pending > 0 {
                stats::record(Event::BatchPrefetchRound);
                for (i, key) in group.iter().enumerate() {
                    if let OpSt::Done(_) = st[i] {
                        continue;
                    }
                    let turn = match st[i] {
                        OpSt::Start => {
                            if attempts[i] >= PIPELINE_ATTEMPTS {
                                Turn::Next(OpSt::Done(self.lookup_impl(key)))
                            } else {
                                self.lk_start(key)
                            }
                        }
                        OpSt::Enter { parent, pv, child } => self.lk_enter(key, parent, pv, child),
                        OpSt::WarmRead { node, v } => self.lk_advance(key, node, v),
                        OpSt::WarmLeaf { .. } => unreachable!("lookups never warm a leaf write"),
                        OpSt::Done(_) => unreachable!(),
                    };
                    match turn {
                        Turn::Next(next) => {
                            if let OpSt::Done(_) = next {
                                pending -= 1;
                            }
                            st[i] = next;
                        }
                        Turn::Restart => {
                            st[i] = OpSt::Start;
                            attempts[i] += 1;
                            restarts += 1;
                            stats::record(Event::BatchOpRestart);
                        }
                    }
                }
            }
            for s in st.iter().take(group.len()) {
                match s {
                    OpSt::Done(r) => out.push(*r),
                    _ => unreachable!("pipeline drained with op not Done"),
                }
            }
        }
        self.index_stats.record_ops(keys.len() as u64);
        self.index_stats.record_restarts(restarts);
        out
    }

    /// Batched inserts, equivalent to applying `pairs` in order (a
    /// duplicate key later in the batch observes the earlier write).
    pub fn multi_insert(&self, pairs: &[(K, u64)]) -> Vec<Option<u64>> {
        stats::record(Event::BatchIssued);
        if IL::PESSIMISTIC || LL::PESSIMISTIC || pairs.len() < 2 {
            return pairs
                .iter()
                .map(|(k, v)| self.insert(k.clone(), *v))
                .collect();
        }
        let _g = self.collector.pin();
        let mut out = Vec::with_capacity(pairs.len());
        let mut restarts = 0u64;
        for group in pairs.chunks(GROUP) {
            let mut st = [OpSt::Start; GROUP];
            let mut attempts = [0u32; GROUP];
            // Ops whose key already occurs earlier in this group must not
            // race it through the pipeline: they run scalar, in order,
            // after the group drains, preserving in-order semantics.
            // (Groups are sequential, so only intra-group dups matter.)
            let mut deferred = [false; GROUP];
            let mut pending = 0usize;
            for (j, (k, _)) in group.iter().enumerate() {
                deferred[j] = group[..j].iter().any(|(e, _)| e == k);
                pending += usize::from(!deferred[j]);
            }
            while pending > 0 {
                stats::record(Event::BatchPrefetchRound);
                for (i, (key, val)) in group.iter().enumerate() {
                    let val = *val;
                    if deferred[i] {
                        continue;
                    }
                    if let OpSt::Done(_) = st[i] {
                        continue;
                    }
                    let turn = match st[i] {
                        OpSt::Start => {
                            if attempts[i] >= PIPELINE_ATTEMPTS {
                                Turn::Next(OpSt::Done(self.insert_optimistic(key, val)))
                            } else {
                                self.in_start(key, val)
                            }
                        }
                        OpSt::Enter { parent, pv, child } => {
                            self.in_enter(key, val, parent, pv, child)
                        }
                        OpSt::WarmRead { node, v } => self.in_step(key, val, node, v),
                        OpSt::WarmLeaf { parent, pv, child } => {
                            self.in_leaf(key, val, unsafe { as_inner(parent) }, pv, child)
                        }
                        OpSt::Done(_) => unreachable!(),
                    };
                    match turn {
                        Turn::Next(next) => {
                            if let OpSt::Done(_) = next {
                                pending -= 1;
                            }
                            st[i] = next;
                        }
                        Turn::Restart => {
                            st[i] = OpSt::Start;
                            attempts[i] += 1;
                            restarts += 1;
                            stats::record(Event::BatchOpRestart);
                        }
                    }
                }
            }
            for (j, (k, v)) in group.iter().enumerate() {
                if deferred[j] {
                    st[j] = OpSt::Done(self.insert_optimistic(k, *v));
                }
            }
            for s in st.iter().take(group.len()) {
                match s {
                    OpSt::Done(r) => out.push(*r),
                    _ => unreachable!("pipeline drained with op not Done"),
                }
            }
        }
        let added = out.iter().filter(|r| r.is_none()).count();
        if added > 0 {
            self.size.fetch_add(added, Ordering::Relaxed);
        }
        self.index_stats.record_ops(pairs.len() as u64);
        self.index_stats.record_restarts(restarts);
        out
    }

    // --- lookup turns -----------------------------------------------------

    /// First turn: read-lock the root (always cache-hot, so the root's
    /// search runs in the same turn) and advance one level.
    #[inline]
    fn lk_start(&self, key: &K) -> Turn {
        let node = self.root.load(Ordering::Acquire);
        let Some(v) = (unsafe { self.node_r_lock(node) }) else {
            return Turn::Restart;
        };
        if self.root.load(Ordering::Acquire) != node {
            unsafe { self.node_abandon(node, v) };
            return Turn::Restart;
        }
        self.lk_advance(key, node, v)
    }

    /// Later turns: lock the prefetched child, validate the parent behind
    /// it (the OLC coupling step), and advance one more level.
    #[inline]
    fn lk_enter(&self, key: &K, parent: *mut NodeBase, pv: u64, child: *mut NodeBase) -> Turn {
        let Some(cv) = (unsafe { self.node_r_lock(child) }) else {
            unsafe { self.node_abandon(parent, pv) };
            return Turn::Restart;
        };
        if !unsafe { self.node_r_unlock(parent, pv) } {
            unsafe { self.node_abandon(child, cv) };
            return Turn::Restart;
        }
        if !K::INLINE {
            self.warm_node(child);
            return Turn::Next(OpSt::WarmRead { node: child, v: cv });
        }
        self.lk_advance(key, child, cv)
    }

    /// Issue the probe-blob prefetches for `node` (either kind).
    #[inline]
    fn warm_node(&self, node: *mut NodeBase) {
        unsafe {
            if is_leaf(node) {
                as_leaf::<LL, LC, K>(node).prefetch_probe_slots();
            } else {
                as_inner::<IL, IC, K>(node).prefetch_probe_slots();
            }
        }
    }

    /// One descent step at `(node, v)`: answer from a leaf, or choose and
    /// prefetch the next child. Mirrors one iteration of the scalar
    /// `lookup` loop.
    #[inline]
    fn lk_advance(&self, key: &K, node: *mut NodeBase, v: u64) -> Turn {
        if unsafe { is_leaf(node) } {
            let leaf = unsafe { as_leaf::<LL, LC, K>(node) };
            let res = leaf.lookup(key);
            if !leaf.lock.r_unlock(v) {
                return Turn::Restart;
            }
            return Turn::Next(OpSt::Done(res));
        }
        let inner = unsafe { as_inner::<IL, IC, K>(node) };
        // `find_child` prefetches the chosen child's first two lines; the
        // batched path can afford the rest of the node too.
        let child = inner.find_child(key);
        if child.is_null() {
            unsafe { self.node_abandon(node, v) };
            return Turn::Restart;
        }
        if !inner.lock.recheck(v) {
            return Turn::Restart;
        }
        prefetch_node_rest(child);
        Turn::Next(OpSt::Enter {
            parent: node,
            pv: v,
            child,
        })
    }

    // --- insert turns -----------------------------------------------------

    /// First insert turn. Root-leaf trees and full roots are rare and
    /// structural — complete those ops via the scalar path immediately.
    #[inline]
    fn in_start(&self, key: &K, val: u64) -> Turn {
        let node = self.root.load(Ordering::Acquire);
        let Some(v) = (unsafe { self.node_r_lock(node) }) else {
            return Turn::Restart;
        };
        if self.root.load(Ordering::Acquire) != node {
            unsafe { self.node_abandon(node, v) };
            return Turn::Restart;
        }
        if unsafe { is_leaf(node) } {
            // Tiny tree; nothing is held (optimistic read), hand over.
            return Turn::Next(OpSt::Done(self.insert_optimistic(key, val)));
        }
        self.in_step(key, val, node, v)
    }

    /// Search-and-choose step at inner `(node, v)`: full nodes bail to the
    /// scalar path (which performs the eager split), otherwise pick the
    /// child, validate, prefetch, yield.
    #[inline]
    fn in_step(&self, key: &K, val: u64, node: *mut NodeBase, v: u64) -> Turn {
        let inner = unsafe { as_inner::<IL, IC, K>(node) };
        if inner.is_full() {
            return Turn::Next(OpSt::Done(self.insert_optimistic(key, val)));
        }
        let child = inner.find_child(key);
        if child.is_null() {
            return Turn::Restart;
        }
        if !inner.lock.recheck(v) {
            return Turn::Restart;
        }
        prefetch_node_rest(child);
        Turn::Next(OpSt::Enter {
            parent: node,
            pv: v,
            child,
        })
    }

    /// Later insert turns: write the prefetched leaf, or couple one level
    /// deeper through a prefetched inner node.
    #[inline]
    fn in_enter(
        &self,
        key: &K,
        val: u64,
        parent: *mut NodeBase,
        pv: u64,
        child: *mut NodeBase,
    ) -> Turn {
        let inner = unsafe { as_inner::<IL, IC, K>(parent) };
        if unsafe { is_leaf(child) } {
            if !K::INLINE {
                self.warm_node(child);
                return Turn::Next(OpSt::WarmLeaf { parent, pv, child });
            }
            return self.in_leaf(key, val, inner, pv, child);
        }
        let ci = unsafe { as_inner::<IL, IC, K>(child) };
        let Some(cv) = ci.lock.r_lock() else {
            return Turn::Restart;
        };
        if ci.is_full() {
            // Needs an eager split against `parent`; scalar handles it
            // (nothing is held — optimistic reads only).
            return Turn::Next(OpSt::Done(self.insert_optimistic(key, val)));
        }
        // Release the grandparent-equivalent: validate the parent now that
        // the child is pinned by its own version.
        if !inner.lock.r_unlock(pv) {
            return Turn::Restart;
        }
        if !K::INLINE {
            self.warm_node(child);
            return Turn::Next(OpSt::WarmRead { node: child, v: cv });
        }
        self.in_step(key, val, child, cv)
    }

    /// Leaf write, mirroring the scalar strategy dispatch for the common
    /// non-full case; full leaves (need a split) go scalar.
    #[inline]
    fn in_leaf(
        &self,
        key: &K,
        val: u64,
        inner: &crate::node::Inner<IL, IC, K>,
        pv: u64,
        child: *mut NodeBase,
    ) -> Turn {
        let leaf = unsafe { as_leaf::<LL, LC, K>(child) };
        // Nested pin (the batch entry point holds the outer one): cheap,
        // and gives the slot writes below their epoch guard.
        let g = self.collector.pin();
        match LL::STRATEGY {
            WriteStrategy::Upgrade => {
                let Some(lv) = leaf.lock.r_lock() else {
                    return Turn::Restart;
                };
                if leaf.is_full() {
                    return Turn::Next(OpSt::Done(self.insert_optimistic(key, val)));
                }
                if !inner.lock.r_unlock(pv) {
                    return Turn::Restart;
                }
                let Some(lt) = leaf.lock.try_upgrade(lv) else {
                    return Turn::Restart;
                };
                let old = leaf.insert(key, val, &g);
                leaf.lock.x_unlock(lt);
                Turn::Next(OpSt::Done(old))
            }
            WriteStrategy::DirectLock | WriteStrategy::DirectLockAor => {
                let lt = leaf.lock.x_lock_adjustable();
                if !inner.lock.recheck(pv) {
                    leaf.lock.x_unlock(lt);
                    return Turn::Restart;
                }
                if leaf.is_full() {
                    leaf.lock.x_unlock(lt);
                    return Turn::Next(OpSt::Done(self.insert_optimistic(key, val)));
                }
                leaf.lock.x_finish_adjustable(lt);
                let old = leaf.insert(key, val, &g);
                leaf.lock.x_unlock(lt);
                Turn::Next(OpSt::Done(old))
            }
            WriteStrategy::Pessimistic => unreachable!("pessimistic configs bypass the pipeline"),
        }
    }
}
