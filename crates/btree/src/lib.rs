//! # optiql-btree — memory-optimized B+-tree with optimistic lock coupling
//!
//! The B+-tree the paper adapts in §6.1: small cache-friendly nodes, a lock
//! embedded in every node header, optimistic lock coupling for traversals,
//! and a write path chosen by the leaf lock's [`optiql::WriteStrategy`]:
//!
//! | Configuration | Inner lock | Leaf lock | Write path |
//! |---|---|---|---|
//! | [`BTreeOptLock`] | OptLock | OptLock | classic OLC upgrade |
//! | [`BTreeOptiQL`] | OptLock | OptiQL | Algorithm 4 (direct leaf lock) |
//! | [`BTreeOptiQLNor`] | OptLock | OptiQL-NOR | Algorithm 4 |
//! | [`BTreeOptiQLAor`] | OptLock | OptiQL-AOR | Algorithm 4 + AOR |
//! | [`BTreeMcsRw`] | MCS-RW | MCS-RW | pessimistic lock coupling |
//! | [`BTreePthread`] | pthread | pthread | pessimistic lock coupling |
//!
//! ```
//! use optiql_btree::BTreeOptiQL;
//!
//! let tree: BTreeOptiQL = BTreeOptiQL::new();
//! tree.insert(42, 4200);
//! assert_eq!(tree.lookup(42), Some(4200));
//! tree.update(42, 4300);
//! assert_eq!(tree.remove(42), Some(4300));
//! assert!(tree.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod multi;
pub mod node;
pub mod tree;

pub use tree::{BPlusTree, TreeStats};

use optiql::{McsRwLock, OptLock, OptiCLH, OptiQL, OptiQLAor, OptiQLNor, PthreadRwLock};

optiql_index_api::impl_concurrent_index! {
    impl [K: optiql_index_api::IndexKey, IL: optiql::IndexLock, LL: optiql::IndexLock,
          const IC: usize, const LC: usize]
        ConcurrentIndex<K> for BPlusTree<IL, LL, IC, LC, K>
}

/// Capacity presets derived from target node sizes (paper §7.4 sweeps
/// 256 B – 16 KB). An entry is 16 bytes (8-byte key + 8-byte value /
/// child pointer); roughly 16 bytes go to the header.
pub mod node_size {
    /// Inner-node child capacity for a byte-sized node.
    pub const fn inner_cap(bytes: usize) -> usize {
        (bytes - 16) / 16 + 1
    }
    /// Leaf entry capacity for a byte-sized node.
    pub const fn leaf_cap(bytes: usize) -> usize {
        (bytes - 16) / 16
    }

    /// 256-byte nodes (default; fanout ≈ 15, the paper's "fanout of 14").
    pub const S256: (usize, usize) = (inner_cap(256), leaf_cap(256));
    /// 512-byte nodes.
    pub const S512: (usize, usize) = (inner_cap(512), leaf_cap(512));
    /// 1 KiB nodes.
    pub const S1K: (usize, usize) = (inner_cap(1024), leaf_cap(1024));
    /// 2 KiB nodes.
    pub const S2K: (usize, usize) = (inner_cap(2048), leaf_cap(2048));
    /// 4 KiB nodes.
    pub const S4K: (usize, usize) = (inner_cap(4096), leaf_cap(4096));
    /// 8 KiB nodes.
    pub const S8K: (usize, usize) = (inner_cap(8192), leaf_cap(8192));
    /// 16 KiB nodes.
    pub const S16K: (usize, usize) = (inner_cap(16384), leaf_cap(16384));
}

/// Default inner capacity (256-byte nodes).
pub const DEFAULT_IC: usize = node_size::S256.0;
/// Default leaf capacity (256-byte nodes).
pub const DEFAULT_LC: usize = node_size::S256.1;

/// B+-tree with centralized optimistic locks everywhere (the paper's
/// "OptLock" baseline).
pub type BTreeOptLock<const IC: usize = DEFAULT_IC, const LC: usize = DEFAULT_LC> =
    BPlusTree<OptLock, OptLock, IC, LC>;

/// B+-tree with OptiQL leaves and OptLock inner nodes (paper §6.1).
pub type BTreeOptiQL<const IC: usize = DEFAULT_IC, const LC: usize = DEFAULT_LC> =
    BPlusTree<OptLock, OptiQL, IC, LC>;

/// As [`BTreeOptiQL`] but without opportunistic read ("OptiQL-NOR").
pub type BTreeOptiQLNor<const IC: usize = DEFAULT_IC, const LC: usize = DEFAULT_LC> =
    BPlusTree<OptLock, OptiQLNor, IC, LC>;

/// As [`BTreeOptiQL`] with adjustable opportunistic read ("OptiQL-AOR").
pub type BTreeOptiQLAor<const IC: usize = DEFAULT_IC, const LC: usize = DEFAULT_LC> =
    BPlusTree<OptLock, OptiQLAor, IC, LC>;

/// B+-tree with OptiCLH leaves (extension: the paper's future-work CLH
/// variant adapted with optimistic + opportunistic reads).
pub type BTreeOptiClh<const IC: usize = DEFAULT_IC, const LC: usize = DEFAULT_LC> =
    BPlusTree<OptLock, OptiCLH, IC, LC>;

/// B+-tree with the fair queue-based reader-writer MCS lock (pessimistic).
pub type BTreeMcsRw<const IC: usize = DEFAULT_IC, const LC: usize = DEFAULT_LC> =
    BPlusTree<McsRwLock, McsRwLock, IC, LC>;

/// B+-tree with a pthread-style pessimistic reader-writer lock.
pub type BTreePthread<const IC: usize = DEFAULT_IC, const LC: usize = DEFAULT_LC> =
    BPlusTree<PthreadRwLock, PthreadRwLock, IC, LC>;
