//! B+-tree node layout.
//!
//! Memory-optimized B+-trees use small nodes (256 bytes by default, paper
//! §6.1/§7.1) with the lock embedded in the node header. Because optimistic
//! readers scan node contents *concurrently with writers*, every mutable
//! cell is an atomic: that is free of UB, and any torn/inconsistent
//! combination a reader may assemble is discarded by lock-version
//! validation.
//!
//! # Key slots
//!
//! Nodes are generic over the key type `K:`[`IndexKey`] but still store
//! keys in fixed `[AtomicU64]` arrays of **slot words** — the key itself
//! for `u64` (inline), an owned pointer to the heap key otherwise. The
//! branchless search kernel streams slot words exactly as it streamed raw
//! keys; only the compare goes through `K`. Memory orderings come from the
//! key type: `Relaxed` for inline keys (compiling to the pre-generic code
//! bit for bit), `Acquire`/`Release` for pointer slots so a reader that
//! observes a published slot also observes the pointee's bytes. The same
//! orderings cover `count` and the child pointers, because for pointer
//! keys they are publication edges too (a reader must not chase a fresh
//! `count` into a slot whose store it cannot see yet).
//!
//! Slot **ownership** is manual and explicit: methods that drop or
//! duplicate an entry return the affected slot word so the tree can
//! retire it through epoch reclamation (`u64` makes all of it a no-op).
//! Stale slot words beyond `count` — left behind by removes and splits —
//! are never nulled and never freed: they alias keys owned elsewhere or
//! keys already retired, both of which stay dereferenceable for as long
//! as any reader that could observe them is pinned.
//!
//! Layout conventions:
//!
//! * A leaf holds up to `LC` sorted `(key, value)` pairs.
//! * An inner node holds `count` sorted separator keys and `count + 1`
//!   children; capacity is `IC - 1` keys / `IC` children. `children[i]`
//!   covers keys `< keys[i]`; `children[count]` covers the rest. Separator
//!   `keys[i]` is the smallest key reachable through `children[i + 1]`.
//! * `NodeBase::leaf` is immutable after construction, so a traversal may
//!   read it through a not-yet-validated pointer (the pointee is kept
//!   alive by epoch reclamation).

use std::cmp::Ordering as Cmp;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU16, AtomicU64, Ordering};

use optiql::IndexLock;
use optiql_index_api::IndexKey;

/// Relaxed ordering shorthand for the cells that never carry publication
/// duties (values, and everything when `K` is inline).
const R: Ordering = Ordering::Relaxed;

/// Largest count searched by the unrolled linear scan; larger nodes fall
/// through to the branchless binary search.
const LINEAR_MAX: usize = 16;

/// Number of `keys[..n]` satisfying `pred` — the shared kernel of
/// [`Inner::child_index`] (`pred = key_i <= needle`) and
/// [`Leaf::lower_bound`] (`pred = key_i < needle`). Requires `keys[..n]`
/// sorted and `pred` monotone (true-prefix), which both callers guarantee;
/// on a torn concurrent snapshot the result is still in `0..=n` and the
/// caller's version validation discards it.
///
/// Search is branch-free in the *data*: a fixed-stride unrolled scan that
/// accumulates compare results for small counts (no mispredicts, the loads
/// pipeline), and a "monobound" binary search (`base += pred * half`, a
/// conditional-move idiom) for larger ones. `ld` is the slot-load ordering
/// of the key type (constant after monomorphization).
#[inline(always)]
fn sorted_prefix_len(
    keys: &[AtomicU64],
    n: usize,
    ld: Ordering,
    pred: impl Fn(u64) -> bool,
) -> usize {
    debug_assert!(n <= keys.len());
    let mut base = 0usize;
    let mut len = n;
    // Monobound narrowing: branchless halving until the window is small.
    // Each step is one load feeding a conditional-move — a short serial
    // chain instead of a run of unpredictable branches.
    while len > LINEAR_MAX {
        let half = len / 2;
        base += pred(keys[base + half - 1].load(ld)) as usize * half;
        len -= half;
    }
    // Unrolled branchless scan of the final window: the loads are
    // independent, so they pipeline instead of serializing.
    let mut idx = base;
    let end = base + len;
    let mut i = base;
    while i + 4 <= end {
        idx += pred(keys[i].load(ld)) as usize;
        idx += pred(keys[i + 1].load(ld)) as usize;
        idx += pred(keys[i + 2].load(ld)) as usize;
        idx += pred(keys[i + 3].load(ld)) as usize;
        i += 4;
    }
    while i < end {
        idx += pred(keys[i].load(ld)) as usize;
        i += 1;
    }
    idx
}

/// Hint the CPU to pull the first two lines of a node into cache. Issued on
/// the traversal path between choosing a child and validating the parent's
/// version, so the fetch overlaps the validation instead of stalling the
/// descent.
#[inline(always)]
pub(crate) fn prefetch_node(p: *const NodeBase) {
    #[cfg(target_arch = "x86_64")]
    // Safety: prefetch is a pure hint and is architecturally defined to
    // never fault, whatever the address points at.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
        _mm_prefetch::<_MM_HINT_T0>((p as *const i8).wrapping_add(64));
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Prefetch the *tail* of a node (lines 2 and 3 of a 256-byte node). The
/// batched engine has a whole pipeline round between choosing a child and
/// touching it, so it can afford to pull the entire node — key array tails
/// and the value/child array — not just the header two lines that
/// [`prefetch_node`] fetches on the latency-sensitive scalar path.
#[inline(always)]
pub(crate) fn prefetch_node_rest(p: *const NodeBase) {
    #[cfg(target_arch = "x86_64")]
    // Safety: as above — prefetch never faults.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>((p as *const i8).wrapping_add(128));
        _mm_prefetch::<_MM_HINT_T0>((p as *const i8).wrapping_add(192));
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Common first-field header of every node; enables leaf/inner dispatch
/// through a type-erased pointer (`repr(C)` prefix cast).
#[repr(C)]
pub struct NodeBase {
    /// True iff this node is a leaf. Immutable after construction.
    pub leaf: bool,
}

/// Inner node: `lock` is the *inner* lock type `IL` (the paper keeps
/// centralized optimistic locks on inner nodes even in the OptiQL
/// configuration, §6.1).
#[repr(C)]
pub struct Inner<IL: IndexLock, const IC: usize, K: IndexKey = u64> {
    /// Common header (leaf tag).
    pub base: NodeBase,
    /// Inner-node lock.
    pub lock: IL,
    count: AtomicU16,
    keys: [AtomicU64; IC],
    children: [AtomicPtr<NodeBase>; IC],
    _key: PhantomData<K>,
}

/// Leaf node: `lock` is the *leaf* lock type `LL`.
#[repr(C)]
pub struct Leaf<LL: IndexLock, const LC: usize, K: IndexKey = u64> {
    /// Common header (leaf tag).
    pub base: NodeBase,
    /// Leaf lock (where index contention concentrates).
    pub lock: LL,
    count: AtomicU16,
    keys: [AtomicU64; LC],
    vals: [AtomicU64; LC],
    _key: PhantomData<K>,
}

// --- casting helpers ------------------------------------------------------

/// Read the immutable leaf tag of a (possibly not yet validated) node.
///
/// # Safety
/// `p` must point to a live or epoch-retired node of this tree.
#[inline]
pub unsafe fn is_leaf(p: *const NodeBase) -> bool {
    unsafe { (*p).leaf }
}

/// Cast to an inner node reference.
///
/// # Safety
/// `p` must point to a live or epoch-retired `Inner<IL, IC, K>`.
#[inline]
pub unsafe fn as_inner<'a, IL: IndexLock, const IC: usize, K: IndexKey>(
    p: *mut NodeBase,
) -> &'a Inner<IL, IC, K> {
    debug_assert!(!unsafe { is_leaf(p) });
    unsafe { &*(p as *const Inner<IL, IC, K>) }
}

/// Cast to a leaf node reference.
///
/// # Safety
/// `p` must point to a live or epoch-retired `Leaf<LL, LC, K>`.
#[inline]
pub unsafe fn as_leaf<'a, LL: IndexLock, const LC: usize, K: IndexKey>(
    p: *mut NodeBase,
) -> &'a Leaf<LL, LC, K> {
    debug_assert!(unsafe { is_leaf(p) });
    unsafe { &*(p as *const Leaf<LL, LC, K>) }
}

// --- inner node -----------------------------------------------------------

impl<IL: IndexLock, const IC: usize, K: IndexKey> Inner<IL, IC, K> {
    /// Maximum number of separator keys.
    pub const MAX_KEYS: usize = IC - 1;

    /// Allocate an empty inner node and leak it to a raw pointer.
    pub fn alloc() -> *mut NodeBase {
        let node = Box::new(Inner::<IL, IC, K> {
            base: NodeBase { leaf: false },
            lock: IL::default(),
            count: AtomicU16::new(0),
            keys: [const { AtomicU64::new(0) }; IC],
            children: [const { AtomicPtr::new(std::ptr::null_mut()) }; IC],
            _key: PhantomData,
        });
        Box::into_raw(node) as *mut NodeBase
    }

    /// Number of separator keys, clamped to capacity (a concurrent reader
    /// may observe a transient value; clamping keeps indexing in bounds and
    /// validation rejects the result). For pointer keys the `Acquire` load
    /// also guarantees the slots below the observed count are published.
    #[inline]
    pub fn count(&self) -> usize {
        (self.count.load(K::SLOT_LOAD) as usize).min(Self::MAX_KEYS)
    }

    /// True iff no separator key fits anymore (eager-split trigger).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count.load(K::SLOT_LOAD) as usize >= Self::MAX_KEYS
    }

    /// Separator key slot at `i` (borrowed; ownership stays with the node).
    #[inline]
    pub fn key_slot(&self, i: usize) -> u64 {
        self.keys[i].load(K::SLOT_LOAD)
    }

    /// Child pointer at `i`.
    #[inline]
    pub fn child(&self, i: usize) -> *mut NodeBase {
        self.children[i].load(K::SLOT_LOAD)
    }

    /// Index of the child covering `key`: first `i` with `key < keys[i]`,
    /// else `count`.
    #[inline]
    pub fn child_index(&self, key: &K) -> usize {
        sorted_prefix_len(&self.keys, self.count(), K::SLOT_LOAD, |s| {
            // Safety: slots below an observed count are published keys of
            // this node (or epoch-protected stale aliases); see module doc.
            unsafe { key.cmp_slot(s) != Cmp::Less }
        })
    }

    /// As [`child_index`](Self::child_index), for a needle that is itself
    /// a slot word.
    #[inline]
    fn child_index_slot(&self, sep: u64) -> usize {
        sorted_prefix_len(&self.keys, self.count(), K::SLOT_LOAD, |s| {
            // Safety: both are live slot words (see module doc).
            unsafe { K::slot_cmp_slot(s, sep) != Cmp::Greater }
        })
    }

    /// Child pointer covering `key` together with the separator slot
    /// bounding its key range from above (`None` when it is the rightmost
    /// child). The slot is borrowed: dereference only while pinned.
    #[inline]
    pub fn find_child(&self, key: &K) -> (*mut NodeBase, Option<u64>) {
        self.find_child_at(self.child_index(key))
    }

    /// Leftmost child (`from = None`) or the child covering `from` — the
    /// scan descent, which may have no lower bound.
    #[inline]
    pub fn find_child_from(&self, from: Option<&K>) -> (*mut NodeBase, Option<u64>) {
        let idx = match from {
            Some(k) => self.child_index(k),
            None => 0,
        };
        self.find_child_at(idx)
    }

    #[inline]
    fn find_child_at(&self, idx: usize) -> (*mut NodeBase, Option<u64>) {
        let n = self.count();
        let upper = if idx < n {
            Some(self.keys[idx].load(K::SLOT_LOAD))
        } else {
            None
        };
        let child = self.children[idx].load(K::SLOT_LOAD);
        // Warm the child while the caller validates this node's version.
        prefetch_node(child);
        (child, upper)
    }

    /// Insert a separator + right child (holder of the exclusive lock
    /// only); takes **ownership** of the `sep` slot. The caller guarantees
    /// the node is not full.
    pub fn insert_child(&self, sep: u64, right: *mut NodeBase) {
        let n = self.count.load(R) as usize;
        debug_assert!(n < Self::MAX_KEYS);
        let pos = self.child_index_slot(sep);
        let mut i = n;
        while i > pos {
            self.keys[i].store(self.keys[i - 1].load(K::SLOT_LOAD), K::SLOT_STORE);
            self.children[i + 1].store(self.children[i].load(K::SLOT_LOAD), K::SLOT_STORE);
            i -= 1;
        }
        self.keys[pos].store(sep, K::SLOT_STORE);
        self.children[pos + 1].store(right, K::SLOT_STORE);
        self.count.store((n + 1) as u16, K::SLOT_STORE);
    }

    /// Set the two initial children of a fresh root (exclusive access);
    /// takes ownership of the `sep` slot.
    pub fn init_root(&self, sep: u64, left: *mut NodeBase, right: *mut NodeBase) {
        self.keys[0].store(sep, K::SLOT_STORE);
        self.children[0].store(left, K::SLOT_STORE);
        self.children[1].store(right, K::SLOT_STORE);
        self.count.store(1, K::SLOT_STORE);
    }

    /// Split in half (holder of the exclusive lock only). Returns
    /// `(separator-to-push-up, new-right-node)`; ownership of the
    /// separator slot **moves to the caller** (its word beyond the new
    /// count is a stale alias).
    pub fn split(&self) -> (u64, *mut NodeBase) {
        let n = self.count.load(R) as usize;
        debug_assert!(n >= 3, "splitting a near-empty inner node");
        let mid = n / 2;
        let sep = self.keys[mid].load(K::SLOT_LOAD);
        let right_ptr = Self::alloc();
        let right = unsafe { as_inner::<IL, IC, K>(right_ptr) };
        let right_keys = n - mid - 1;
        for i in 0..right_keys {
            right.keys[i].store(self.keys[mid + 1 + i].load(K::SLOT_LOAD), K::SLOT_STORE);
            right.children[i].store(self.children[mid + 1 + i].load(K::SLOT_LOAD), K::SLOT_STORE);
        }
        right.children[right_keys].store(self.children[n].load(K::SLOT_LOAD), K::SLOT_STORE);
        right.count.store(right_keys as u16, K::SLOT_STORE);
        self.count.store(mid as u16, K::SLOT_STORE);
        (sep, right_ptr)
    }

    /// Remove the child at `idx` and its adjacent separator (exclusive
    /// access; `count` must be ≥ 1). Returns the dropped separator slot —
    /// ownership moves to the caller, which must retire it.
    pub fn remove_child(&self, idx: usize) -> u64 {
        let n = self.count.load(R) as usize;
        debug_assert!(n >= 1 && idx <= n);
        // Removing children[idx]: drop separator keys[idx - 1] (or keys[0]
        // when idx == 0) and close the gaps.
        let key_gone = idx.saturating_sub(1);
        let dropped = self.keys[key_gone].load(K::SLOT_LOAD);
        for i in key_gone..n - 1 {
            self.keys[i].store(self.keys[i + 1].load(K::SLOT_LOAD), K::SLOT_STORE);
        }
        for i in idx..n {
            self.children[i].store(self.children[i + 1].load(K::SLOT_LOAD), K::SLOT_STORE);
        }
        self.count.store((n - 1) as u16, K::SLOT_STORE);
        dropped
    }

    /// Position of a child pointer, if present (exclusive access).
    pub fn position_of(&self, child: *mut NodeBase) -> Option<usize> {
        let n = self.count.load(R) as usize;
        (0..=n).find(|&i| self.children[i].load(K::SLOT_LOAD) == child)
    }

    /// Free the separator slots this node owns (`[0, count)`): tree drop
    /// only, when no concurrent access exists.
    ///
    /// # Safety
    /// Caller must have exclusive ownership of the whole tree.
    pub unsafe fn free_key_slots(&self) {
        for i in 0..self.count() {
            unsafe { K::slot_free(self.keys[i].load(R)) };
        }
    }
}

// --- leaf node -------------------------------------------------------------

impl<LL: IndexLock, const LC: usize, K: IndexKey> Leaf<LL, LC, K> {
    /// Maximum number of entries.
    pub const MAX_ENTRIES: usize = LC;

    /// Allocate an empty leaf and leak it to a raw pointer.
    pub fn alloc() -> *mut NodeBase {
        let node = Box::new(Leaf::<LL, LC, K> {
            base: NodeBase { leaf: true },
            lock: LL::default(),
            count: AtomicU16::new(0),
            keys: [const { AtomicU64::new(0) }; LC],
            vals: [const { AtomicU64::new(0) }; LC],
            _key: PhantomData,
        });
        Box::into_raw(node) as *mut NodeBase
    }

    /// Entry count, clamped to capacity (see [`Inner::count`]).
    #[inline]
    pub fn count(&self) -> usize {
        (self.count.load(K::SLOT_LOAD) as usize).min(LC)
    }

    /// True iff no entry fits anymore (split trigger).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count.load(K::SLOT_LOAD) as usize >= LC
    }

    /// Key slot at `i` (borrowed).
    #[inline]
    pub fn key_slot(&self, i: usize) -> u64 {
        self.keys[i].load(K::SLOT_LOAD)
    }

    /// Owned copy of the key at `i`.
    ///
    /// # Safety
    /// Caller must be pinned (or hold the tree exclusively) so the slot's
    /// pointee is alive.
    #[inline]
    pub unsafe fn key_at(&self, i: usize) -> K {
        unsafe { K::slot_key(self.keys[i].load(K::SLOT_LOAD)) }
    }

    /// Value at slot `i`.
    #[inline]
    pub fn val(&self, i: usize) -> u64 {
        self.vals[i].load(R)
    }

    /// First index with `keys[idx] >= key` (lower bound).
    #[inline]
    pub fn lower_bound(&self, key: &K) -> usize {
        sorted_prefix_len(&self.keys, self.count(), K::SLOT_LOAD, |s| {
            // Safety: slots below an observed count are published keys of
            // this node (or epoch-protected stale aliases); see module doc.
            unsafe { key.cmp_slot(s) == Cmp::Greater }
        })
    }

    /// Position of `key`, if present.
    #[inline]
    pub fn search(&self, key: &K) -> Option<usize> {
        let idx = self.lower_bound(key);
        // Safety: as in `lower_bound`.
        if idx < self.count()
            && unsafe { key.cmp_slot(self.keys[idx].load(K::SLOT_LOAD)) } == Cmp::Equal
        {
            Some(idx)
        } else {
            None
        }
    }

    /// Value for `key`, if present (readers call this between `r_lock` and
    /// `r_unlock`; the result is meaningful only if validation passes).
    #[inline]
    pub fn lookup(&self, key: &K) -> Option<u64> {
        self.search(key).map(|i| self.vals[i].load(R))
    }

    /// Store `val` at the slot of `key` (exclusive access). Returns the old
    /// value, or `None` if the key is absent.
    pub fn update(&self, key: &K, val: u64) -> Option<u64> {
        let i = self.search(key)?;
        let old = self.vals[i].load(R);
        self.vals[i].store(val, R);
        Some(old)
    }

    /// Insert or overwrite (exclusive access; must not be full unless the
    /// key already exists). Returns the previous value if the key existed.
    /// A new entry clones `key` into a freshly owned slot.
    pub fn insert(&self, key: &K, val: u64) -> Option<u64> {
        let n = self.count.load(R) as usize;
        let pos = self.lower_bound(key);
        // Safety: published slot below count (see module doc).
        if pos < n && unsafe { key.cmp_slot(self.keys[pos].load(K::SLOT_LOAD)) } == Cmp::Equal {
            let old = self.vals[pos].load(R);
            self.vals[pos].store(val, R);
            return Some(old);
        }
        debug_assert!(n < LC, "insert into full leaf");
        let mut i = n;
        while i > pos {
            self.keys[i].store(self.keys[i - 1].load(K::SLOT_LOAD), K::SLOT_STORE);
            self.vals[i].store(self.vals[i - 1].load(R), R);
            i -= 1;
        }
        self.keys[pos].store(key.clone().into_slot(), K::SLOT_STORE);
        self.vals[pos].store(val, R);
        self.count.store((n + 1) as u16, K::SLOT_STORE);
        None
    }

    /// Remove `key` (exclusive access). Returns `(slot, value)` of the
    /// removed entry; ownership of the slot moves to the caller, which
    /// must retire it (readers may still be comparing against it).
    pub fn remove(&self, key: &K) -> Option<(u64, u64)> {
        let n = self.count.load(R) as usize;
        let pos = self.search(key)?;
        let slot = self.keys[pos].load(K::SLOT_LOAD);
        let old = self.vals[pos].load(R);
        for i in pos..n - 1 {
            self.keys[i].store(self.keys[i + 1].load(K::SLOT_LOAD), K::SLOT_STORE);
            self.vals[i].store(self.vals[i + 1].load(R), R);
        }
        self.count.store((n - 1) as u16, K::SLOT_STORE);
        Some((slot, old))
    }

    /// Split in half (exclusive access). Returns `(separator, right node)`;
    /// the separator is a **freshly owned clone** of the smallest key of
    /// the new right leaf (the right leaf keeps its own slot), and its
    /// ownership moves to the caller.
    pub fn split(&self) -> (u64, *mut NodeBase) {
        let n = self.count.load(R) as usize;
        debug_assert!(n >= 2);
        let mid = n / 2;
        let right_ptr = Self::alloc();
        let right = unsafe { as_leaf::<LL, LC, K>(right_ptr) };
        for i in mid..n {
            right.keys[i - mid].store(self.keys[i].load(K::SLOT_LOAD), K::SLOT_STORE);
            right.vals[i - mid].store(self.vals[i].load(R), R);
        }
        right.count.store((n - mid) as u16, K::SLOT_STORE);
        self.count.store(mid as u16, K::SLOT_STORE);
        // Safety: right.keys[0] is a live slot this thread just published.
        let sep = unsafe { K::slot_clone(right.keys[0].load(K::SLOT_LOAD)) };
        (sep, right_ptr)
    }

    /// Append every entry of `right` (exclusive access to both; combined
    /// count must fit). Slot ownership **moves** — the caller retires the
    /// right node without freeing its (now stale-alias) slots.
    pub fn absorb(&self, right: &Self) {
        let n = self.count.load(R) as usize;
        let m = right.count.load(R) as usize;
        debug_assert!(n + m <= LC);
        for i in 0..m {
            self.keys[n + i].store(right.keys[i].load(K::SLOT_LOAD), K::SLOT_STORE);
            self.vals[n + i].store(right.vals[i].load(R), R);
        }
        self.count.store((n + m) as u16, K::SLOT_STORE);
    }

    /// Copy entries with key ≥ `from` (every entry when `from` is `None`)
    /// into `out`, up to `limit` items. Keys are owned clones: the caller
    /// may keep them past validation.
    pub fn collect_from(&self, from: Option<&K>, limit: usize, out: &mut Vec<(K, u64)>) {
        let n = self.count();
        let start = match from {
            Some(k) => self.lower_bound(k),
            None => 0,
        };
        for i in start..n {
            if out.len() >= limit {
                break;
            }
            // Safety: published slot below count, caller pinned.
            out.push((unsafe { self.key_at(i) }, self.vals[i].load(R)));
        }
    }

    /// Free the key slots this node owns (`[0, count)`): tree drop only.
    ///
    /// # Safety
    /// Caller must have exclusive ownership of the whole tree.
    pub unsafe fn free_key_slots(&self) {
        for i in 0..self.count() {
            unsafe { K::slot_free(self.keys[i].load(R)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql::OptLock;
    use optiql_index_api::Bytes;

    type L = Leaf<OptLock, 8>;
    type I = Inner<OptLock, 8>;

    fn leaf<'a>() -> (&'a L, *mut NodeBase) {
        let p = L::alloc();
        (unsafe { as_leaf::<OptLock, 8, u64>(p) }, p)
    }

    fn free_leaf(p: *mut NodeBase) {
        drop(unsafe { Box::from_raw(p as *mut L) });
    }

    fn free_inner(p: *mut NodeBase) {
        drop(unsafe { Box::from_raw(p as *mut I) });
    }

    #[test]
    fn leaf_insert_sorted_and_lookup() {
        let (l, p) = leaf();
        for k in [5u64, 1, 9, 3] {
            assert!(l.insert(&k, k * 10).is_none());
        }
        assert_eq!(l.count(), 4);
        let keys: Vec<u64> = (0..4).map(|i| l.key_slot(i)).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert_eq!(l.lookup(&5), Some(50));
        assert_eq!(l.lookup(&4), None);
        free_leaf(p);
    }

    #[test]
    fn leaf_insert_duplicate_overwrites() {
        let (l, p) = leaf();
        assert!(l.insert(&7, 1).is_none());
        assert_eq!(l.insert(&7, 2), Some(1));
        assert_eq!(l.count(), 1);
        assert_eq!(l.lookup(&7), Some(2));
        free_leaf(p);
    }

    #[test]
    fn leaf_update_and_remove() {
        let (l, p) = leaf();
        l.insert(&1, 10);
        l.insert(&2, 20);
        l.insert(&3, 30);
        assert_eq!(l.update(&2, 21), Some(20));
        assert_eq!(l.update(&4, 40), None);
        assert_eq!(l.remove(&2), Some((2, 21)), "remove yields (slot, val)");
        assert_eq!(l.remove(&2), None);
        assert_eq!(l.count(), 2);
        assert_eq!(l.lookup(&1), Some(10));
        assert_eq!(l.lookup(&3), Some(30));
        free_leaf(p);
    }

    #[test]
    fn leaf_split_moves_upper_half() {
        let (l, p) = leaf();
        for k in 0..8u64 {
            l.insert(&k, k);
        }
        assert!(l.is_full());
        let (sep, rp) = l.split();
        let r = unsafe { as_leaf::<OptLock, 8, u64>(rp) };
        assert_eq!(sep, 4);
        assert_eq!(l.count(), 4);
        assert_eq!(r.count(), 4);
        assert_eq!(l.lookup(&3), Some(3));
        assert_eq!(l.lookup(&4), None);
        assert_eq!(r.lookup(&4), Some(4));
        free_leaf(p);
        free_leaf(rp);
    }

    #[test]
    fn leaf_absorb_concatenates() {
        let (l, p) = leaf();
        let (r, rp) = leaf();
        l.insert(&1, 1);
        l.insert(&2, 2);
        r.insert(&10, 10);
        r.insert(&11, 11);
        l.absorb(r);
        assert_eq!(l.count(), 4);
        assert_eq!(l.lookup(&11), Some(11));
        free_leaf(p);
        free_leaf(rp);
    }

    #[test]
    fn leaf_collect_from_respects_bounds() {
        let (l, p) = leaf();
        for k in [2u64, 4, 6, 8] {
            l.insert(&k, k);
        }
        let mut out = Vec::new();
        l.collect_from(Some(&4), 2, &mut out);
        assert_eq!(out, vec![(4, 4), (6, 6)]);
        out.clear();
        l.collect_from(None, 8, &mut out);
        assert_eq!(out.len(), 4, "None = no lower bound");
        free_leaf(p);
    }

    #[test]
    fn byte_key_leaf_owns_its_slots() {
        let p = Leaf::<OptLock, 8, Bytes>::alloc();
        let l = unsafe { as_leaf::<OptLock, 8, Bytes>(p) };
        for s in ["delta", "alpha", "charlie", "bravo"] {
            assert!(l.insert(&Bytes::from(s), s.len() as u64).is_none());
        }
        assert_eq!(l.count(), 4);
        // Sorted lexicographically through the slot indirection.
        let keys: Vec<Bytes> = (0..4).map(|i| unsafe { l.key_at(i) }).collect();
        assert_eq!(
            keys,
            ["alpha", "bravo", "charlie", "delta"]
                .map(Bytes::from)
                .to_vec()
        );
        assert_eq!(l.lookup(&Bytes::from("charlie")), Some(7));
        assert_eq!(l.lookup(&Bytes::from("zulu")), None);
        assert_eq!(l.insert(&Bytes::from("alpha"), 99), Some(5), "overwrite");
        // Remove hands the slot back for the caller to release.
        let (slot, val) = l.remove(&Bytes::from("bravo")).unwrap();
        assert_eq!(val, 5);
        unsafe { Bytes::slot_free(slot) };
        // Split: separator is an independently owned clone.
        let (sep, rp) = l.split();
        let r = unsafe { as_leaf::<OptLock, 8, Bytes>(rp) };
        assert_eq!(unsafe { Bytes::slot_key(sep) }, unsafe { r.key_at(0) });
        unsafe {
            Bytes::slot_free(sep);
            l.free_key_slots();
            r.free_key_slots();
        }
        drop(unsafe { Box::from_raw(p as *mut Leaf<OptLock, 8, Bytes>) });
        drop(unsafe { Box::from_raw(rp as *mut Leaf<OptLock, 8, Bytes>) });
    }

    #[test]
    fn inner_child_routing() {
        let ip = I::alloc();
        let inner = unsafe { as_inner::<OptLock, 8, u64>(ip) };
        let (c0, c1, c2) = (L::alloc(), L::alloc(), L::alloc());
        inner.init_root(10, c0, c1);
        inner.insert_child(20, c2);
        assert_eq!(inner.count(), 2);
        assert_eq!(inner.find_child(&5).0, c0);
        assert_eq!(inner.find_child(&5).1, Some(10));
        assert_eq!(inner.find_child(&10).0, c1);
        assert_eq!(inner.find_child(&15).1, Some(20));
        assert_eq!(inner.find_child(&20).0, c2);
        assert_eq!(inner.find_child(&99).1, None);
        assert_eq!(inner.find_child_from(None).0, c0, "None descends leftmost");
        assert_eq!(inner.find_child_from(None).1, Some(10));
        assert_eq!(inner.find_child_from(Some(&15)).0, inner.find_child(&15).0);
        free_leaf(c0);
        free_leaf(c1);
        free_leaf(c2);
        free_inner(ip);
    }

    #[test]
    fn inner_split_pushes_middle_separator_up() {
        let ip = I::alloc();
        let inner = unsafe { as_inner::<OptLock, 8, u64>(ip) };
        let kids: Vec<*mut NodeBase> = (0..8).map(|_| L::alloc()).collect();
        inner.init_root(10, kids[0], kids[1]);
        for (i, sep) in [20u64, 30, 40, 50, 60].iter().enumerate() {
            inner.insert_child(*sep, kids[i + 2]);
        }
        assert!(inner.is_full() || inner.count() == 6);
        let n = inner.count();
        let (sep, rp) = inner.split();
        let right = unsafe { as_inner::<OptLock, 8, u64>(rp) };
        assert_eq!(inner.count() + right.count() + 1, n);
        // Separator strictly partitions the two halves.
        for i in 0..inner.count() {
            assert!(inner.key_slot(i) < sep);
        }
        for i in 0..right.count() {
            assert!(right.key_slot(i) > sep);
        }
        for k in kids {
            free_leaf(k);
        }
        free_inner(ip);
        free_inner(rp);
    }

    #[test]
    fn inner_remove_child_closes_gaps() {
        let ip = I::alloc();
        let inner = unsafe { as_inner::<OptLock, 8, u64>(ip) };
        let (c0, c1, c2) = (L::alloc(), L::alloc(), L::alloc());
        inner.init_root(10, c0, c1);
        inner.insert_child(20, c2);
        // Remove middle child c1 (covers [10,20)): separator 10 goes away.
        let pos = inner.position_of(c1).unwrap();
        assert_eq!(inner.remove_child(pos), 10, "dropped separator slot");
        assert_eq!(inner.count(), 1);
        assert_eq!(inner.find_child(&5).0, c0);
        assert_eq!(inner.find_child(&25).0, c2);
        // Remove leftmost child.
        assert_eq!(inner.remove_child(0), 20);
        assert_eq!(inner.count(), 0);
        assert_eq!(inner.find_child(&0).0, c2);
        free_leaf(c0);
        free_leaf(c1);
        free_leaf(c2);
        free_inner(ip);
    }

    #[test]
    fn search_matches_reference_across_scan_regimes() {
        // Cover counts below and above LINEAR_MAX so both the unrolled
        // linear scan and the monobound binary search are checked against a
        // naive reference.
        fn check<const C: usize>() {
            let lp = Leaf::<OptLock, C>::alloc();
            let l = unsafe { as_leaf::<OptLock, C, u64>(lp) };
            for i in 0..C as u64 {
                l.insert(&(i * 2 + 1), i);
            }
            for probe in 0..=(2 * C as u64 + 2) {
                let expect = (0..l.count())
                    .find(|&i| l.key_slot(i) >= probe)
                    .unwrap_or(l.count());
                assert_eq!(l.lower_bound(&probe), expect, "C={C} probe={probe}");
            }
            drop(unsafe { Box::from_raw(lp as *mut Leaf<OptLock, C>) });

            let ip = Inner::<OptLock, C>::alloc();
            let inner = unsafe { as_inner::<OptLock, C, u64>(ip) };
            let kid = Leaf::<OptLock, 4>::alloc();
            inner.init_root(2, kid, kid);
            for i in 1..(C - 1) as u64 {
                inner.insert_child((i + 1) * 2, kid);
            }
            for probe in 0..=(2 * C as u64 + 2) {
                let expect = (0..inner.count())
                    .find(|&i| probe < inner.key_slot(i))
                    .unwrap_or(inner.count());
                assert_eq!(inner.child_index(&probe), expect, "C={C} probe={probe}");
            }
            drop(unsafe { Box::from_raw(kid as *mut Leaf<OptLock, 4>) });
            drop(unsafe { Box::from_raw(ip as *mut Inner<OptLock, C>) });
        }
        check::<4>();
        check::<8>();
        check::<16>();
        check::<17>();
        check::<64>();
        check::<256>();
    }

    #[test]
    fn lower_bound_on_empty_leaf() {
        let (l, p) = leaf();
        assert_eq!(l.lower_bound(&42), 0);
        assert_eq!(l.search(&42), None);
        assert_eq!(l.lookup(&42), None);
        free_leaf(p);
    }
}
