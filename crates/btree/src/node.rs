//! B+-tree node layout.
//!
//! Memory-optimized B+-trees use small nodes (256 bytes by default, paper
//! §6.1/§7.1) with the lock embedded in the node header. Because optimistic
//! readers scan node contents *concurrently with writers*, every mutable
//! cell is an atomic: that is free of UB, and any torn/inconsistent
//! combination a reader may assemble is discarded by lock-version
//! validation.
//!
//! # Key slots
//!
//! Nodes are generic over the key type `K:`[`IndexKey`] but still store
//! keys in fixed `[AtomicU64]` arrays of **slot words** — the key itself
//! for `u64` (inline), an owned pointer to the heap key otherwise. The
//! branchless search kernel streams slot words exactly as it streamed raw
//! keys; only the compare goes through `K`. Memory orderings come from the
//! key type: `Relaxed` for inline keys (compiling to the pre-generic code
//! bit for bit), `Acquire`/`Release` for pointer slots so a reader that
//! observes a published slot also observes the pointee's bytes. The same
//! orderings cover `count` and the child pointers, because for pointer
//! keys they are publication edges too (a reader must not chase a fresh
//! `count` into a slot whose store it cannot see yet).
//!
//! Slot **ownership** is manual and explicit: methods that drop or
//! duplicate an entry return the affected slot word so the tree can
//! retire it through epoch reclamation (`u64` makes all of it a no-op).
//! Stale slot words beyond `count` — left behind by removes and splits —
//! are never nulled and never freed: they alias keys owned elsewhere or
//! keys already retired, both of which stay dereferenceable for as long
//! as any reader that could observe them is pinned.
//!
//! Layout conventions:
//!
//! * A leaf holds up to `LC` sorted `(key, value)` pairs.
//! * An inner node holds `count` sorted separator keys and `count + 1`
//!   children; capacity is `IC - 1` keys / `IC` children. `children[i]`
//!   covers keys `< keys[i]`; `children[count]` covers the rest. Separator
//!   `keys[i]` is the smallest key reachable through `children[i + 1]`.
//! * `NodeBase::leaf` is immutable after construction, so a traversal may
//!   read it through a not-yet-validated pointer (the pointee is kept
//!   alive by epoch reclamation).
//!
//! # Prefix truncation (`K::TRUNCATE` byte keys)
//!
//! For [`bslot`]-represented keys every node additionally owns a
//! **prefix slot**: one byte string every key in the node starts with
//! (not necessarily maximal, possibly empty). Key slots then hold only
//! the *suffix* after that prefix — so for clustered workloads
//! (`user0000000031`, …) most suffixes fit the 7-byte inline word and
//! the branchless kernel streams them with **zero** pointer chases,
//! comparing exactly the discriminating bytes.
//!
//! A probe is related to the prefix once per node (`rel`): either it
//! begins with the prefix and descends as a suffix probe, or it
//! diverges and the answer is position `0`/`count` without touching a
//! single key slot. Writers holding the exclusive lock maintain the
//! prefix: a diverging insert first *shrinks* it to the shared part
//! (rewriting every suffix slot and retiring the old ones), splits and
//! merges *re-grow* it to the maximal common prefix of the surviving
//! suffixes. Optimistic readers may interleave with a rewrite and
//! assemble a prefix from one generation with suffixes from another —
//! such a read is garbage but memory-safe (epoch reclamation keeps
//! every retired blob dereferenceable past the readers' pins) and is
//! discarded by lock-version validation, exactly like any other torn
//! node snapshot.

use std::cmp::Ordering as Cmp;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU16, AtomicU64, Ordering};

use optiql::IndexLock;
use optiql_index_api::{bslot, IndexKey};
use optiql_reclaim::Guard;

/// Longest common prefix of two byte strings.
#[inline]
fn common_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Relate a probe to a node prefix. `Ok(suffix)` when the probe begins
/// with the whole prefix (search continues over the suffix slots);
/// otherwise the probe diverges from *every* key in the node and the
/// error carries which side it falls on (`Less`: before all keys,
/// `Greater`: after all) plus the shared length — the target a
/// diverging insert must shrink the prefix to.
#[inline]
fn rel<'a>(prefix: &[u8], raw: &'a [u8]) -> Result<&'a [u8], (Cmp, usize)> {
    if prefix.is_empty() {
        return Ok(raw);
    }
    let m = common_len(prefix, raw);
    if m == prefix.len() {
        Ok(&raw[m..])
    } else if m == raw.len() || raw[m] < prefix[m] {
        // The probe is a proper prefix of the node prefix (hence of
        // every key), or its first divergent byte sorts below.
        Err((Cmp::Less, m))
    } else {
        Err((Cmp::Greater, m))
    }
}

/// Relaxed ordering shorthand for the cells that never carry publication
/// duties (values, and everything when `K` is inline).
const R: Ordering = Ordering::Relaxed;

/// Largest count searched by the unrolled linear scan; larger nodes fall
/// through to the branchless binary search.
const LINEAR_MAX: usize = 16;

/// Number of `keys[..n]` satisfying `pred` — the shared kernel of
/// [`Inner::child_index`] (`pred = key_i <= needle`) and
/// [`Leaf::lower_bound`] (`pred = key_i < needle`). Requires `keys[..n]`
/// sorted and `pred` monotone (true-prefix), which both callers guarantee;
/// on a torn concurrent snapshot the result is still in `0..=n` and the
/// caller's version validation discards it.
///
/// Search is branch-free in the *data*: a fixed-stride unrolled scan that
/// accumulates compare results for small counts (no mispredicts, the loads
/// pipeline), and a "monobound" binary search (`base += pred * half`, a
/// conditional-move idiom) for larger ones. `ld` is the slot-load ordering
/// of the key type (constant after monomorphization).
#[inline(always)]
fn sorted_prefix_len(
    keys: &[AtomicU64],
    n: usize,
    ld: Ordering,
    pred: impl Fn(u64) -> bool,
) -> usize {
    debug_assert!(n <= keys.len());
    let mut base = 0usize;
    let mut len = n;
    // Monobound narrowing: branchless halving until the window is small.
    // Each step is one load feeding a conditional-move — a short serial
    // chain instead of a run of unpredictable branches.
    while len > LINEAR_MAX {
        let half = len / 2;
        base += pred(keys[base + half - 1].load(ld)) as usize * half;
        len -= half;
    }
    // Unrolled branchless scan of the final window: the loads are
    // independent, so they pipeline instead of serializing.
    let mut idx = base;
    let end = base + len;
    let mut i = base;
    while i + 4 <= end {
        idx += pred(keys[i].load(ld)) as usize;
        idx += pred(keys[i + 1].load(ld)) as usize;
        idx += pred(keys[i + 2].load(ld)) as usize;
        idx += pred(keys[i + 3].load(ld)) as usize;
        i += 4;
    }
    while i < end {
        idx += pred(keys[i].load(ld)) as usize;
        i += 1;
    }
    idx
}

/// Hint the CPU to pull the first two lines of a node into cache. Issued on
/// the traversal path between choosing a child and validating the parent's
/// version, so the fetch overlaps the validation instead of stalling the
/// descent.
#[inline(always)]
pub(crate) fn prefetch_node(p: *const NodeBase) {
    #[cfg(target_arch = "x86_64")]
    // Safety: prefetch is a pure hint and is architecturally defined to
    // never fault, whatever the address points at.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
        _mm_prefetch::<_MM_HINT_T0>((p as *const i8).wrapping_add(64));
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Prefetch the *tail* of a node (lines 2 and 3 of a 256-byte node). The
/// batched engine has a whole pipeline round between choosing a child and
/// touching it, so it can afford to pull the entire node — key array tails
/// and the value/child array — not just the header two lines that
/// [`prefetch_node`] fetches on the latency-sensitive scalar path.
#[inline(always)]
pub(crate) fn prefetch_node_rest(p: *const NodeBase) {
    #[cfg(target_arch = "x86_64")]
    // Safety: as above — prefetch never faults.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>((p as *const i8).wrapping_add(128));
        _mm_prefetch::<_MM_HINT_T0>((p as *const i8).wrapping_add(192));
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Common first-field header of every node; enables leaf/inner dispatch
/// through a type-erased pointer (`repr(C)` prefix cast).
#[repr(C)]
pub struct NodeBase {
    /// True iff this node is a leaf. Immutable after construction.
    pub leaf: bool,
}

/// Inner node: `lock` is the *inner* lock type `IL` (the paper keeps
/// centralized optimistic locks on inner nodes even in the OptiQL
/// configuration, §6.1).
#[repr(C)]
pub struct Inner<IL: IndexLock, const IC: usize, K: IndexKey = u64> {
    /// Common header (leaf tag).
    pub base: NodeBase,
    /// Inner-node lock.
    pub lock: IL,
    count: AtomicU16,
    /// Node prefix slot (`K::TRUNCATE` only; the inline empty string
    /// otherwise). See the module docs.
    prefix: AtomicU64,
    keys: [AtomicU64; IC],
    children: [AtomicPtr<NodeBase>; IC],
    _key: PhantomData<K>,
}

/// Leaf node: `lock` is the *leaf* lock type `LL`.
#[repr(C)]
pub struct Leaf<LL: IndexLock, const LC: usize, K: IndexKey = u64> {
    /// Common header (leaf tag).
    pub base: NodeBase,
    /// Leaf lock (where index contention concentrates).
    pub lock: LL,
    count: AtomicU16,
    /// Node prefix slot (`K::TRUNCATE` only; the inline empty string
    /// otherwise). See the module docs.
    prefix: AtomicU64,
    keys: [AtomicU64; LC],
    vals: [AtomicU64; LC],
    _key: PhantomData<K>,
}

// --- casting helpers ------------------------------------------------------

/// Read the immutable leaf tag of a (possibly not yet validated) node.
///
/// # Safety
/// `p` must point to a live or epoch-retired node of this tree.
#[inline]
pub unsafe fn is_leaf(p: *const NodeBase) -> bool {
    unsafe { (*p).leaf }
}

/// Cast to an inner node reference.
///
/// # Safety
/// `p` must point to a live or epoch-retired `Inner<IL, IC, K>`.
#[inline]
pub unsafe fn as_inner<'a, IL: IndexLock, const IC: usize, K: IndexKey>(
    p: *mut NodeBase,
) -> &'a Inner<IL, IC, K> {
    debug_assert!(!unsafe { is_leaf(p) });
    unsafe { &*(p as *const Inner<IL, IC, K>) }
}

/// Cast to a leaf node reference.
///
/// # Safety
/// `p` must point to a live or epoch-retired `Leaf<LL, LC, K>`.
#[inline]
pub unsafe fn as_leaf<'a, LL: IndexLock, const LC: usize, K: IndexKey>(
    p: *mut NodeBase,
) -> &'a Leaf<LL, LC, K> {
    debug_assert!(unsafe { is_leaf(p) });
    unsafe { &*(p as *const Leaf<LL, LC, K>) }
}

/// Prefix-slot maintenance shared verbatim by [`Inner`] and [`Leaf`]
/// (both expand it into their impl blocks; the bodies only touch the
/// common `prefix`/`keys`/`count` fields).
macro_rules! prefix_ops {
    () => {
        /// The raw prefix slot word (borrowed; dereference only while
        /// pinned). The inline empty string for non-`TRUNCATE` keys.
        #[inline]
        pub fn prefix_word(&self) -> u64 {
            self.prefix.load(K::SLOT_LOAD)
        }

        /// The node prefix bytes, unpacked into `tmp` when inline.
        ///
        /// # Safety
        /// Caller must be pinned (or hold the tree exclusively) so a
        /// concurrently retired prefix blob is still dereferenceable.
        #[inline]
        unsafe fn prefix_bytes<'a>(&self, tmp: &'a mut [u8; bslot::MAX_INLINE]) -> &'a [u8] {
            unsafe { bslot::slot_bytes(self.prefix.load(K::SLOT_LOAD), tmp) }
        }

        /// Prefetch the heap blobs a forthcoming search in this node will
        /// chase: the node prefix plus the first binary-probe key slots.
        /// Inline slots need nothing, and a torn snapshot only wastes a
        /// hint (prefetch never faults), so this runs on unvalidated
        /// optimistic reads.
        #[inline]
        pub fn prefetch_probe_slots(&self) {
            bslot::prefetch(self.prefix.load(K::SLOT_LOAD));
            let n = self.count();
            if n == 0 {
                return;
            }
            bslot::prefetch(self.keys[n / 2].load(K::SLOT_LOAD));
            bslot::prefetch(self.keys[n / 4].load(K::SLOT_LOAD));
            bslot::prefetch(self.keys[(3 * n) / 4].load(K::SLOT_LOAD));
        }

        /// Shrink the node prefix to its first `m` bytes, pushing the
        /// cut tail down into every suffix slot (exclusive lock holders
        /// only). Old slots are epoch-retired: optimistic readers may
        /// still be comparing against them.
        fn shrink_prefix_to(&self, m: usize, g: &Guard) {
            let old_pfx = self.prefix.load(K::SLOT_LOAD);
            let mut tp = [0u8; bslot::MAX_INLINE];
            // Safety: we hold the exclusive lock; the slot is live.
            let pfx = unsafe { bslot::slot_bytes(old_pfx, &mut tp) };
            debug_assert!(m < pfx.len());
            let tail = pfx[m..].to_vec();
            let new_pfx = bslot::make(&pfx[..m]);
            let n = self.count.load(R) as usize;
            let mut scratch = Vec::with_capacity(tail.len() + bslot::MAX_INLINE);
            for i in 0..n {
                let old = self.keys[i].load(K::SLOT_LOAD);
                scratch.clear();
                scratch.extend_from_slice(&tail);
                // Safety: live slot owned by this node; retired below.
                unsafe {
                    bslot::append_to(old, &mut scratch);
                    self.keys[i].store(bslot::make(&scratch), K::SLOT_STORE);
                    bslot::retire(old, g);
                }
            }
            self.prefix.store(new_pfx, K::SLOT_STORE);
            // Safety: unlinked under the exclusive lock.
            unsafe { bslot::retire(old_pfx, g) };
        }

        /// Re-grow the node prefix to the maximal shared prefix of the
        /// current suffixes (exclusive lock holders only; called after
        /// splits and merges change the key population). Because the
        /// suffixes are sorted, their common prefix is the common
        /// prefix of the first and last alone.
        fn grow_prefix(&self, g: &Guard) {
            let n = self.count.load(R) as usize;
            if n == 0 {
                return;
            }
            let (mut t0, mut t1) = ([0u8; bslot::MAX_INLINE], [0u8; bslot::MAX_INLINE]);
            // Safety: live slots owned by this node.
            let ext = unsafe {
                let first = bslot::slot_bytes(self.keys[0].load(K::SLOT_LOAD), &mut t0);
                let last = bslot::slot_bytes(self.keys[n - 1].load(K::SLOT_LOAD), &mut t1);
                let ext = common_len(first, last);
                if ext == 0 {
                    return;
                }
                first[..ext].to_vec()
            };
            let mut scratch = Vec::new();
            for i in 0..n {
                let old = self.keys[i].load(K::SLOT_LOAD);
                scratch.clear();
                // Safety: live slot owned by this node; retired below.
                unsafe {
                    bslot::append_to(old, &mut scratch);
                    self.keys[i].store(bslot::make(&scratch[ext.len()..]), K::SLOT_STORE);
                    bslot::retire(old, g);
                }
            }
            let old_pfx = self.prefix.load(K::SLOT_LOAD);
            scratch.clear();
            // Safety: live prefix slot; retired below.
            unsafe { bslot::append_to(old_pfx, &mut scratch) };
            scratch.extend_from_slice(&ext);
            self.prefix.store(bslot::make(&scratch), K::SLOT_STORE);
            // Safety: unlinked under the exclusive lock.
            unsafe { bslot::retire(old_pfx, g) };
        }
    };
}

// --- inner node -----------------------------------------------------------

impl<IL: IndexLock, const IC: usize, K: IndexKey> Inner<IL, IC, K> {
    /// Maximum number of separator keys.
    pub const MAX_KEYS: usize = IC - 1;

    /// Allocate an empty inner node and leak it to a raw pointer.
    pub fn alloc() -> *mut NodeBase {
        let node = Box::new(Inner::<IL, IC, K> {
            base: NodeBase { leaf: false },
            lock: IL::default(),
            count: AtomicU16::new(0),
            prefix: AtomicU64::new(bslot::EMPTY),
            keys: [const { AtomicU64::new(0) }; IC],
            children: [const { AtomicPtr::new(std::ptr::null_mut()) }; IC],
            _key: PhantomData,
        });
        Box::into_raw(node) as *mut NodeBase
    }

    /// Number of separator keys, clamped to capacity (a concurrent reader
    /// may observe a transient value; clamping keeps indexing in bounds and
    /// validation rejects the result). For pointer keys the `Acquire` load
    /// also guarantees the slots below the observed count are published.
    #[inline]
    pub fn count(&self) -> usize {
        (self.count.load(K::SLOT_LOAD) as usize).min(Self::MAX_KEYS)
    }

    /// True iff no separator key fits anymore (eager-split trigger).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count.load(K::SLOT_LOAD) as usize >= Self::MAX_KEYS
    }

    /// Separator key slot at `i` (borrowed; ownership stays with the node).
    #[inline]
    pub fn key_slot(&self, i: usize) -> u64 {
        self.keys[i].load(K::SLOT_LOAD)
    }

    /// Child pointer at `i`.
    #[inline]
    pub fn child(&self, i: usize) -> *mut NodeBase {
        self.children[i].load(K::SLOT_LOAD)
    }

    prefix_ops!();

    /// Index of the child covering `key`: first `i` with `key < keys[i]`,
    /// else `count`.
    #[inline]
    pub fn child_index(&self, key: &K) -> usize {
        if K::TRUNCATE {
            let mut tp = [0u8; bslot::MAX_INLINE];
            // Safety: caller is pinned; the prefix slot stays readable.
            let pfx = unsafe { self.prefix_bytes(&mut tp) };
            match rel(pfx, key.raw_bytes()) {
                Err((Cmp::Less, _)) => 0,
                Err(_) => self.count(),
                Ok(suf) => {
                    let w = bslot::sort_word(suf);
                    sorted_prefix_len(&self.keys, self.count(), K::SLOT_LOAD, |s| {
                        // Safety: published suffix slot below count.
                        unsafe { bslot::cmp(suf, w, s) != Cmp::Less }
                    })
                }
            }
        } else {
            sorted_prefix_len(&self.keys, self.count(), K::SLOT_LOAD, |s| {
                // Safety: slots below an observed count are published keys
                // of this node (or epoch-protected stale aliases).
                unsafe { key.cmp_slot(s) != Cmp::Less }
            })
        }
    }

    /// Child pointer covering `key`. The child is prefetched so its
    /// fetch overlaps the caller's version validation of this node.
    #[inline]
    pub fn find_child(&self, key: &K) -> *mut NodeBase {
        let child = self.children[self.child_index(key)].load(K::SLOT_LOAD);
        prefetch_node(child);
        child
    }

    /// Leftmost child (`from = None`) or the child covering `from` — the
    /// scan descent, which may have no lower bound. Also returns the
    /// separator **key** bounding the child's range from above (`None`
    /// when it is the rightmost child): an owned reconstruction, valid
    /// past validation.
    #[inline]
    pub fn find_child_from(&self, from: Option<&K>) -> (*mut NodeBase, Option<K>) {
        let idx = match from {
            Some(k) => self.child_index(k),
            None => 0,
        };
        let n = self.count();
        let upper = if idx < n {
            // Safety: caller pinned; published slot below count.
            Some(unsafe { self.sep_key_at(idx) })
        } else {
            None
        };
        let child = self.children[idx].load(K::SLOT_LOAD);
        // Warm the child while the caller validates this node's version.
        prefetch_node(child);
        (child, upper)
    }

    /// Owned copy of the full separator key at `i` (prefix reattached
    /// for truncated nodes).
    ///
    /// # Safety
    /// Caller must be pinned (or hold the tree exclusively) so the slot
    /// and prefix pointees are alive.
    pub unsafe fn sep_key_at(&self, i: usize) -> K {
        if K::TRUNCATE {
            let mut buf = Vec::new();
            // Safety: live prefix and key slots per caller contract.
            unsafe {
                bslot::append_to(self.prefix.load(K::SLOT_LOAD), &mut buf);
                bslot::append_to(self.keys[i].load(K::SLOT_LOAD), &mut buf);
            }
            K::from_raw(&buf)
        } else {
            unsafe { K::slot_key(self.keys[i].load(K::SLOT_LOAD)) }
        }
    }

    /// Insert a separator + right child (holder of the exclusive lock
    /// only); the separator is cloned into a slot owned by this node
    /// (re-expressed against the node prefix when truncating, shrinking
    /// it first if the separator diverges). The caller guarantees the
    /// node is not full.
    pub fn insert_child(&self, sep: &K, right: *mut NodeBase, g: &Guard) {
        let n = self.count.load(R) as usize;
        debug_assert!(n < Self::MAX_KEYS);
        let (pos, slot) = if K::TRUNCATE {
            let raw = sep.raw_bytes();
            if n == 0 {
                // First separator: the whole key becomes the prefix and
                // its suffix slot is empty.
                let old_pfx = self.prefix.load(K::SLOT_LOAD);
                self.prefix.store(bslot::make(raw), K::SLOT_STORE);
                // Safety: unlinked under the exclusive lock.
                unsafe { bslot::retire(old_pfx, g) };
                (0, bslot::EMPTY)
            } else {
                let mut tp = [0u8; bslot::MAX_INLINE];
                // Safety: exclusive lock held; prefix slot is live.
                let pfx = unsafe { self.prefix_bytes(&mut tp) };
                let suf: &[u8] = match rel(pfx, raw) {
                    Ok(s) => s,
                    Err((_, m)) => {
                        self.shrink_prefix_to(m, g);
                        // The new prefix is `raw[..m]` by construction.
                        &raw[m..]
                    }
                };
                let w = bslot::sort_word(suf);
                let pos = sorted_prefix_len(&self.keys, n.min(Self::MAX_KEYS), K::SLOT_LOAD, |s| {
                    // Safety: published suffix slot below count.
                    unsafe { bslot::cmp(suf, w, s) != Cmp::Less }
                });
                (pos, bslot::make(suf))
            }
        } else {
            let slot = sep.clone().into_slot();
            let pos = sorted_prefix_len(&self.keys, n.min(Self::MAX_KEYS), K::SLOT_LOAD, |s| {
                // Safety: both are live slot words (see module doc).
                unsafe { K::slot_cmp_slot(s, slot) != Cmp::Greater }
            });
            (pos, slot)
        };
        let mut i = n;
        while i > pos {
            self.keys[i].store(self.keys[i - 1].load(K::SLOT_LOAD), K::SLOT_STORE);
            self.children[i + 1].store(self.children[i].load(K::SLOT_LOAD), K::SLOT_STORE);
            i -= 1;
        }
        self.keys[pos].store(slot, K::SLOT_STORE);
        self.children[pos + 1].store(right, K::SLOT_STORE);
        self.count.store((n + 1) as u16, K::SLOT_STORE);
    }

    /// Set the two initial children of a fresh root (exclusive access to
    /// a node no reader has seen yet).
    pub fn init_root(&self, sep: K, left: *mut NodeBase, right: *mut NodeBase) {
        let slot = if K::TRUNCATE {
            // Fresh node, empty prefix: the whole key is the suffix.
            self.prefix
                .store(bslot::make(sep.raw_bytes()), K::SLOT_STORE);
            bslot::EMPTY
        } else {
            sep.into_slot()
        };
        self.keys[0].store(slot, K::SLOT_STORE);
        self.children[0].store(left, K::SLOT_STORE);
        self.children[1].store(right, K::SLOT_STORE);
        self.count.store(1, K::SLOT_STORE);
    }

    /// Split in half (holder of the exclusive lock only). Returns
    /// `(separator-to-push-up, new-right-node)`; the separator is an
    /// owned full key, and the middle slot it came from is retired
    /// (readers may still be comparing against it). Truncated halves
    /// re-grow their prefixes from the surviving suffixes.
    pub fn split(&self, g: &Guard) -> (K, *mut NodeBase) {
        let n = self.count.load(R) as usize;
        debug_assert!(n >= 3, "splitting a near-empty inner node");
        let mid = n / 2;
        // Safety: this thread holds the exclusive lock; slot is live.
        let sep = unsafe { self.sep_key_at(mid) };
        let mid_slot = self.keys[mid].load(K::SLOT_LOAD);
        let right_ptr = Self::alloc();
        let right = unsafe { as_inner::<IL, IC, K>(right_ptr) };
        let right_keys = n - mid - 1;
        for i in 0..right_keys {
            right.keys[i].store(self.keys[mid + 1 + i].load(K::SLOT_LOAD), K::SLOT_STORE);
            right.children[i].store(self.children[mid + 1 + i].load(K::SLOT_LOAD), K::SLOT_STORE);
        }
        right.children[right_keys].store(self.children[n].load(K::SLOT_LOAD), K::SLOT_STORE);
        right.count.store(right_keys as u16, K::SLOT_STORE);
        self.count.store(mid as u16, K::SLOT_STORE);
        // Safety: the mid slot was unlinked above (count excludes it on
        // the left, it was not copied right); `sep` already cloned it.
        unsafe { K::slot_retire(mid_slot, g) };
        if K::TRUNCATE {
            right
                .prefix
                // Safety: live prefix slot under the exclusive lock.
                .store(
                    unsafe { bslot::clone_slot(self.prefix.load(K::SLOT_LOAD)) },
                    K::SLOT_STORE,
                );
            right.grow_prefix(g);
            self.grow_prefix(g);
        }
        (sep, right_ptr)
    }

    /// Remove the child at `idx` and its adjacent separator (exclusive
    /// access; `count` must be ≥ 1). Returns the dropped separator slot —
    /// ownership moves to the caller, which must retire it.
    pub fn remove_child(&self, idx: usize) -> u64 {
        let n = self.count.load(R) as usize;
        debug_assert!(n >= 1 && idx <= n);
        // Removing children[idx]: drop separator keys[idx - 1] (or keys[0]
        // when idx == 0) and close the gaps.
        let key_gone = idx.saturating_sub(1);
        let dropped = self.keys[key_gone].load(K::SLOT_LOAD);
        for i in key_gone..n - 1 {
            self.keys[i].store(self.keys[i + 1].load(K::SLOT_LOAD), K::SLOT_STORE);
        }
        for i in idx..n {
            self.children[i].store(self.children[i + 1].load(K::SLOT_LOAD), K::SLOT_STORE);
        }
        self.count.store((n - 1) as u16, K::SLOT_STORE);
        dropped
    }

    /// Position of a child pointer, if present (exclusive access).
    pub fn position_of(&self, child: *mut NodeBase) -> Option<usize> {
        let n = self.count.load(R) as usize;
        (0..=n).find(|&i| self.children[i].load(K::SLOT_LOAD) == child)
    }

    /// Free the separator slots this node owns (`[0, count)`), plus the
    /// prefix slot for truncated nodes: tree drop only, when no
    /// concurrent access exists.
    ///
    /// # Safety
    /// Caller must have exclusive ownership of the whole tree.
    pub unsafe fn free_key_slots(&self) {
        for i in 0..self.count() {
            unsafe { K::slot_free(self.keys[i].load(R)) };
        }
        if K::TRUNCATE {
            unsafe { bslot::free(self.prefix.load(R)) };
        }
    }
}

// --- leaf node -------------------------------------------------------------

impl<LL: IndexLock, const LC: usize, K: IndexKey> Leaf<LL, LC, K> {
    /// Maximum number of entries.
    pub const MAX_ENTRIES: usize = LC;

    /// Allocate an empty leaf and leak it to a raw pointer.
    pub fn alloc() -> *mut NodeBase {
        let node = Box::new(Leaf::<LL, LC, K> {
            base: NodeBase { leaf: true },
            lock: LL::default(),
            count: AtomicU16::new(0),
            prefix: AtomicU64::new(bslot::EMPTY),
            keys: [const { AtomicU64::new(0) }; LC],
            vals: [const { AtomicU64::new(0) }; LC],
            _key: PhantomData,
        });
        Box::into_raw(node) as *mut NodeBase
    }

    /// Entry count, clamped to capacity (see [`Inner::count`]).
    #[inline]
    pub fn count(&self) -> usize {
        (self.count.load(K::SLOT_LOAD) as usize).min(LC)
    }

    /// True iff no entry fits anymore (split trigger).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count.load(K::SLOT_LOAD) as usize >= LC
    }

    /// Key slot at `i` (borrowed).
    #[inline]
    pub fn key_slot(&self, i: usize) -> u64 {
        self.keys[i].load(K::SLOT_LOAD)
    }

    prefix_ops!();

    /// Owned copy of the full key at `i` (prefix reattached for
    /// truncated nodes).
    ///
    /// # Safety
    /// Caller must be pinned (or hold the tree exclusively) so the slot's
    /// pointee is alive.
    #[inline]
    pub unsafe fn key_at(&self, i: usize) -> K {
        if K::TRUNCATE {
            let mut buf = Vec::new();
            // Safety: live prefix and key slots per caller contract.
            unsafe {
                bslot::append_to(self.prefix.load(K::SLOT_LOAD), &mut buf);
                bslot::append_to(self.keys[i].load(K::SLOT_LOAD), &mut buf);
            }
            K::from_raw(&buf)
        } else {
            unsafe { K::slot_key(self.keys[i].load(K::SLOT_LOAD)) }
        }
    }

    /// Value at slot `i`.
    #[inline]
    pub fn val(&self, i: usize) -> u64 {
        self.vals[i].load(R)
    }

    /// First index with `keys[idx] >= key` (lower bound).
    #[inline]
    pub fn lower_bound(&self, key: &K) -> usize {
        if K::TRUNCATE {
            let mut tp = [0u8; bslot::MAX_INLINE];
            // Safety: caller is pinned; the prefix slot stays readable.
            let pfx = unsafe { self.prefix_bytes(&mut tp) };
            match rel(pfx, key.raw_bytes()) {
                Err((Cmp::Less, _)) => 0,
                Err(_) => self.count(),
                Ok(suf) => {
                    let w = bslot::sort_word(suf);
                    sorted_prefix_len(&self.keys, self.count(), K::SLOT_LOAD, |s| {
                        // Safety: published suffix slot below count.
                        unsafe { bslot::cmp(suf, w, s) == Cmp::Greater }
                    })
                }
            }
        } else {
            sorted_prefix_len(&self.keys, self.count(), K::SLOT_LOAD, |s| {
                // Safety: slots below an observed count are published keys
                // of this node (or epoch-protected stale aliases).
                unsafe { key.cmp_slot(s) == Cmp::Greater }
            })
        }
    }

    /// Position of `key`, if present.
    #[inline]
    pub fn search(&self, key: &K) -> Option<usize> {
        if K::TRUNCATE {
            let mut tp = [0u8; bslot::MAX_INLINE];
            // Safety: caller is pinned; the prefix slot stays readable.
            let pfx = unsafe { self.prefix_bytes(&mut tp) };
            let suf = rel(pfx, key.raw_bytes()).ok()?;
            let w = bslot::sort_word(suf);
            let n = self.count();
            let idx = sorted_prefix_len(&self.keys, n, K::SLOT_LOAD, |s| {
                // Safety: published suffix slot below count.
                unsafe { bslot::cmp(suf, w, s) == Cmp::Greater }
            });
            // Safety: as above.
            (idx < n
                && unsafe { bslot::cmp(suf, w, self.keys[idx].load(K::SLOT_LOAD)) } == Cmp::Equal)
                .then_some(idx)
        } else {
            let idx = self.lower_bound(key);
            // Safety: as in `lower_bound`.
            if idx < self.count()
                && unsafe { key.cmp_slot(self.keys[idx].load(K::SLOT_LOAD)) } == Cmp::Equal
            {
                Some(idx)
            } else {
                None
            }
        }
    }

    /// Value for `key`, if present (readers call this between `r_lock` and
    /// `r_unlock`; the result is meaningful only if validation passes).
    #[inline]
    pub fn lookup(&self, key: &K) -> Option<u64> {
        self.search(key).map(|i| self.vals[i].load(R))
    }

    /// Store `val` at the slot of `key` (exclusive access). Returns the old
    /// value, or `None` if the key is absent.
    pub fn update(&self, key: &K, val: u64) -> Option<u64> {
        let i = self.search(key)?;
        let old = self.vals[i].load(R);
        self.vals[i].store(val, R);
        Some(old)
    }

    /// Insert or overwrite (exclusive access; must not be full unless the
    /// key already exists). Returns the previous value if the key existed.
    /// A new entry clones `key` into a freshly owned slot; for truncated
    /// nodes the slot holds the suffix (the prefix shrinks first when the
    /// key diverges from it, and the whole key *becomes* the prefix when
    /// the leaf is empty).
    pub fn insert(&self, key: &K, val: u64, g: &Guard) -> Option<u64> {
        let n = self.count.load(R) as usize;
        let (pos, slot) = if K::TRUNCATE {
            let raw = key.raw_bytes();
            if n == 0 {
                let old_pfx = self.prefix.load(K::SLOT_LOAD);
                self.prefix.store(bslot::make(raw), K::SLOT_STORE);
                // Safety: unlinked under the exclusive lock (a reader of
                // the previously-emptied leaf may still hold the word).
                unsafe { bslot::retire(old_pfx, g) };
                self.keys[0].store(bslot::EMPTY, K::SLOT_STORE);
                self.vals[0].store(val, R);
                self.count.store(1, K::SLOT_STORE);
                return None;
            }
            let mut tp = [0u8; bslot::MAX_INLINE];
            // Safety: exclusive lock held; prefix slot is live.
            let pfx = unsafe { self.prefix_bytes(&mut tp) };
            let suf: &[u8] = match rel(pfx, raw) {
                Ok(s) => s,
                Err((_, m)) => {
                    self.shrink_prefix_to(m, g);
                    // The new prefix is `raw[..m]` by construction.
                    &raw[m..]
                }
            };
            let w = bslot::sort_word(suf);
            let pos = sorted_prefix_len(&self.keys, n.min(LC), K::SLOT_LOAD, |s| {
                // Safety: published suffix slot below count.
                unsafe { bslot::cmp(suf, w, s) == Cmp::Greater }
            });
            if pos < n
                // Safety: as above.
                && unsafe { bslot::cmp(suf, w, self.keys[pos].load(K::SLOT_LOAD)) } == Cmp::Equal
            {
                let old = self.vals[pos].load(R);
                self.vals[pos].store(val, R);
                return Some(old);
            }
            (pos, bslot::make(suf))
        } else {
            let pos = self.lower_bound(key);
            // Safety: published slot below count (see module doc).
            if pos < n && unsafe { key.cmp_slot(self.keys[pos].load(K::SLOT_LOAD)) } == Cmp::Equal {
                let old = self.vals[pos].load(R);
                self.vals[pos].store(val, R);
                return Some(old);
            }
            (pos, key.clone().into_slot())
        };
        debug_assert!(n < LC, "insert into full leaf");
        let mut i = n;
        while i > pos {
            self.keys[i].store(self.keys[i - 1].load(K::SLOT_LOAD), K::SLOT_STORE);
            self.vals[i].store(self.vals[i - 1].load(R), R);
            i -= 1;
        }
        self.keys[pos].store(slot, K::SLOT_STORE);
        self.vals[pos].store(val, R);
        self.count.store((n + 1) as u16, K::SLOT_STORE);
        None
    }

    /// Remove `key` (exclusive access). Returns `(slot, value)` of the
    /// removed entry; ownership of the slot moves to the caller, which
    /// must retire it (readers may still be comparing against it).
    pub fn remove(&self, key: &K) -> Option<(u64, u64)> {
        let n = self.count.load(R) as usize;
        let pos = self.search(key)?;
        let slot = self.keys[pos].load(K::SLOT_LOAD);
        let old = self.vals[pos].load(R);
        for i in pos..n - 1 {
            self.keys[i].store(self.keys[i + 1].load(K::SLOT_LOAD), K::SLOT_STORE);
            self.vals[i].store(self.vals[i + 1].load(R), R);
        }
        self.count.store((n - 1) as u16, K::SLOT_STORE);
        Some((slot, old))
    }

    /// Split in half (exclusive access). Returns `(separator, right node)`:
    /// the separator is an owned copy of the smallest key of the new
    /// right leaf (which keeps its own slot). Truncated halves re-grow
    /// their prefixes from the surviving suffixes, so the short local
    /// suffixes of a freshly split node usually collapse into inline
    /// words.
    pub fn split(&self, g: &Guard) -> (K, *mut NodeBase) {
        let n = self.count.load(R) as usize;
        debug_assert!(n >= 2);
        let mid = n / 2;
        let right_ptr = Self::alloc();
        let right = unsafe { as_leaf::<LL, LC, K>(right_ptr) };
        for i in mid..n {
            right.keys[i - mid].store(self.keys[i].load(K::SLOT_LOAD), K::SLOT_STORE);
            right.vals[i - mid].store(self.vals[i].load(R), R);
        }
        right.count.store((n - mid) as u16, K::SLOT_STORE);
        self.count.store(mid as u16, K::SLOT_STORE);
        if K::TRUNCATE {
            right
                .prefix
                // Safety: live prefix slot under the exclusive lock.
                .store(
                    unsafe { bslot::clone_slot(self.prefix.load(K::SLOT_LOAD)) },
                    K::SLOT_STORE,
                );
            // Safety: right.keys[0] was just published by this thread.
            let sep = unsafe { right.key_at(0) };
            right.grow_prefix(g);
            self.grow_prefix(g);
            (sep, right_ptr)
        } else {
            // Safety: right.keys[0] is a live slot this thread published.
            let sep = unsafe { right.key_at(0) };
            let _ = g;
            (sep, right_ptr)
        }
    }

    /// Append every entry of `right` (exclusive access to both; combined
    /// count must fit). For matching prefixes the slot words simply
    /// move; otherwise this node's prefix shrinks to the common part and
    /// the right entries are re-expressed against it (their old slots
    /// retired). The caller retires the right node itself without
    /// freeing its (now stale-alias) slots either way.
    pub fn absorb(&self, right: &Self, g: &Guard) {
        let n = self.count.load(R) as usize;
        let m = right.count.load(R) as usize;
        debug_assert!(n + m <= LC);
        if K::TRUNCATE {
            let (mut tl, mut tr) = ([0u8; bslot::MAX_INLINE], [0u8; bslot::MAX_INLINE]);
            // Safety: exclusive locks held on both nodes.
            let (c, extra, lp_len) = unsafe {
                let lp = self.prefix_bytes(&mut tl);
                let rp = right.prefix_bytes(&mut tr);
                let c = common_len(lp, rp);
                (c, rp[c..].to_vec(), lp.len())
            };
            if c < lp_len {
                self.shrink_prefix_to(c, g);
            }
            if extra.is_empty() && c == lp_len {
                // Identical prefixes: slot ownership moves wholesale.
                for i in 0..m {
                    self.keys[n + i].store(right.keys[i].load(K::SLOT_LOAD), K::SLOT_STORE);
                    self.vals[n + i].store(right.vals[i].load(R), R);
                }
            } else {
                let mut scratch = Vec::new();
                for i in 0..m {
                    let old = right.keys[i].load(K::SLOT_LOAD);
                    scratch.clear();
                    scratch.extend_from_slice(&extra);
                    // Safety: live slot of the (locked) right node; its
                    // ownership ends here, so it is retired.
                    unsafe {
                        bslot::append_to(old, &mut scratch);
                        self.keys[n + i].store(bslot::make(&scratch), K::SLOT_STORE);
                        bslot::retire(old, g);
                    }
                    self.vals[n + i].store(right.vals[i].load(R), R);
                }
            }
            self.count.store((n + m) as u16, K::SLOT_STORE);
            // The merged population may share more than the common
            // prefix of the two halves; re-maximalize.
            self.grow_prefix(g);
        } else {
            for i in 0..m {
                self.keys[n + i].store(right.keys[i].load(K::SLOT_LOAD), K::SLOT_STORE);
                self.vals[n + i].store(right.vals[i].load(R), R);
            }
            self.count.store((n + m) as u16, K::SLOT_STORE);
        }
    }

    /// Copy entries with key ≥ `from` (every entry when `from` is `None`)
    /// into `out`, up to `limit` items. Keys are owned clones (prefix
    /// reattached once per node for truncated leaves): the caller may
    /// keep them past validation.
    pub fn collect_from(&self, from: Option<&K>, limit: usize, out: &mut Vec<(K, u64)>) {
        let n = self.count();
        let start = match from {
            Some(k) => self.lower_bound(k),
            None => 0,
        };
        if K::TRUNCATE {
            let mut buf = Vec::new();
            // Safety: caller pinned; prefix slot readable.
            unsafe { bslot::append_to(self.prefix.load(K::SLOT_LOAD), &mut buf) };
            let plen = buf.len();
            for i in start..n {
                if out.len() >= limit {
                    break;
                }
                buf.truncate(plen);
                // Safety: published slot below count, caller pinned.
                unsafe { bslot::append_to(self.keys[i].load(K::SLOT_LOAD), &mut buf) };
                out.push((K::from_raw(&buf), self.vals[i].load(R)));
            }
        } else {
            for i in start..n {
                if out.len() >= limit {
                    break;
                }
                // Safety: published slot below count, caller pinned.
                out.push((unsafe { self.key_at(i) }, self.vals[i].load(R)));
            }
        }
    }

    /// Free the key slots this node owns (`[0, count)`), plus the prefix
    /// slot for truncated nodes: tree drop only.
    ///
    /// # Safety
    /// Caller must have exclusive ownership of the whole tree.
    pub unsafe fn free_key_slots(&self) {
        for i in 0..self.count() {
            unsafe { K::slot_free(self.keys[i].load(R)) };
        }
        if K::TRUNCATE {
            unsafe { bslot::free(self.prefix.load(R)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql::OptLock;
    use optiql_index_api::Bytes;
    use optiql_reclaim::Collector;

    type L = Leaf<OptLock, 8>;
    type I = Inner<OptLock, 8>;

    fn leaf<'a>() -> (&'a L, *mut NodeBase) {
        let p = L::alloc();
        (unsafe { as_leaf::<OptLock, 8, u64>(p) }, p)
    }

    fn free_leaf(p: *mut NodeBase) {
        drop(unsafe { Box::from_raw(p as *mut L) });
    }

    fn free_inner(p: *mut NodeBase) {
        drop(unsafe { Box::from_raw(p as *mut I) });
    }

    #[test]
    fn leaf_insert_sorted_and_lookup() {
        let col = Collector::new();
        let g = col.pin();
        let (l, p) = leaf();
        for k in [5u64, 1, 9, 3] {
            assert!(l.insert(&k, k * 10, &g).is_none());
        }
        assert_eq!(l.count(), 4);
        let keys: Vec<u64> = (0..4).map(|i| l.key_slot(i)).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert_eq!(l.lookup(&5), Some(50));
        assert_eq!(l.lookup(&4), None);
        free_leaf(p);
    }

    #[test]
    fn leaf_insert_duplicate_overwrites() {
        let col = Collector::new();
        let g = col.pin();
        let (l, p) = leaf();
        assert!(l.insert(&7, 1, &g).is_none());
        assert_eq!(l.insert(&7, 2, &g), Some(1));
        assert_eq!(l.count(), 1);
        assert_eq!(l.lookup(&7), Some(2));
        free_leaf(p);
    }

    #[test]
    fn leaf_update_and_remove() {
        let col = Collector::new();
        let g = col.pin();
        let (l, p) = leaf();
        l.insert(&1, 10, &g);
        l.insert(&2, 20, &g);
        l.insert(&3, 30, &g);
        assert_eq!(l.update(&2, 21), Some(20));
        assert_eq!(l.update(&4, 40), None);
        assert_eq!(l.remove(&2), Some((2, 21)), "remove yields (slot, val)");
        assert_eq!(l.remove(&2), None);
        assert_eq!(l.count(), 2);
        assert_eq!(l.lookup(&1), Some(10));
        assert_eq!(l.lookup(&3), Some(30));
        free_leaf(p);
    }

    #[test]
    fn leaf_split_moves_upper_half() {
        let col = Collector::new();
        let g = col.pin();
        let (l, p) = leaf();
        for k in 0..8u64 {
            l.insert(&k, k, &g);
        }
        assert!(l.is_full());
        let (sep, rp) = l.split(&g);
        let r = unsafe { as_leaf::<OptLock, 8, u64>(rp) };
        assert_eq!(sep, 4);
        assert_eq!(l.count(), 4);
        assert_eq!(r.count(), 4);
        assert_eq!(l.lookup(&3), Some(3));
        assert_eq!(l.lookup(&4), None);
        assert_eq!(r.lookup(&4), Some(4));
        free_leaf(p);
        free_leaf(rp);
    }

    #[test]
    fn leaf_absorb_concatenates() {
        let col = Collector::new();
        let g = col.pin();
        let (l, p) = leaf();
        let (r, rp) = leaf();
        l.insert(&1, 1, &g);
        l.insert(&2, 2, &g);
        r.insert(&10, 10, &g);
        r.insert(&11, 11, &g);
        l.absorb(r, &g);
        assert_eq!(l.count(), 4);
        assert_eq!(l.lookup(&11), Some(11));
        free_leaf(p);
        free_leaf(rp);
    }

    #[test]
    fn leaf_collect_from_respects_bounds() {
        let col = Collector::new();
        let g = col.pin();
        let (l, p) = leaf();
        for k in [2u64, 4, 6, 8] {
            l.insert(&k, k, &g);
        }
        let mut out = Vec::new();
        l.collect_from(Some(&4), 2, &mut out);
        assert_eq!(out, vec![(4, 4), (6, 6)]);
        out.clear();
        l.collect_from(None, 8, &mut out);
        assert_eq!(out.len(), 4, "None = no lower bound");
        free_leaf(p);
    }

    #[test]
    fn byte_key_leaf_owns_its_slots() {
        let col = Collector::new();
        let g = col.pin();
        let p = Leaf::<OptLock, 8, Bytes>::alloc();
        let l = unsafe { as_leaf::<OptLock, 8, Bytes>(p) };
        for s in ["delta", "alpha", "charlie", "bravo"] {
            assert!(l.insert(&Bytes::from(s), s.len() as u64, &g).is_none());
        }
        assert_eq!(l.count(), 4);
        // Sorted lexicographically through the slot indirection.
        let keys: Vec<Bytes> = (0..4).map(|i| unsafe { l.key_at(i) }).collect();
        assert_eq!(
            keys,
            ["alpha", "bravo", "charlie", "delta"]
                .map(Bytes::from)
                .to_vec()
        );
        assert_eq!(l.lookup(&Bytes::from("charlie")), Some(7));
        assert_eq!(l.lookup(&Bytes::from("zulu")), None);
        assert_eq!(
            l.insert(&Bytes::from("alpha"), 99, &g),
            Some(5),
            "overwrite"
        );
        // Remove hands the (suffix) slot back for the caller to release.
        let (slot, val) = l.remove(&Bytes::from("bravo")).unwrap();
        assert_eq!(val, 5);
        unsafe { Bytes::slot_free(slot) };
        // Split: separator is an independently owned full key.
        let (sep, rp) = l.split(&g);
        let r = unsafe { as_leaf::<OptLock, 8, Bytes>(rp) };
        assert_eq!(sep, unsafe { r.key_at(0) });
        unsafe {
            l.free_key_slots();
            r.free_key_slots();
        }
        drop(unsafe { Box::from_raw(p as *mut Leaf<OptLock, 8, Bytes>) });
        drop(unsafe { Box::from_raw(rp as *mut Leaf<OptLock, 8, Bytes>) });
        drop(g);
        col.flush();
    }

    #[test]
    fn truncated_leaf_inlines_clustered_suffixes() {
        let col = Collector::new();
        let g = col.pin();
        let p = Leaf::<OptLock, 8, Bytes>::alloc();
        let l = unsafe { as_leaf::<OptLock, 8, Bytes>(p) };
        // First insert: the whole key becomes the prefix, slot = "".
        assert!(l
            .insert(&Bytes::from("user0000000000000007"), 7, &g)
            .is_none());
        assert_eq!(l.key_slot(0), bslot::EMPTY);
        // Clustered inserts share the long prefix; the divergent tails
        // are short, so every slot stays inline — zero pointer chases.
        for i in [3u64, 5, 9, 42] {
            let k = Bytes::from(format!("user00000000000000{i:02}"));
            assert!(l.insert(&k, i, &g).is_none());
        }
        for i in 0..l.count() {
            assert!(bslot::is_inline(l.key_slot(i)), "slot {i} not inline");
        }
        let mut tp = [0u8; bslot::MAX_INLINE];
        assert_eq!(
            unsafe { bslot::slot_bytes(l.prefix_word(), &mut tp) },
            b"user00000000000000",
            "prefix shrank to the common part"
        );
        for i in [3u64, 5, 7, 9, 42] {
            let k = Bytes::from(format!("user00000000000000{i:02}"));
            assert_eq!(l.lookup(&k), Some(i), "{k:?}");
        }
        // A probe outside the prefix answers without touching slots.
        assert_eq!(l.lookup(&Bytes::from("item0")), None);
        assert_eq!(l.lower_bound(&Bytes::from("item0")), 0);
        assert_eq!(l.lower_bound(&Bytes::from("zzz")), l.count());
        // A divergent insert shrinks the prefix and keeps everything.
        assert!(l.insert(&Bytes::from("user1"), 100, &g).is_none());
        assert_eq!(
            unsafe { bslot::slot_bytes(l.prefix_word(), &mut tp) },
            b"user",
        );
        for i in [3u64, 5, 7, 9, 42] {
            let k = Bytes::from(format!("user00000000000000{i:02}"));
            assert_eq!(l.lookup(&k), Some(i), "{k:?} after shrink");
        }
        assert_eq!(l.lookup(&Bytes::from("user1")), Some(100));
        // Full keys reconstruct with the prefix reattached.
        let mut out = Vec::new();
        l.collect_from(None, 16, &mut out);
        assert_eq!(out.len(), 6);
        assert_eq!(out[0].0, Bytes::from("user0000000000000003"));
        assert_eq!(out[5].0, Bytes::from("user1"));
        // Split re-grows each half's prefix.
        let (sep, rp) = l.split(&g);
        let r = unsafe { as_leaf::<OptLock, 8, Bytes>(rp) };
        assert_eq!(sep, unsafe { r.key_at(0) });
        for (i, (k, _)) in out.iter().enumerate().take(l.count()) {
            assert_eq!(unsafe { l.key_at(i) }, *k, "left keys survive");
        }
        for i in 0..r.count() {
            assert_eq!(
                unsafe { r.key_at(i) },
                out[l.count() + i].0,
                "right keys survive"
            );
        }
        unsafe {
            l.free_key_slots();
            r.free_key_slots();
        }
        drop(unsafe { Box::from_raw(p as *mut Leaf<OptLock, 8, Bytes>) });
        drop(unsafe { Box::from_raw(rp as *mut Leaf<OptLock, 8, Bytes>) });
        drop(g);
        col.flush();
    }

    #[test]
    fn truncated_leaf_absorb_merges_prefix_contexts() {
        let col = Collector::new();
        let g = col.pin();
        let p = Leaf::<OptLock, 8, Bytes>::alloc();
        let rp = Leaf::<OptLock, 8, Bytes>::alloc();
        let l = unsafe { as_leaf::<OptLock, 8, Bytes>(p) };
        let r = unsafe { as_leaf::<OptLock, 8, Bytes>(rp) };
        for s in ["apple-01", "apple-02"] {
            l.insert(&Bytes::from(s), 1, &g);
        }
        for s in ["apricot-77", "apricot-99"] {
            r.insert(&Bytes::from(s), 2, &g);
        }
        l.absorb(r, &g);
        assert_eq!(l.count(), 4);
        let mut tp = [0u8; bslot::MAX_INLINE];
        assert_eq!(
            unsafe { bslot::slot_bytes(l.prefix_word(), &mut tp) },
            b"ap",
            "merged prefix is the common part"
        );
        for s in ["apple-01", "apple-02", "apricot-77", "apricot-99"] {
            assert!(l.lookup(&Bytes::from(s)).is_some(), "{s}");
        }
        unsafe { l.free_key_slots() };
        drop(unsafe { Box::from_raw(p as *mut Leaf<OptLock, 8, Bytes>) });
        drop(unsafe { Box::from_raw(rp as *mut Leaf<OptLock, 8, Bytes>) });
        drop(g);
        col.flush();
    }

    #[test]
    fn inner_child_routing() {
        let col = Collector::new();
        let g = col.pin();
        let ip = I::alloc();
        let inner = unsafe { as_inner::<OptLock, 8, u64>(ip) };
        let (c0, c1, c2) = (L::alloc(), L::alloc(), L::alloc());
        inner.init_root(10, c0, c1);
        inner.insert_child(&20, c2, &g);
        assert_eq!(inner.count(), 2);
        assert_eq!(inner.find_child(&5), c0);
        assert_eq!(inner.find_child(&10), c1);
        assert_eq!(inner.find_child(&20), c2);
        assert_eq!(unsafe { inner.sep_key_at(0) }, 10);
        assert_eq!(unsafe { inner.sep_key_at(1) }, 20);
        assert_eq!(inner.find_child_from(None).0, c0, "None descends leftmost");
        assert_eq!(inner.find_child_from(None).1, Some(10));
        assert_eq!(inner.find_child_from(Some(&15)).0, inner.find_child(&15));
        assert_eq!(inner.find_child_from(Some(&15)).1, Some(20));
        assert_eq!(inner.find_child_from(Some(&99)).1, None, "rightmost");
        free_leaf(c0);
        free_leaf(c1);
        free_leaf(c2);
        free_inner(ip);
    }

    #[test]
    fn inner_split_pushes_middle_separator_up() {
        let col = Collector::new();
        let g = col.pin();
        let ip = I::alloc();
        let inner = unsafe { as_inner::<OptLock, 8, u64>(ip) };
        let kids: Vec<*mut NodeBase> = (0..8).map(|_| L::alloc()).collect();
        inner.init_root(10, kids[0], kids[1]);
        for (i, sep) in [20u64, 30, 40, 50, 60].iter().enumerate() {
            inner.insert_child(sep, kids[i + 2], &g);
        }
        assert!(inner.is_full() || inner.count() == 6);
        let n = inner.count();
        let (sep, rp) = inner.split(&g);
        let right = unsafe { as_inner::<OptLock, 8, u64>(rp) };
        assert_eq!(inner.count() + right.count() + 1, n);
        // Separator strictly partitions the two halves.
        for i in 0..inner.count() {
            assert!(inner.key_slot(i) < sep);
        }
        for i in 0..right.count() {
            assert!(right.key_slot(i) > sep);
        }
        for k in kids {
            free_leaf(k);
        }
        free_inner(ip);
        free_inner(rp);
    }

    #[test]
    fn truncated_inner_routes_and_splits() {
        let col = Collector::new();
        let g = col.pin();
        let ip = Inner::<OptLock, 8, Bytes>::alloc();
        let inner = unsafe { as_inner::<OptLock, 8, Bytes>(ip) };
        let kids: Vec<*mut NodeBase> = (0..8).map(|_| Leaf::<OptLock, 8, Bytes>::alloc()).collect();
        inner.init_root(Bytes::from("key-20"), kids[0], kids[1]);
        for (i, s) in ["key-30", "key-40", "key-50", "key-60", "key-70"]
            .iter()
            .enumerate()
        {
            inner.insert_child(&Bytes::from(*s), kids[i + 2], &g);
        }
        assert_eq!(inner.count(), 6);
        // All separators share "key-" and the suffixes are inline.
        for i in 0..inner.count() {
            assert!(bslot::is_inline(inner.key_slot(i)));
            assert_eq!(
                unsafe { inner.sep_key_at(i) },
                Bytes::from(format!("key-{}0", i + 2))
            );
        }
        assert_eq!(inner.find_child(&Bytes::from("key-10")), kids[0]);
        assert_eq!(inner.find_child(&Bytes::from("key-25")), kids[1]);
        assert_eq!(
            inner.find_child(&Bytes::from("aaa")),
            kids[0],
            "below prefix"
        );
        assert_eq!(
            inner.find_child(&Bytes::from("zzz")),
            kids[6],
            "above prefix"
        );
        let (sep, rp) = inner.split(&g);
        let right = unsafe { as_inner::<OptLock, 8, Bytes>(rp) };
        assert_eq!(sep, Bytes::from("key-50"));
        for i in 0..inner.count() {
            assert!(unsafe { inner.sep_key_at(i) } < sep);
        }
        for i in 0..right.count() {
            assert!(unsafe { right.sep_key_at(i) } > sep);
        }
        for k in kids {
            drop(unsafe { Box::from_raw(k as *mut Leaf<OptLock, 8, Bytes>) });
        }
        unsafe {
            inner.free_key_slots();
            right.free_key_slots();
        }
        drop(unsafe { Box::from_raw(ip as *mut Inner<OptLock, 8, Bytes>) });
        drop(unsafe { Box::from_raw(rp as *mut Inner<OptLock, 8, Bytes>) });
        drop(g);
        col.flush();
    }

    #[test]
    fn inner_remove_child_closes_gaps() {
        let col = Collector::new();
        let g = col.pin();
        let ip = I::alloc();
        let inner = unsafe { as_inner::<OptLock, 8, u64>(ip) };
        let (c0, c1, c2) = (L::alloc(), L::alloc(), L::alloc());
        inner.init_root(10, c0, c1);
        inner.insert_child(&20, c2, &g);
        // Remove middle child c1 (covers [10,20)): separator 10 goes away.
        let pos = inner.position_of(c1).unwrap();
        assert_eq!(inner.remove_child(pos), 10, "dropped separator slot");
        assert_eq!(inner.count(), 1);
        assert_eq!(inner.find_child(&5), c0);
        assert_eq!(inner.find_child(&25), c2);
        // Remove leftmost child.
        assert_eq!(inner.remove_child(0), 20);
        assert_eq!(inner.count(), 0);
        assert_eq!(inner.find_child(&0), c2);
        free_leaf(c0);
        free_leaf(c1);
        free_leaf(c2);
        free_inner(ip);
    }

    #[test]
    fn search_matches_reference_across_scan_regimes() {
        // Cover counts below and above LINEAR_MAX so both the unrolled
        // linear scan and the monobound binary search are checked against a
        // naive reference.
        fn check<const C: usize>() {
            let col = Collector::new();
            let g = col.pin();
            let lp = Leaf::<OptLock, C>::alloc();
            let l = unsafe { as_leaf::<OptLock, C, u64>(lp) };
            for i in 0..C as u64 {
                l.insert(&(i * 2 + 1), i, &g);
            }
            for probe in 0..=(2 * C as u64 + 2) {
                let expect = (0..l.count())
                    .find(|&i| l.key_slot(i) >= probe)
                    .unwrap_or(l.count());
                assert_eq!(l.lower_bound(&probe), expect, "C={C} probe={probe}");
            }
            drop(unsafe { Box::from_raw(lp as *mut Leaf<OptLock, C>) });

            let ip = Inner::<OptLock, C>::alloc();
            let inner = unsafe { as_inner::<OptLock, C, u64>(ip) };
            let kid = Leaf::<OptLock, 4>::alloc();
            inner.init_root(2, kid, kid);
            for i in 1..(C - 1) as u64 {
                inner.insert_child(&((i + 1) * 2), kid, &g);
            }
            for probe in 0..=(2 * C as u64 + 2) {
                let expect = (0..inner.count())
                    .find(|&i| probe < inner.key_slot(i))
                    .unwrap_or(inner.count());
                assert_eq!(inner.child_index(&probe), expect, "C={C} probe={probe}");
            }
            drop(unsafe { Box::from_raw(kid as *mut Leaf<OptLock, 4>) });
            drop(unsafe { Box::from_raw(ip as *mut Inner<OptLock, C>) });
        }
        check::<4>();
        check::<8>();
        check::<16>();
        check::<17>();
        check::<64>();
        check::<256>();
    }

    #[test]
    fn lower_bound_on_empty_leaf() {
        let (l, p) = leaf();
        assert_eq!(l.lower_bound(&42), 0);
        assert_eq!(l.search(&42), None);
        assert_eq!(l.lookup(&42), None);
        free_leaf(p);
    }
}
